#!/usr/bin/env python3
"""Tune the dead-block decay window: reliability vs performance.

Reproduces the Section 5.3 study (Figures 10-11) for any benchmark: a
small window frees more space for replicas (reliability-biased) but
displaces blocks that were about to be reused; a large window protects
locality but starves replication.  The paper settles on 1000 cycles.

    python examples/decay_window_tuning.py [benchmark]
"""

import os
import sys

from repro import run_experiment
from repro import ExperimentSpec
from repro.harness.report import format_table

N_INSTRUCTIONS = int(os.environ.get("REPRO_EXAMPLE_N", 120_000))
WINDOWS = (0, 100, 250, 1000, 4000, 10000, None)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    base = run_experiment(ExperimentSpec.from_kwargs(benchmark, "BaseP", n_instructions=N_INSTRUCTIONS))
    rows = []
    for window in WINDOWS:
        r = run_experiment(ExperimentSpec.from_kwargs(
            benchmark,
            "ICR-P-PS(S)",
            n_instructions=N_INSTRUCTIONS,
            decay_window=window,
        ))
        rows.append(
            [
                "off" if window is None else window,
                r.replication_ability,
                r.loads_with_replica,
                r.miss_rate,
                r.cycles / base.cycles,
            ]
        )
    print(f"ICR-P-PS(S) on '{benchmark}', dead-only victim policy\n")
    print(
        format_table(
            ["decay_window", "ability", "loads_w_replica", "miss_rate", "norm_cycles"],
            rows,
        )
    )
    print(
        "\n'off' disables dead-block prediction entirely: no line is ever\n"
        "declared dead, so replication is starved — the reliability of BaseP\n"
        "at the cost of the ICR bookkeeping.  The paper picks 1000 cycles as\n"
        "the point where loads-with-replica is still high but the miss-rate\n"
        "cost has nearly vanished."
    )


if __name__ == "__main__":
    main()
