#!/usr/bin/env python3
"""Analytical reliability: exposure census, AVF and MTTF per scheme.

Complements the paper's fault-injection experiment (Figure 14) with the
analytical view: how much of the cache, integrated over time, sits in the
state where a single-bit flip is *unrecoverable* (dirty + parity-only +
no replica)?  That fraction predicts the injection results and yields an
MTTF estimate at any assumed raw fault rate.

    python examples/reliability_analysis.py [benchmark]
"""

import os
import sys

from repro import run_experiment
from repro import ExperimentSpec
from repro.core.config import VictimPolicy
from repro.harness.report import format_table, percent
from repro.reliability import fit_consumption_factor, predicted_unrecoverable_rate

N_INSTRUCTIONS = int(os.environ.get("REPRO_EXAMPLE_N", 60_000))
#: An (unrealistically high, as in the paper) raw fault rate for contrast,
#: and a more realistic one for the MTTF column.
DEMO_RATE = 1e-2
REALISTIC_RATE = 1e-12  # per cycle over the whole array

RELAXED = dict(decay_window=1000, victim_policy=VictimPolicy.DEAD_FIRST)
SCHEMES = (
    ("BaseP", {}),
    ("ICR-P-PS(S)", RELAXED),
    ("ICR-ECC-PS(S)", RELAXED),
    ("BaseECC", {}),
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    rows = []
    for scheme, kwargs in SCHEMES:
        analytic = run_experiment(ExperimentSpec.from_kwargs(
            benchmark,
            scheme,
            n_instructions=N_INSTRUCTIONS,
            measure_vulnerability=True,
            **kwargs,
        ))
        injected = run_experiment(ExperimentSpec.from_kwargs(
            benchmark,
            scheme,
            n_instructions=N_INSTRUCTIONS,
            error_rate=DEMO_RATE,
            **kwargs,
        ))
        report = analytic.vulnerability
        estimate = predicted_unrecoverable_rate(report, REALISTIC_RATE)
        factor = fit_consumption_factor(
            errors_injected=injected.dl1["errors_injected"],
            unrecoverable=injected.dl1["load_errors_unrecoverable"],
            vulnerable_fraction=report.vulnerable_fraction,
        )
        mttf = estimate.mttf_seconds(1e9)
        rows.append(
            [
                scheme,
                percent(report.vulnerable_fraction),
                percent(report.summary()["safe_replica"]),
                injected.dl1["load_errors_unrecoverable"],
                f"{factor:.2f}",
                "inf" if mttf == float("inf") else f"{mttf / 3600:.1e}h",
            ]
        )
    print(
        f"Reliability analysis on '{benchmark}' "
        f"({N_INSTRUCTIONS:,} instructions)\n"
    )
    print(
        format_table(
            [
                "scheme",
                "AVF(vulnerable)",
                "replica-protected",
                f"unrecov@{DEMO_RATE}",
                "consumption",
                f"MTTF@{REALISTIC_RATE}/cyc",
            ],
            rows,
        )
    )
    print(
        "\nThe AVF column is the analytical prediction; the injection column\n"
        "is the empirical measurement at an intense rate — the ordering\n"
        "matches (paper Figure 14).  BaseECC and ICR-ECC never lose data to\n"
        "single-bit faults; ICR-P shrinks BaseP's exposure by moving dirty\n"
        "data under replicas without ECC's 2-cycle loads."
    )


if __name__ == "__main__":
    main()
