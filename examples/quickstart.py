#!/usr/bin/env python3
"""Quickstart: run one ICR scheme on one benchmark and read the metrics.

This is the 30-second tour of the library: pick a workload, pick a dL1
scheme (paper Section 3.2), run the Table 1 machine, inspect the Section
4.1 metrics.

    python examples/quickstart.py [benchmark] [scheme]
"""

import os
import sys

from repro import run_experiment
from repro import ExperimentSpec
from repro.harness.report import percent


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    scheme = sys.argv[2] if len(sys.argv) > 2 else "ICR-P-PS(S)"

    print(f"Running {scheme} on synthetic '{benchmark}' (Table 1 machine) ...")
    result = run_experiment(ExperimentSpec.from_kwargs(benchmark, scheme, n_instructions=int(os.environ.get("REPRO_EXAMPLE_N", 150_000))))
    baseline = run_experiment(ExperimentSpec.from_kwargs(benchmark, "BaseP", n_instructions=int(os.environ.get("REPRO_EXAMPLE_N", 150_000))))

    print(f"\n  instructions        : {result.instructions:,}")
    print(f"  execution cycles    : {result.cycles:,}  (CPI {result.cpi:.2f})")
    print(
        f"  vs BaseP            : {result.cycles / baseline.cycles:.3f}x "
        "(1.000 = parity baseline)"
    )
    print(f"  dL1 miss rate       : {percent(result.miss_rate)}")
    print(f"  replication ability : {percent(result.replication_ability)}")
    print(f"  loads with replica  : {percent(result.loads_with_replica)}")
    print(f"  L1+L2 dynamic energy: {result.energy.total_nj / 1e3:.1f} uJ")
    print(
        "\nA load that hits a replicated line is parity-checked in 1 cycle;"
        "\nif the parity ever fails, the replica recovers the value — that is"
        "\nthe paper's reliability win, priced at the miss-rate increase above."
    )


if __name__ == "__main__":
    main()
