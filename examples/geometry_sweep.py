#!/usr/bin/env python3
"""Section 5.7 expanded: ICR across cache sizes and associativities.

The paper reports this sensitivity study only in prose ("the replication
ability increases with increasing cache size ... even in a small cache,
we are replicating the data that is really the most in demand").  This
example runs the full grid and prints every metric.

    python examples/geometry_sweep.py [benchmark]
"""

import os
import sys

from repro import run_experiment
from repro import ExperimentSpec
from repro.cache.set_assoc import CacheGeometry
from repro.harness.report import format_table

N_INSTRUCTIONS = int(os.environ.get("REPRO_EXAMPLE_N", 100_000))
SIZES_KB = (8, 16, 32, 64)
ASSOCS = (2, 4, 8)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    rows = []
    for size_kb in SIZES_KB:
        for assoc in ASSOCS:
            geometry = CacheGeometry(size_kb * 1024, assoc, 64)
            base = run_experiment(ExperimentSpec.from_kwargs(
                benchmark, "BaseP", n_instructions=N_INSTRUCTIONS,
                geometry=geometry,
            ))
            icr = run_experiment(ExperimentSpec.from_kwargs(
                benchmark, "ICR-P-PS(S)", n_instructions=N_INSTRUCTIONS,
                geometry=geometry,
            ))
            rows.append(
                [
                    f"{size_kb}KB/{assoc}w",
                    base.miss_rate,
                    icr.miss_rate,
                    icr.replication_ability,
                    icr.loads_with_replica,
                    icr.cycles / base.cycles,
                ]
            )
    print(f"ICR-P-PS(S) geometry sweep on '{benchmark}'\n")
    print(
        format_table(
            [
                "dL1",
                "missP",
                "missICR",
                "ability",
                "loads_w_replica",
                "norm_cycles",
            ],
            rows,
        )
    )
    print(
        "\nThe paper's observation holds: loads-with-replica barely moves\n"
        "across geometries — the hottest data is replicated even in the\n"
        "smallest configuration, because it is exactly the data whose\n"
        "stores keep re-attempting."
    )


if __name__ == "__main__":
    main()
