#!/usr/bin/env python3
"""Evaluate ICR on your own workload: build a profile, sweep the schemes.

The synthetic workload generator is a public API: any memory behaviour
expressible as {hot-set size/skew, streaming, pointer chasing, stack, write
mix, branch predictability} can be evaluated against every dL1 scheme.
This example models a small key-value store: a hot index (read-mostly),
a value heap with poor locality, and a log that is write-only streaming.

    python examples/custom_workload.py
"""

import os

from repro import run_experiment
from repro import ExperimentSpec
from repro.harness.report import format_table
from repro.workloads.generator import WorkloadProfile

kv_store = WorkloadProfile(
    name="kvstore",
    body_size=1024,
    segment_length=128,
    mem_fraction=0.40,
    store_ratio=0.35,  # log writes + value updates
    branch_fraction=0.15,
    # Regions: hot index, streamed log, uniformly accessed value heap.
    p_hot=0.45,
    p_stream=0.20,
    p_chase=0.15,
    p_stack=0.20,
    hot_blocks=120,
    zipf_s=1.0,
    hot_set_fraction=0.5,
    hot_readonly_fraction=0.5,  # the index is read-mostly
    chase_region_blocks=65536,  # 4MB value heap
    branch_predictability=0.90,
    seed=2024,
)

SCHEMES = ("BaseP", "BaseECC", "ICR-P-PS(S)", "ICR-P-PS(LS)", "ICR-ECC-PS(S)")


def main() -> None:
    rows = []
    base_cycles = None
    for scheme in SCHEMES:
        kwargs = {} if scheme.startswith("Base") else {"decay_window": 1000}
        r = run_experiment(ExperimentSpec.from_kwargs(kv_store, scheme, n_instructions=int(os.environ.get("REPRO_EXAMPLE_N", 120_000)), **kwargs))
        if base_cycles is None:
            base_cycles = r.cycles
        rows.append(
            [
                scheme,
                r.cycles / base_cycles,
                r.miss_rate,
                r.loads_with_replica,
                r.energy.total_nj / 1e3,
            ]
        )
    print("Synthetic key-value store on the Table 1 machine\n")
    print(
        format_table(
            ["scheme", "norm_cycles", "miss_rate", "loads_w_replica", "energy_uJ"],
            rows,
        )
    )
    print(
        "\nBecause the index is read-mostly (hot_readonly_fraction=0.5), the\n"
        "S trigger protects only the written half — LS closes that gap by\n"
        "replicating at fill time, at a higher miss-rate cost."
    )


if __name__ == "__main__":
    main()
