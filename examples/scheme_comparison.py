#!/usr/bin/env python3
"""Compare all ten dL1 schemes of the paper on a set of benchmarks.

Reproduces the Figure 9 / Figure 12 view: normalized execution cycles,
miss rates and loads-with-replica for every scheme, under either the
aggressive (window 0, dead-only) or relaxed (window 1000, dead-first)
dead-block configuration.

    python examples/scheme_comparison.py [--relaxed] [bench ...]
"""

import os
import sys

from repro import ALL_SCHEMES, run_experiment
from repro import ExperimentSpec
from repro.harness.figures import AGGRESSIVE, RELAXED
from repro.harness.report import format_table
from repro.workloads.spec2000 import BENCHMARKS

N_INSTRUCTIONS = int(os.environ.get("REPRO_EXAMPLE_N", 120_000))


def main() -> None:
    args = [a for a in sys.argv[1:]]
    relaxed = "--relaxed" in args
    benches = [a for a in args if not a.startswith("--")] or ["gzip", "mcf", "vpr"]
    knobs = RELAXED if relaxed else AGGRESSIVE
    mode = "relaxed (window 1000, dead-first)" if relaxed else "aggressive (window 0, dead-only)"
    print(f"Dead-block prediction: {mode}")

    for bench in benches:
        if bench not in BENCHMARKS:
            raise SystemExit(f"unknown benchmark {bench!r}; choose from {BENCHMARKS}")
        rows = []
        base_cycles = None
        for scheme in ALL_SCHEMES:
            kwargs = {} if scheme.startswith("Base") else knobs
            r = run_experiment(ExperimentSpec.from_kwargs(bench, scheme, n_instructions=N_INSTRUCTIONS, **kwargs))
            if base_cycles is None:
                base_cycles = r.cycles
            rows.append(
                [
                    scheme,
                    r.cycles / base_cycles,
                    r.miss_rate,
                    r.loads_with_replica,
                    r.replication_ability,
                ]
            )
        print(f"\n=== {bench} ===")
        print(
            format_table(
                ["scheme", "norm_cycles", "miss_rate", "loads_w_replica", "ability"],
                rows,
            )
        )


if __name__ == "__main__":
    main()
