#!/usr/bin/env python3
"""Software-controlled replication — the paper's Section 6 future work.

The paper closes with: "we plan to explore controlling replication using
software mechanisms that can direct how many replicas are needed for each
line, when such replication should be initiated, and what blocks should
not be replicated."  This example drives exactly that interface.

Scenario: a program with a *critical* hot region (checkpoint state whose
loss is unacceptable), a normal heap, and scratch buffers whose loss is
harmless.  Software tells the cache:

* checkpoint state — two replicas, created eagerly at fill time;
* scratch region  — never replicate (don't waste dead space on it).

    python examples/software_hints.py
"""

import os

from repro import run_experiment
from repro import ExperimentSpec
from repro.core.config import variant
from repro.core.hints import ReplicationHints
from repro.core.schemes import make_config
from repro.harness.report import format_table, percent
from repro.workloads.generator import HOT_BASE, STREAM_BASE

N_INSTRUCTIONS = int(os.environ.get("REPRO_EXAMPLE_N", 120_000))

# Address-space carve-up of the synthetic workload (see repro.workloads):
# the first 64 hot blocks are the "checkpoint" state; the stream region is
# the scratch data.
CHECKPOINT = (HOT_BASE, HOT_BASE + 64 * 64)
SCRATCH = (STREAM_BASE, STREAM_BASE + (1 << 28))


def main() -> None:
    base_config = make_config("ICR-P-PS(S)", decay_window=1000)
    hints = (
        ReplicationHints()
        .replicas(*CHECKPOINT, 2)
        .eager(*CHECKPOINT)
        .never(*SCRATCH)
    )
    hinted_config = variant(base_config, hints=hints, name="ICR-P-PS(S)+hints")

    print("Software directives:")
    print(hints.describe())
    print()

    rows = []
    for config in (base_config, hinted_config):
        r = run_experiment(ExperimentSpec.from_kwargs("gzip", config, n_instructions=N_INSTRUCTIONS))
        d = r.dl1
        rows.append(
            [
                config.name,
                percent(r.loads_with_replica),
                d["replication_attempts"],
                d["second_replica_successes"],
                percent(r.miss_rate),
                f"{r.cpi:.3f}",
            ]
        )
    print(
        format_table(
            [
                "config",
                "loads_w_replica",
                "attempts",
                "2nd_replicas",
                "miss_rate",
                "CPI",
            ],
            rows,
        )
    )
    print(
        "\nThe hinted run spends its dead space where software says it\n"
        "matters: the checkpoint region is double-replicated from the moment\n"
        "it is filled, and scratch data no longer competes for replica homes."
    )


if __name__ == "__main__":
    main()
