#!/usr/bin/env python3
"""Fault-injection study: how each protection scheme survives bit flips.

Extends the paper's Figure 14 (random model, vortex) to all four Kim &
Somani transient-error models.  Bit flips are injected into bit-accurate
cache words per cycle; loads run the real parity / SEC-DED decoders and
the real recovery paths (replica -> L2 refetch -> unrecoverable).

    python examples/error_injection_study.py [benchmark]
"""

import os
import sys

from repro import run_experiment
from repro import ExperimentSpec
from repro.core.config import VictimPolicy
from repro.errors.models import MODELS
from repro.harness.report import format_table

N_INSTRUCTIONS = int(os.environ.get("REPRO_EXAMPLE_N", 60_000))
ERROR_RATE = 1e-2  # deliberately extreme, as in the paper's plot
RELAXED = dict(decay_window=1000, victim_policy=VictimPolicy.DEAD_FIRST)

SCHEMES = (
    ("BaseP", {}),
    ("BaseECC", {}),
    ("ICR-P-PS(S)", RELAXED),
    ("ICR-ECC-PS(S)", RELAXED),
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    print(
        f"Injecting transient faults into the dL1 while running '{benchmark}'\n"
        f"(p = {ERROR_RATE}/cycle, {N_INSTRUCTIONS:,} instructions)\n"
    )
    for model in MODELS:
        rows = []
        for scheme, kwargs in SCHEMES:
            r = run_experiment(ExperimentSpec.from_kwargs(
                benchmark,
                scheme,
                n_instructions=N_INSTRUCTIONS,
                error_rate=ERROR_RATE,
                error_model=model,
                **kwargs,
            ))
            d = r.dl1
            rows.append(
                [
                    scheme,
                    d["errors_injected"],
                    d["load_errors_detected"],
                    d["load_errors_corrected_ecc"],
                    d["load_errors_recovered_replica"],
                    d["load_errors_recovered_l2"],
                    d["load_errors_unrecoverable"],
                    d["silent_corruptions"],
                ]
            )
        print(f"--- error model: {model} ---")
        print(
            format_table(
                [
                    "scheme",
                    "injected",
                    "detected",
                    "ecc_fix",
                    "replica_fix",
                    "l2_refetch",
                    "UNRECOVERABLE",
                    "silent",
                ],
                rows,
            )
        )
        print()
    print(
        "Reading the table: BaseP loses every dirty word it cannot re-fetch;\n"
        "ICR-P recovers most of those from replicas at parity cost; ICR-ECC\n"
        "adds SEC-DED on the unreplicated remainder; BaseECC corrects all\n"
        "single-bit errors but pays 2-cycle loads everywhere (not shown here)."
    )


if __name__ == "__main__":
    main()
