#!/usr/bin/env python3
"""A guided tour of the paper's argument, reproduced live.

Runs the minimum set of experiments that carries the DSN 2003 paper's
narrative end to end and explains each step.  Takes a couple of minutes.

    python examples/paper_tour.py
"""

import os

from repro import run_experiment
from repro import ExperimentSpec
from repro.core.config import VictimPolicy
from repro.harness.report import bar_chart, percent

N = int(os.environ.get("REPRO_EXAMPLE_N", 100_000))
RELAXED = dict(decay_window=1000, victim_policy=VictimPolicy.DEAD_FIRST)


def step(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    step("1. The dilemma: parity is fast but can't correct; ECC corrects "
         "but slows every load (paper Section 1)")
    base_p = run_experiment(ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=N))
    base_ecc = run_experiment(ExperimentSpec.from_kwargs("gzip", "BaseECC", n_instructions=N))
    print(
        f"BaseP   : CPI {base_p.cpi:.3f}  (1-cycle parity loads, but a flipped\n"
        f"          bit in dirty data is lost forever)\n"
        f"BaseECC : CPI {base_ecc.cpi:.3f}  "
        f"(+{(base_ecc.cycles / base_p.cycles - 1) * 100:.1f}% cycles for the "
        f"2-cycle SEC-DED verification)"
    )

    step("2. The idea: dead lines are free space — replicate live data "
         "into them (Sections 2-3)")
    icr = run_experiment(ExperimentSpec.from_kwargs("gzip", "ICR-P-PS(S)", n_instructions=N, **RELAXED))
    print(
        f"ICR-P-PS(S): CPI {icr.cpi:.3f}  "
        f"(+{(icr.cycles / base_p.cycles - 1) * 100:.1f}% over BaseP)\n"
        f"  replication ability : {percent(icr.replication_ability)} of attempts\n"
        f"  loads with replica  : {percent(icr.loads_with_replica)} of read hits\n"
        "  -> the hot data everyone reads is exactly the data that got"
        " replicated."
    )

    step("3. The reliability payoff (Section 5.5, Figure 14): inject faults")
    rows = []
    for scheme, kwargs in (
        ("BaseP", {}),
        ("ICR-P-PS(S)", RELAXED),
        ("ICR-ECC-PS(S)", RELAXED),
        ("BaseECC", {}),
    ):
        r = run_experiment(ExperimentSpec.from_kwargs(
            "vortex", scheme, n_instructions=max(N // 2, 10_000), error_rate=1e-2, **kwargs
        ))
        rows.append((scheme, r.dl1["load_errors_unrecoverable"]))
    print(bar_chart([s for s, _ in rows], [v for _, v in rows], unit=" lost"))
    print("ICR recovers most of what parity alone loses; ECC variants lose"
          " almost nothing.")

    step("4. The performance twist (Section 5.6, Figure 15): leave replicas "
         "behind and they serve misses")
    base_mcf = run_experiment(ExperimentSpec.from_kwargs("mcf", "BaseP", n_instructions=N))
    icr_leave = run_experiment(ExperimentSpec.from_kwargs(
        "mcf", "ICR-P-PS(S)", n_instructions=N,
        leave_replicas_on_evict=True, **RELAXED,
    ))
    print(
        f"mcf: ICR-P-PS(S)+leave runs at "
        f"{icr_leave.cycles / base_mcf.cycles:.3f}x BaseP cycles\n"
        f"     ({icr_leave.dl1['replica_fills']} misses served from leftover"
        f" replicas at 2 cycles instead of L2)"
    )

    step("5. The verdict (Section 6)")
    print(
        "ICR-P-PS(S): parity-class performance, replica-class recovery.\n"
        "ICR-ECC-PS(S): ECC-class protection at a fraction of its cost.\n"
        "All with ~0.6% metadata overhead — no dedicated arrays."
    )


if __name__ == "__main__":
    main()
