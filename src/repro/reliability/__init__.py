"""Analytical reliability layer: exposure census, AVF, MTTF estimation."""

from repro.reliability.mttf import (
    MTTFEstimate,
    fit_consumption_factor,
    predicted_unrecoverable_rate,
)
from repro.reliability.vulnerability import (
    ExposureClass,
    VulnerabilityMonitor,
    VulnerabilityReport,
    classify_block,
)

__all__ = [
    "MTTFEstimate",
    "fit_consumption_factor",
    "predicted_unrecoverable_rate",
    "ExposureClass",
    "VulnerabilityMonitor",
    "VulnerabilityReport",
    "classify_block",
]
