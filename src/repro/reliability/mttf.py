"""Mean-time-to-failure estimation from the vulnerability census.

Links the analytical exposure model (:mod:`.vulnerability`) to the
empirical fault injection of the paper's Section 5.5:

* Faults arrive as per-cycle Bernoulli trials with probability *p*
  anywhere in the cache (the paper's random model).
* A fault is *fatal* only when it lands in a word whose exposure class is
  ``VULNERABLE`` **and** the corrupted word is consumed by a load before
  being overwritten (parity-only dirty data has no other copy).

The expected rate of fatal strikes is therefore

    rate_fatal ~= p * vulnerable_fraction * consumption_factor

where ``vulnerable_fraction`` comes from the monitor and the consumption
factor (the probability a corrupted resident word is actually loaded) is
benchmark-dependent and bounded by 1.  :func:`predicted_unrecoverable_rate`
uses the conservative bound (factor = 1) to give an upper estimate, and
:func:`fit_consumption_factor` recovers the empirical factor from an
injection run — tests assert the two views are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reliability.vulnerability import VulnerabilityReport


@dataclass(frozen=True)
class MTTFEstimate:
    """Failure-rate summary for one (scheme, workload, fault-rate) point."""

    fault_probability_per_cycle: float
    vulnerable_fraction: float
    fatal_rate_per_cycle: float  # upper bound (consumption factor = 1)

    @property
    def mttf_cycles(self) -> float:
        """Expected cycles to the first unrecoverable loss (lower bound)."""
        if self.fatal_rate_per_cycle <= 0.0:
            return float("inf")
        return 1.0 / self.fatal_rate_per_cycle

    def mttf_seconds(self, clock_hz: float = 1e9) -> float:
        """MTTF in seconds at the given clock (Table 1: 1 GHz)."""
        return self.mttf_cycles / clock_hz


def predicted_unrecoverable_rate(
    report: VulnerabilityReport, fault_probability_per_cycle: float
) -> MTTFEstimate:
    """Upper-bound estimate of the unrecoverable-fault rate.

    Each per-cycle strike lands in a uniformly random resident word; the
    probability it lands in vulnerable state is the census fraction.
    """
    if fault_probability_per_cycle < 0:
        raise ValueError("fault probability must be non-negative")
    vf = report.vulnerable_fraction
    return MTTFEstimate(
        fault_probability_per_cycle=fault_probability_per_cycle,
        vulnerable_fraction=vf,
        fatal_rate_per_cycle=fault_probability_per_cycle * vf,
    )


def fit_consumption_factor(
    *,
    errors_injected: int,
    unrecoverable: int,
    vulnerable_fraction: float,
) -> float:
    """Empirical probability that a vulnerable-state strike is consumed.

    From an injection run: of ``errors_injected`` strikes, roughly
    ``errors_injected * vulnerable_fraction`` landed on vulnerable words;
    ``unrecoverable`` of those were consumed by loads.  The ratio is the
    consumption factor — always in [0, 1] up to sampling noise.
    """
    if errors_injected <= 0 or vulnerable_fraction <= 0.0:
        return 0.0
    expected_vulnerable_strikes = errors_injected * vulnerable_fraction
    return min(1.0, unrecoverable / expected_vulnerable_strikes)
