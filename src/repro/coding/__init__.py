"""Error-protection codes used by the cache schemes.

* :mod:`repro.coding.parity` — byte-granularity even parity (detect only).
* :mod:`repro.coding.hamming` — (72, 64) Hamming SEC-DED (correct 1, detect 2).
* :mod:`repro.coding.protection` — policy layer tying codes to latencies and
  energy costs.
"""

from repro.coding.hamming import DecodeResult, DecodeStatus, EccWord, decode, encode
from repro.coding.parity import ParityWord, byte_parity_bits, check_parity
from repro.coding.protection import (
    CheckOutcome,
    ProtectedWord,
    ProtectionKind,
    protection_energy_fraction,
)

__all__ = [
    "DecodeResult",
    "DecodeStatus",
    "EccWord",
    "decode",
    "encode",
    "ParityWord",
    "byte_parity_bits",
    "check_parity",
    "CheckOutcome",
    "ProtectedWord",
    "ProtectionKind",
    "protection_energy_fraction",
]
