"""Byte-granularity even parity, the light-weight protection option.

The paper protects cache lines with "one bit parity per eight-bit data"
(one parity bit per byte, 12.5% storage overhead).  A 64-bit word therefore
carries 8 parity bits, one per byte.  Even parity is used: the parity bit is
chosen so that each 9-bit (byte + parity) group has an even number of ones.

Parity detects any odd number of bit flips within a byte — in particular
every single-bit error — but cannot correct anything.  Detection latency is
low enough that a parity-protected load completes in a single cycle
(paper Section 3.2).
"""

from __future__ import annotations

WORD_BITS = 64
BYTES_PER_WORD = WORD_BITS // 8
_WORD_MASK = (1 << WORD_BITS) - 1

# Parity of every byte value, precomputed: _BYTE_PARITY[b] is 1 when b has an
# odd number of set bits.
_BYTE_PARITY = bytes(bin(b).count("1") & 1 for b in range(256))


def byte_parity_bits(word: int) -> int:
    """Return the 8 even-parity bits for a 64-bit word.

    Bit *i* of the result is the parity bit of byte *i* (byte 0 is the least
    significant byte).  With even parity the stored bit simply equals the
    XOR-reduction of the byte.
    """
    word &= _WORD_MASK
    bits = 0
    for i in range(BYTES_PER_WORD):
        if _BYTE_PARITY[(word >> (8 * i)) & 0xFF]:
            bits |= 1 << i
    return bits


def check_parity(word: int, parity_bits: int) -> bool:
    """Return ``True`` when *word* is consistent with *parity_bits*.

    A ``False`` return means at least one byte failed its parity check, i.e.
    an odd number of bits flipped somewhere in that byte (the common
    single-bit transient error is always caught).
    """
    return byte_parity_bits(word) == (parity_bits & 0xFF)


def failing_bytes(word: int, parity_bits: int) -> list[int]:
    """Return the indices of bytes whose parity check fails."""
    mismatch = byte_parity_bits(word) ^ (parity_bits & 0xFF)
    return [i for i in range(BYTES_PER_WORD) if mismatch & (1 << i)]


class ParityWord:
    """A 64-bit word stored together with its per-byte parity bits.

    This is the storage-cell model used by the fault-injection experiments:
    errors flip bits of :attr:`data` (or, more rarely, of :attr:`parity`)
    after encoding, and :meth:`check` replays the read-time verification.
    """

    __slots__ = ("data", "parity")

    def __init__(self, data: int = 0):
        self.write(data)

    def write(self, data: int) -> None:
        """Store *data* and regenerate its parity bits."""
        self.data = data & _WORD_MASK
        self.parity = byte_parity_bits(self.data)

    def flip_data_bit(self, bit: int) -> None:
        """Model a transient fault in data bit *bit* (0..63)."""
        if not 0 <= bit < WORD_BITS:
            raise ValueError(f"bit index {bit} out of range for a 64-bit word")
        self.data ^= 1 << bit

    def flip_parity_bit(self, bit: int) -> None:
        """Model a transient fault in parity bit *bit* (0..7)."""
        if not 0 <= bit < BYTES_PER_WORD:
            raise ValueError(f"parity bit index {bit} out of range")
        self.parity ^= 1 << bit

    def check(self) -> bool:
        """Read-time verification; ``True`` means no error detected."""
        return check_parity(self.data, self.parity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParityWord(data={self.data:#018x}, parity={self.parity:#04x})"
