"""Protection policies: how a cache line's words are guarded, and at what cost.

The paper considers two protection kinds for cache lines:

* ``PARITY`` — byte parity; detection only; 1-cycle load hits; cheap to
  compute (modeled as 10-15% of an L1 access energy).
* ``ECC`` — (72, 64) SEC-DED; single-error correction; the verification does
  not fit in a 1-cycle load path, so load hits take 2 cycles (unless the
  processor supports speculative loads); expensive to compute (~30% of an
  L1 access energy, i.e. 2-3x parity [Bertozzi et al.]).

ICR schemes mix the two: replicated lines are always parity-protected (the
replica itself is the correction mechanism), while unreplicated lines carry
either parity (``ICR-P-*``) or ECC (``ICR-ECC-*``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.coding import hamming, parity


class ProtectionKind(enum.Enum):
    """The two per-line protection codes evaluated in the paper."""

    PARITY = "parity"
    ECC = "ecc"

    @property
    def load_hit_cycles(self) -> int:
        """dL1 load-hit latency implied by the verification path."""
        return 1 if self is ProtectionKind.PARITY else 2

    @property
    def can_correct(self) -> bool:
        """Whether a single-bit error is correctable from the code alone."""
        return self is ProtectionKind.ECC

    @property
    def storage_overhead(self) -> float:
        """Extra storage per protected bit (both are 8 bits per 64)."""
        return 0.125


@dataclass(frozen=True)
class CheckOutcome:
    """Result of verifying one word under some protection kind."""

    error_detected: bool
    corrected: bool
    data: int


class ProtectedWord:
    """A stored 64-bit word under a chosen :class:`ProtectionKind`.

    This wrapper gives the fault injector and the recovery logic a single
    interface regardless of the underlying code.
    """

    __slots__ = ("kind", "_cell")

    def __init__(self, kind: ProtectionKind, data: int = 0):
        self.kind = kind
        if kind is ProtectionKind.PARITY:
            self._cell = parity.ParityWord(data)
        else:
            self._cell = hamming.EccWord(data)

    def write(self, data: int) -> None:
        """Store *data*, regenerating check bits."""
        self._cell.write(data)

    @property
    def raw_data(self) -> int:
        """Raw (possibly corrupted) data bits, bypassing verification."""
        return self._cell.data

    def flip_data_bit(self, bit: int) -> None:
        """Inject a transient fault into data bit *bit*."""
        if self.kind is ProtectionKind.PARITY:
            self._cell.flip_data_bit(bit)
        else:
            # Map the data-bit index onto its codeword position.
            self._cell.flip_bit(hamming._DATA_POSITIONS[bit])

    def read(self) -> CheckOutcome:
        """Verify (and for ECC, correct) the stored word."""
        if self.kind is ProtectionKind.PARITY:
            ok = self._cell.check()
            return CheckOutcome(
                error_detected=not ok, corrected=False, data=self._cell.data
            )
        result = self._cell.read()
        if result.status is hamming.DecodeStatus.OK:
            return CheckOutcome(False, False, result.data)
        if result.status is hamming.DecodeStatus.CORRECTED:
            return CheckOutcome(True, True, result.data)
        return CheckOutcome(True, False, result.data)


def protection_energy_fraction(
    kind: ProtectionKind, parity_fraction: float = 0.15, ecc_fraction: float = 0.30
) -> float:
    """Energy of one check/compute as a fraction of an L1 access energy.

    The paper reports results for parity:ECC of 15%:30% (Figure 17b) and
    10%:30% (Figure 17c) of the per-access L1 energy.
    """
    if kind is ProtectionKind.PARITY:
        return parity_fraction
    return ecc_fraction
