"""(72, 64) Hamming SEC-DED code — the "8-bit SEC-DED at 64-bit granularity".

This is the heavy-weight protection option of the paper: every 64-bit word
carries 8 check bits (12.5% storage overhead, same as byte parity) but the
code can *correct* any single-bit error and *detect* any double-bit error.
The price is the slower check — a SEC-DED verification cannot complete
within the single-cycle load path of a GHz-class processor, so ECC-protected
loads are modeled as 2 cycles throughout the paper.

The construction is the classic extended Hamming code: 7 Hamming check bits
sit at the power-of-two positions of a 71-bit codeword, and an eighth
overall-parity bit extends single-error-correction to double-error-detection.

Decoding outcomes (:class:`DecodeStatus`):

* ``OK`` — no error.
* ``CORRECTED`` — exactly one bit flipped; the decoder repaired it.
* ``DETECTED`` — an even number (>= 2) of flips; detected, not correctable.
* ``MISCORRECTED`` is not an explicit status: >= 3 flips may alias onto a
  valid or singly-flipped codeword, the fundamental SEC-DED limitation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

DATA_BITS = 64
CHECK_BITS = 8  # 7 Hamming bits + 1 overall parity bit
CODEWORD_BITS = DATA_BITS + CHECK_BITS  # 72
_DATA_MASK = (1 << DATA_BITS) - 1

# Codeword layout: positions 1..71 form the (71, 64) Hamming code; check
# bits live at positions 1, 2, 4, 8, 16, 32, 64 and data bits fill the rest
# in increasing position order.  Position 0 holds the overall parity of
# positions 1..71, giving the extended (72, 64) SEC-DED code.
_CHECK_POSITIONS = tuple(1 << i for i in range(7))  # 1,2,4,...,64
_DATA_POSITIONS = tuple(
    p for p in range(1, CODEWORD_BITS) if p not in set(_CHECK_POSITIONS)
)
assert len(_DATA_POSITIONS) == DATA_BITS


class DecodeStatus(enum.Enum):
    """Outcome of a SEC-DED decode."""

    OK = "ok"
    CORRECTED = "corrected"
    DETECTED = "detected"  # uncorrectable (double) error


@dataclass(frozen=True)
class DecodeResult:
    """Decoded data plus what the decoder had to do to obtain it."""

    data: int
    status: DecodeStatus

    @property
    def usable(self) -> bool:
        """Whether :attr:`data` can be consumed by the pipeline."""
        return self.status is not DecodeStatus.DETECTED


def _parity(value: int) -> int:
    """Parity (XOR-reduction) of an arbitrary-width integer."""
    return value.bit_count() & 1


def encode(data: int) -> int:
    """Encode a 64-bit word into a 72-bit SEC-DED codeword."""
    data &= _DATA_MASK
    codeword = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (data >> i) & 1:
            codeword |= 1 << pos
    # Hamming check bit at position 2**i covers every position whose binary
    # representation has bit i set.
    for i, pos in enumerate(_CHECK_POSITIONS):
        covered = 0
        for p in range(1, CODEWORD_BITS):
            if p & pos and (codeword >> p) & 1:
                covered ^= 1
        if covered:
            codeword |= 1 << pos
    # Overall parity over positions 1..71 stored at position 0.
    if _parity(codeword >> 1):
        codeword |= 1
    return codeword


def _syndrome(codeword: int) -> int:
    """XOR of the positions of all set bits in positions 1..71."""
    syndrome = 0
    rest = codeword >> 1
    pos = 1
    while rest:
        if rest & 1:
            syndrome ^= pos
        rest >>= 1
        pos += 1
    return syndrome


def extract_data(codeword: int) -> int:
    """Pull the 64 data bits out of a codeword without any checking."""
    data = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (codeword >> pos) & 1:
            data |= 1 << i
    return data


def decode(codeword: int) -> DecodeResult:
    """Decode a possibly-corrupted 72-bit codeword.

    Implements the standard extended-Hamming decision procedure:

    ========  ==============  =======================================
    syndrome  overall parity  verdict
    ========  ==============  =======================================
    0         even            no error
    != 0      odd             single-bit error at *syndrome*; correct
    0         odd             error in the overall parity bit; correct
    != 0      even            double-bit error; detect only
    ========  ==============  =======================================
    """
    syndrome = _syndrome(codeword)
    overall_odd = _parity(codeword) == 1
    if syndrome == 0 and not overall_odd:
        return DecodeResult(extract_data(codeword), DecodeStatus.OK)
    if syndrome == 0 and overall_odd:
        # The overall parity bit itself flipped; data is intact.
        return DecodeResult(extract_data(codeword), DecodeStatus.CORRECTED)
    if overall_odd:
        if syndrome >= CODEWORD_BITS:
            # Syndrome points outside the codeword: multi-bit corruption.
            return DecodeResult(extract_data(codeword), DecodeStatus.DETECTED)
        corrected = codeword ^ (1 << syndrome)
        return DecodeResult(extract_data(corrected), DecodeStatus.CORRECTED)
    return DecodeResult(extract_data(codeword), DecodeStatus.DETECTED)


class EccWord:
    """A 64-bit word stored as a SEC-DED codeword, for fault injection.

    Mirrors :class:`repro.coding.parity.ParityWord` so the error injector can
    treat protected words uniformly.
    """

    __slots__ = ("codeword",)

    def __init__(self, data: int = 0):
        self.write(data)

    def write(self, data: int) -> None:
        """Store *data*, regenerating all 8 check bits."""
        self.codeword = encode(data)

    @property
    def data(self) -> int:
        """The (possibly corrupted) raw data bits, without decoding."""
        return extract_data(self.codeword)

    def flip_bit(self, bit: int) -> None:
        """Model a transient fault in codeword bit *bit* (0..71)."""
        if not 0 <= bit < CODEWORD_BITS:
            raise ValueError(f"bit index {bit} out of range for a codeword")
        self.codeword ^= 1 << bit

    def read(self) -> DecodeResult:
        """Read-time verification and correction."""
        return decode(self.codeword)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EccWord(codeword={self.codeword:#020x})"
