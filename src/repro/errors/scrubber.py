"""Periodic cache scrubbing (Saleh et al., IEEE Trans. Reliability 1990).

The paper cites scrubbing as the classical defence against *error
accumulation*: a single-bit fault in a rarely-read word sits latent until
a second fault turns it into an uncorrectable double.  A scrubber walks
the array in the background, re-verifying every word and repairing what
the line's protection (or its replica) can still fix — converting latent
singles back into clean state before they can pair up.

This is an extension beyond the paper's evaluation; the ablation
benchmark ``bench_ablation_scrubbing.py`` quantifies how much scrubbing
helps each scheme at high fault rates (BaseECC benefits most, since its
only loss mode is exactly the accumulated double).
"""

from __future__ import annotations

from dataclasses import dataclass



@dataclass
class ScrubberStats:
    passes: int = 0
    words_scrubbed: int = 0
    corrected_ecc: int = 0
    repaired_from_replica: int = 0
    repaired_from_l2: int = 0
    uncorrectable_found: int = 0


class Scrubber:
    """Walks the cache every *period* cycles and repairs what it can."""

    def __init__(self, cache, period: int = 50_000):
        if period <= 0:
            raise ValueError("scrub period must be positive")
        if not getattr(cache.config, "track_data", False):
            raise ValueError("scrubbing needs a cache with track_data=True")
        self.cache = cache
        self.period = period
        self.stats = ScrubberStats()
        self._next_pass = period
        cache.scrubber = self

    def advance(self, now: int) -> None:
        """Run any scrub passes that came due by *now*."""
        while now >= self._next_pass:
            self._scrub_pass()
            self._next_pass += self.period

    def _scrub_pass(self) -> None:
        self.stats.passes += 1
        for _, _, block in self.cache.iter_valid_blocks():
            if block.words is None:
                continue
            for index, word in enumerate(block.words):
                self.stats.words_scrubbed += 1
                outcome = word.read()
                if not outcome.error_detected:
                    continue
                if outcome.corrected:
                    # SEC-DED repaired it: write back the corrected word.
                    word.write(outcome.data)
                    self.stats.corrected_ecc += 1
                    continue
                self._repair_uncorrectable(block, index)

    def _repair_uncorrectable(self, block, index: int) -> None:
        """Parity error (or ECC double): use the replica, then L2."""
        golden = block.golden[index] if block.golden else None
        partners = (
            block.replica_refs
            if not block.is_replica
            else ([block.primary_ref] if block.primary_ref else [])
        )
        for partner in partners:
            if partner is None or partner.words is None:
                continue
            partner_read = partner.words[index].read()
            if not partner_read.error_detected and partner_read.data == golden:
                block.words[index].write(partner_read.data)
                self.stats.repaired_from_replica += 1
                return
        if not block.dirty and not block.is_replica:
            # Clean line: refetch the word from the error-free lower level.
            fresh = self.cache._golden_words(block.block_addr)[index]
            block.words[index].write(fresh)
            block.golden[index] = fresh
            self.stats.repaired_from_l2 += 1
            return
        if block.is_replica and not (
            block.primary_ref is not None and block.primary_ref.dirty
        ):
            # A corrupt replica of clean (or absent) data: resync from golden.
            if golden is not None:
                block.words[index].write(golden)
                self.stats.repaired_from_l2 += 1
                return
        self.stats.uncorrectable_found += 1
