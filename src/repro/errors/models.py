"""Transient-error models (Kim & Somani, ISCA 1999 — paper Section 5.5).

Each model decides *where* a fault lands once the injector decides *when*
one occurs:

* ``random``   — one bit of one random word anywhere in the cache (the model
  the paper reports results for);
* ``direct``   — one bit of a recently used word (MRU line of a random
  set), modeling strikes on actively-cycling cells;
* ``adjacent`` — two horizontally adjacent bits of the same word, modeling
  a single particle upsetting neighbouring cells;
* ``column``   — the same bit position in two vertically adjacent lines of
  a set, modeling a strike along a bitline column;
* ``burst``    — a run of 2..5 adjacent bits of one word (spilling into
  the next word of the line), modeling a high-energy particle track that
  defeats single-error protection within one protection domain.

Faults are expressed as ``FaultSite`` records; the injector applies them to
the bit-accurate word storage.  Bit indices cover the *whole* protected
word — data bits and check bits alike — since a real strike does not know
which cells hold parity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.cache.block import CacheBlock
from repro.coding.hamming import CODEWORD_BITS
from repro.coding.parity import BYTES_PER_WORD, WORD_BITS
from repro.coding.protection import ProtectionKind


@dataclass(frozen=True)
class FaultSite:
    """One bit flip at (set, way, word, bit-within-protected-word)."""

    set_index: int
    way: int
    word_index: int
    bit: int


class ErrorModel(Protocol):
    """Strategy choosing fault sites within a cache."""

    name: str

    def sites(self, cache, rng: random.Random) -> Iterable[FaultSite]: ...


def _protected_bits(block: CacheBlock) -> int:
    """Number of injectable bits per word for this line's protection."""
    if block.protection is ProtectionKind.ECC:
        return CODEWORD_BITS  # 72: data + check bits as one codeword
    return WORD_BITS + BYTES_PER_WORD  # 64 data + 8 parity cells


def _random_valid_line(cache, rng: random.Random, tries: int = 64):
    """Pick a random valid line; ``None`` when the cache looks empty."""
    n_sets = cache.geometry.n_sets
    assoc = cache.geometry.associativity
    for _ in range(tries):
        set_index = rng.randrange(n_sets)
        way = rng.randrange(assoc)
        block = cache.sets[set_index][way]
        if block.valid and block.words is not None:
            return set_index, way, block
    return None


class RandomModel:
    """A random bit of a random word present in the dL1 (paper default)."""

    name = "random"

    def sites(self, cache, rng: random.Random):
        found = _random_valid_line(cache, rng)
        if found is None:
            return []
        set_index, way, block = found
        word = rng.randrange(len(block.words))
        bit = rng.randrange(_protected_bits(block))
        return [FaultSite(set_index, way, word, bit)]


class DirectModel:
    """A random bit of a *recently used* word (MRU line of a random set)."""

    name = "direct"

    def sites(self, cache, rng: random.Random):
        n_sets = cache.geometry.n_sets
        for _ in range(16):
            set_index = rng.randrange(n_sets)
            candidates = [
                (way, b)
                for way, b in enumerate(cache.sets[set_index])
                if b.valid and b.words is not None
            ]
            if not candidates:
                continue
            way, block = max(candidates, key=lambda wb: wb[1].lru_stamp)
            word = rng.randrange(len(block.words))
            bit = rng.randrange(_protected_bits(block))
            return [FaultSite(set_index, way, word, bit)]
        return []


class AdjacentModel:
    """Two horizontally adjacent bits of the same word."""

    name = "adjacent"

    def sites(self, cache, rng: random.Random):
        found = _random_valid_line(cache, rng)
        if found is None:
            return []
        set_index, way, block = found
        word = rng.randrange(len(block.words))
        width = _protected_bits(block)
        bit = rng.randrange(width - 1)
        return [
            FaultSite(set_index, way, word, bit),
            FaultSite(set_index, way, word, bit + 1),
        ]


class ColumnModel:
    """The same bit position in two vertically adjacent lines of a set."""

    name = "column"

    def sites(self, cache, rng: random.Random):
        found = _random_valid_line(cache, rng)
        if found is None:
            return []
        set_index, way, block = found
        assoc = cache.geometry.associativity
        word = rng.randrange(len(block.words))
        width = _protected_bits(block)
        bit = rng.randrange(width)
        sites = [FaultSite(set_index, way, word, bit)]
        # The vertically adjacent cell: the nearest other valid way.
        for offset in range(1, assoc):
            other_way = (way + offset) % assoc
            other = cache.sets[set_index][other_way]
            if other.valid and other.words is not None:
                other_width = _protected_bits(other)
                sites.append(
                    FaultSite(set_index, other_way, word, min(bit, other_width - 1))
                )
                break
        return sites


class BurstModel:
    """A multi-bit burst: a run of adjacent bits of one word, spilling
    into the next word of the same line when it crosses the word edge.

    Models a high-energy particle track upsetting a short run of
    physically contiguous cells — the worst case for per-word parity
    *and* SEC-DED, since several flips land inside one protection
    domain.  The burst length is drawn (2..5) from the caller's RNG, so
    the whole fault history — strike times, sites and lengths alike —
    is pinned by the injector's single seed.
    """

    name = "burst"

    MIN_LENGTH = 2
    MAX_LENGTH = 5

    def sites(self, cache, rng: random.Random):
        found = _random_valid_line(cache, rng)
        if found is None:
            return []
        set_index, way, block = found
        n_words = len(block.words)
        word = rng.randrange(n_words)
        width = _protected_bits(block)
        start = rng.randrange(width)
        length = rng.randint(self.MIN_LENGTH, self.MAX_LENGTH)
        sites = []
        for offset in range(length):
            bit = start + offset
            w, b = word + bit // width, bit % width
            if w >= n_words:
                break  # burst ran off the end of the line
            sites.append(FaultSite(set_index, way, w, b))
        return sites


MODELS: dict[str, type] = {
    "random": RandomModel,
    "direct": DirectModel,
    "adjacent": AdjacentModel,
    "column": ColumnModel,
    "burst": BurstModel,
}


def make_model(name: str) -> ErrorModel:
    """Instantiate an error model by name."""
    try:
        return MODELS[name]()
    except KeyError:
        raise ValueError(
            f"unknown error model {name!r}; choose from {sorted(MODELS)}"
        ) from None
