"""The fault injector: *when* transient errors strike.

The paper injects errors "at each clock cycle based on a constant
probability" (Section 5.5).  Iterating every cycle is wasteful in a
software simulator, so the injector draws the gap to the next fault from
the geometric distribution — statistically identical to per-cycle Bernoulli
trials with probability *p* — and applies the configured error model's
fault sites when the simulated clock passes each strike time.

The injector is attached to an :class:`~repro.core.icr_cache.ICRCache`
built with ``track_data=True``; the cache calls :meth:`advance` at the
start of every demand access.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Optional

from repro.coding.hamming import CODEWORD_BITS
from repro.coding.parity import WORD_BITS
from repro.coding.protection import ProtectionKind
from repro.errors.models import ErrorModel, FaultSite, make_model


def derive_stream_seed(seed: int, stream: str) -> int:
    """A decorrelated sub-seed for one named draw stream of a trial.

    Monte Carlo campaigns enumerate trials with consecutive integer
    seeds, so sub-streams must never be derived by integer offsets: with
    the historical ``seed + 1`` derivation the iL1 injector of trial *s*
    and the dL1 injector of trial *s + 1* shared one Mersenne Twister
    stream — their fault histories were identical, not independent.
    Hashing ``(seed, stream)`` instead guarantees that two trials
    differing only in *seed* (and two streams of one trial) get draw
    streams with no such aliasing, for every error model including the
    multi-draw ``burst`` model.
    """
    digest = hashlib.blake2b(
        f"{seed}\x00{stream}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class FaultInjector:
    """Injects bit flips into a cache's word storage over simulated time."""

    def __init__(
        self,
        cache,
        probability_per_cycle: float,
        model: ErrorModel | str = "random",
        seed: int = 12345,
    ):
        if not 0.0 <= probability_per_cycle < 1.0:
            raise ValueError("per-cycle error probability must be in [0, 1)")
        if not getattr(cache.config, "track_data", False):
            raise ValueError("fault injection needs a cache with track_data=True")
        self.cache = cache
        self.probability = probability_per_cycle
        self.model = make_model(model) if isinstance(model, str) else model
        self.rng = random.Random(seed)
        self._clock = 0
        self._next_strike: Optional[int] = None
        if probability_per_cycle > 0.0:
            self._next_strike = self._draw_gap()
        cache.injector = self

    def _draw_gap(self) -> int:
        """Geometric gap (in cycles) to the next fault; always >= 1.

        Draws come from ``self.rng``, the *same* stream the error model
        uses for its fault sites — one seed pins the whole fault history
        of one injector.  Cross-trial and cross-cache independence is the
        caller's job: seed every injector of every trial through
        :func:`derive_stream_seed`, never with integer-offset seeds.
        """
        u = self.rng.random()
        # Inverse-CDF sampling of Geometric(p) on {1, 2, ...}.
        gap = int(math.log(1.0 - u) / math.log(1.0 - self.probability)) + 1
        return self._clock + max(1, gap)

    def advance(self, now: int) -> int:
        """Apply every fault scheduled in (clock, now]; returns #flips."""
        if self._next_strike is None:
            self._clock = max(self._clock, now)
            return 0
        flips = 0
        while self._next_strike <= now:
            self._clock = self._next_strike
            for site in self.model.sites(self.cache, self.rng):
                self._apply(site)
                flips += 1
            self._next_strike = self._draw_gap()
        self._clock = max(self._clock, now)
        return flips

    def _apply(self, site: FaultSite) -> None:
        """Flip one stored bit, honouring the word's protection layout."""
        block = self.cache.sets[site.set_index][site.way]
        if not block.valid or block.words is None:
            return
        if site.word_index >= len(block.words):
            return
        word = block.words[site.word_index]
        self.cache.stats.errors_injected += 1
        if block.protection is ProtectionKind.ECC:
            # Bits 0..71 address the full codeword.
            word._cell.flip_bit(site.bit % CODEWORD_BITS)
            return
        if site.bit < WORD_BITS:
            word._cell.flip_data_bit(site.bit)
        else:
            word._cell.flip_parity_bit(site.bit - WORD_BITS)

    def force_fault(self, site: FaultSite) -> None:
        """Apply a specific fault immediately (deterministic tests)."""
        self._apply(site)
