"""Transient-fault injection: error models and the cycle-based injector."""

from repro.errors.injector import FaultInjector
from repro.errors.models import (
    MODELS,
    AdjacentModel,
    ColumnModel,
    DirectModel,
    FaultSite,
    RandomModel,
    make_model,
)
from repro.errors.scrubber import Scrubber, ScrubberStats

__all__ = [
    "FaultInjector",
    "Scrubber",
    "ScrubberStats",
    "MODELS",
    "AdjacentModel",
    "ColumnModel",
    "DirectModel",
    "FaultSite",
    "RandomModel",
    "make_model",
]
