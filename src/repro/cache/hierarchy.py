"""The two-level cache/memory hierarchy of Table 1.

Wires together a data L1 (plain or ICR-enabled), an instruction L1, a
unified write-back L2 and a flat-latency memory.  The hierarchy is the
single entry point the CPU timing model talks to: it returns a latency for
every reference and routes all inter-level traffic (fills, writebacks,
write-through store traffic) so that the energy model can price it later.

Latency model (paper Table 1 and Section 3.2):

* dL1 load hit — 1 or 2 cycles depending on the scheme's verification path;
* dL1 store — 1 cycle to the pipeline (writes are buffered), plus
  write-buffer stalls in write-through mode;
* dL1 miss — L2 latency (6 cycles), plus memory latency (100) on L2 miss;
* primary miss served from a leftover replica (Section 5.6) — 2 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.set_assoc import CacheGeometry, Eviction, SetAssociativeCache
from repro.cache.stats import HierarchyStats
from repro.cache.write_buffer import CoalescingWriteBuffer

# The dL1 plugin protocol lives in repro.core.protocol (the documented
# surface external scheme packages implement); DL1Outcome and DataL1
# are re-exported here for the hierarchy's historical importers.
from repro.core.protocol import DataL1, DL1Outcome


@dataclass(frozen=True)
class HierarchyConfig:
    """Latency/geometry knobs; defaults are the paper's Table 1."""

    l1i_geometry: CacheGeometry = CacheGeometry(16 * 1024, 1, 32)
    l2_geometry: CacheGeometry = CacheGeometry(256 * 1024, 4, 64)
    l1i_latency: int = 1
    l2_latency: int = 6
    memory_latency: int = 100
    store_latency: int = 1  # stores are buffered
    write_buffer_entries: int = 8
    model_icache: bool = True
    # Parity-protect the iL1 with bit-accurate storage, enabling fault
    # injection into instructions.  The paper's Section 1 observes that
    # "detection may suffice for instruction caches which are mainly
    # read-only": every iL1 parity error is recoverable by refetch.
    protected_icache: bool = False


class MemoryHierarchy:
    """dL1 + iL1 + unified L2 + memory, with all traffic accounted."""

    def __init__(self, dl1: DataL1, config: HierarchyConfig | None = None):
        self.config = config or HierarchyConfig()
        self.dl1 = dl1
        if self.config.protected_icache:
            # A parity dL1-style cache with bit-accurate words serves as
            # the protected iL1 (it is only ever read through fetch()).
            from repro.core.icr_cache import ICRCache as _ICRCache
            from repro.core.schemes import make_config as _make_config

            self.l1i = _ICRCache(
                _make_config(
                    "BaseP",
                    geometry=self.config.l1i_geometry,
                    track_data=True,
                )
            )
            self.l1i.error_refetch_latency = self.config.l2_latency
        else:
            self.l1i = SetAssociativeCache(self.config.l1i_geometry, name="l1i")
        self.l2 = SetAssociativeCache(self.config.l2_geometry, name="l2")
        self.stats = HierarchyStats(l1d=dl1.stats, l1i=self.l1i.stats, l2=self.l2.stats)
        self.write_buffer = CoalescingWriteBuffer(
            entries=self.config.write_buffer_entries,
            drain_cycles=self.config.l2_latency,
        )
        self._last_fetch_block = -1
        self._now = 0
        dl1.set_evict_hook(self._dl1_evicted)
        self.l2.on_evict = self._l2_evicted
        # Hoisted constants for the per-instruction fetch/load/store paths.
        self._fetch_shift = self.l1i.geometry.block_offset_bits
        self._l1i_latency = self.config.l1i_latency
        self._model_icache = self.config.model_icache
        self._dl1_block_shift = self.dl1.geometry.block_offset_bits

    # -- inter-level traffic ------------------------------------------------

    def _dl1_evicted(self, eviction: Eviction) -> None:
        """Dirty dL1 victims are written back into L2."""
        if eviction.dirty:
            block_byte_addr = eviction.block_addr << self._dl1_block_shift
            hit = self.l2.access(block_byte_addr, True, self._now)
            if not hit:
                self.stats.memory_accesses += 1

    def _l2_evicted(self, eviction: Eviction) -> None:
        """Dirty L2 victims go to memory."""
        if eviction.dirty:
            self.stats.memory_accesses += 1

    def _l2_fetch(self, addr: int, now: int) -> int:
        """Fetch a line from L2 (for an L1 miss); returns the latency."""
        hit = self.l2.access(addr, False, now)
        if hit:
            return self.config.l2_latency
        self.stats.memory_accesses += 1
        return self.config.l2_latency + self.config.memory_latency

    # -- demand interface used by the CPU model -----------------------------

    def load(self, addr: int, now: int) -> int:
        """A data load at cycle *now*; returns its latency in cycles."""
        self._now = now
        outcome = self.dl1.access(addr, False, now)
        if outcome.latency is not None:
            return outcome.latency
        return self._l2_fetch(addr, now)

    def store(self, addr: int, now: int) -> int:
        """A data store at cycle *now*; returns pipeline-visible latency.

        With a write-back dL1 the store always costs ``store_latency``
        (misses fetch the line for allocation off the critical path, which
        we still account in L2 traffic).  With a write-through dL1 the
        store additionally goes to L2 through the coalescing write buffer
        and stalls when the buffer is full.
        """
        self._now = now
        outcome = self.dl1.access(addr, True, now)
        latency = self.config.store_latency
        if outcome.latency is None:
            # Write-allocate: bring the line in (off the critical path).
            self._l2_fetch(addr, now)
        if self.dl1.write_policy == "writethrough":
            block_addr = addr >> self._dl1_block_shift
            stall = self.write_buffer.push(block_addr, now)
            self.stats.write_buffer_stall_cycles += stall
            self.stats.l2_store_writes += 1
            self.l2.stats.stores += 1
            self.l2.stats.array_writes += 1
            latency += stall
        return latency

    def fetch(self, pc: int, now: int) -> int:
        """An instruction fetch; charged once per new 32-byte fetch block."""
        latency = self._l1i_latency
        if not self._model_icache:
            return latency
        block = pc >> self._fetch_shift
        if block == self._last_fetch_block:
            return latency
        self._last_fetch_block = block
        outcome = self.l1i.access(pc, False, now)
        if outcome is True:  # plain iL1 hit
            return latency
        if outcome is False:  # plain iL1 miss
            return latency + self._l2_fetch(pc, now)
        # Protected iL1 (DL1Outcome): hit latency includes any parity
        # recovery; a miss goes to L2.
        if outcome.latency is not None:
            return latency + outcome.latency - 1
        return latency + self._l2_fetch(pc, now)
