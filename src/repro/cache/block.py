"""Cache-line state.

A block models one cache line (64 bytes in the paper's dL1/L2).  Besides the
usual valid/dirty/tag state it carries the fields ICR needs:

* ``is_replica`` — the paper's extra per-line bit distinguishing a replica
  from a primary copy (Section 3.1, "Where do we replicate?");
* ``replica_refs`` / ``primary_ref`` — bookkeeping links between a primary
  and its replicas (hardware finds replicas by recomputing distance-k; the
  simulator keeps explicit links for speed and assertions);
* ``last_access_cycle`` — input to the dead-block predictor;
* ``words`` / ``golden`` — optional bit-accurate storage used by
  fault-injection runs: ``words`` holds the protected (possibly corrupted)
  cells, ``golden`` the values that *should* be there, so silent data
  corruption is observable by the simulator even when no code detects it.
"""

from __future__ import annotations

from typing import Optional

from repro.coding.protection import ProtectedWord, ProtectionKind

WORDS_PER_BLOCK_DEFAULT = 8  # 64-byte line = eight 64-bit words


class CacheBlock:
    """One cache line and its simulator-side metadata."""

    __slots__ = (
        "block_addr",
        "valid",
        "dirty",
        "is_replica",
        "lru_stamp",
        "last_access_cycle",
        "replica_refs",
        "primary_ref",
        "protection",
        "words",
        "golden",
        "set_index",
        "way",
    )

    def __init__(self, set_index: int = -1, way: int = -1) -> None:
        # Frame coordinates: where this line physically lives.  Blocks never
        # move between frames, so these are fixed for the cache's lifetime
        # (invalidate() must not reset them) and make way lookups O(1).
        self.set_index = set_index
        self.way = way
        self.replica_refs: list["CacheBlock"] = []
        self.invalidate()
        self.lru_stamp = 0

    def invalidate(self) -> None:
        """Reset to the empty state (links must be severed by the caller)."""
        self.block_addr: int = -1
        self.valid: bool = False
        self.dirty: bool = False
        self.is_replica: bool = False
        self.last_access_cycle: int = 0
        if self.replica_refs:
            self.replica_refs = []
        self.primary_ref: Optional["CacheBlock"] = None
        self.protection: ProtectionKind = ProtectionKind.PARITY
        self.words: Optional[list[ProtectedWord]] = None
        self.golden: Optional[list[int]] = None

    def fill(
        self,
        block_addr: int,
        now: int,
        *,
        is_replica: bool = False,
        dirty: bool = False,
    ) -> None:
        """Install a new line, replacing whatever was here."""
        self.block_addr = block_addr
        self.valid = True
        self.dirty = dirty
        self.is_replica = is_replica
        self.last_access_cycle = now
        if self.replica_refs:
            self.replica_refs = []
        self.primary_ref = None
        self.words = None
        self.golden = None

    def touch(self, now: int) -> None:
        """Record a demand access (resets the decay counter)."""
        if now > self.last_access_cycle:
            self.last_access_cycle = now

    @property
    def has_replica(self) -> bool:
        return bool(self.replica_refs)

    # -- bit-accurate storage (fault-injection runs only) -----------------

    def materialize_words(self, kind: ProtectionKind, values: list[int]) -> None:
        """Create bit-accurate word storage holding *values*."""
        self.protection = kind
        self.words = [ProtectedWord(kind, v) for v in values]
        self.golden = list(values)

    def write_word(self, index: int, value: int) -> None:
        """Store a new value into one word (regenerating its check bits)."""
        if self.words is None:
            raise RuntimeError("block has no materialized words")
        self.words[index].write(value)
        self.golden[index] = value

    def reprotect(self, kind: ProtectionKind) -> None:
        """Re-encode all words under a new protection kind.

        ICR-ECC schemes keep unreplicated lines under SEC-DED but treat the
        8 check bits as byte parity once the line gains a replica.  The
        recompute runs over the *current* (possibly corrupted) data, so a
        latent error present at switch time is silently locked in — exactly
        as the hardware recompute would do.
        """
        self.protection = kind
        if self.words is not None:
            self.words = [ProtectedWord(kind, w.raw_data) for w in self.words]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.valid:
            return "CacheBlock(invalid)"
        role = "replica" if self.is_replica else "primary"
        flags = "D" if self.dirty else "-"
        return f"CacheBlock(addr={self.block_addr:#x}, {role}, {flags})"
