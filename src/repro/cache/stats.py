"""Counters collected by the cache hierarchy during a simulation.

Every metric reported in the paper's evaluation (Section 4.1) is derived
from these raw counters:

* *miss rate* — from the hit/miss counters of the data cache;
* *replication ability* — successes / attempts;
* *loads with replica* — ``load_hits_with_replica / load_hits``;
* *energy* — the access/check counters are priced by
  :mod:`repro.energy.accounting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class CacheStats:
    """Raw event counters for one cache (or one cache level)."""

    # Demand accesses as seen by the pipeline.
    loads: int = 0
    stores: int = 0
    load_hits: int = 0
    load_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0

    # Physical array activity (for the energy model).  Fills, replica
    # installations and replica-update writes all count as array writes.
    array_reads: int = 0
    array_writes: int = 0
    tag_probes: int = 0

    # Protection-code activity.
    parity_checks: int = 0
    parity_generates: int = 0
    ecc_checks: int = 0
    ecc_generates: int = 0
    # Store hits whose write (and code regeneration) was suppressed
    # because the stored value would not change (silent-store-aware ECC).
    silent_stores: int = 0

    # Traffic between levels.
    writebacks: int = 0

    # ICR-specific events (zero for non-ICR caches).
    replication_attempts: int = 0
    replication_successes: int = 0
    second_replica_attempts: int = 0
    second_replica_successes: int = 0
    load_hits_with_replica: int = 0
    replica_updates: int = 0
    replica_evictions: int = 0
    replica_fills: int = 0  # primary misses served by a leftover replica
    dead_evictions: int = 0

    # Error-injection accounting (populated only in injection runs).
    errors_injected: int = 0
    load_errors_detected: int = 0
    load_errors_corrected_ecc: int = 0
    load_errors_recovered_replica: int = 0
    load_errors_recovered_l2: int = 0
    load_errors_unrecoverable: int = 0
    silent_corruptions: int = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses (loads + stores)."""
        return self.loads + self.stores

    @property
    def hits(self) -> int:
        return self.load_hits + self.store_hits

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses

    @property
    def miss_rate(self) -> float:
        """Demand miss rate; 0.0 when there were no accesses."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def load_miss_rate(self) -> float:
        return self.load_misses / self.loads if self.loads else 0.0

    @property
    def replication_ability(self) -> float:
        """Fraction of replication attempts that found a home (Section 4.1)."""
        if not self.replication_attempts:
            return 0.0
        return self.replication_successes / self.replication_attempts

    @property
    def second_replica_ability(self) -> float:
        """Fraction of attempts that managed to place a *second* replica."""
        if not self.second_replica_attempts:
            return 0.0
        return self.second_replica_successes / self.second_replica_attempts

    @property
    def loads_with_replica(self) -> float:
        """Fraction of read hits that found a replica present (Section 4.1)."""
        if not self.load_hits:
            return 0.0
        return self.load_hits_with_replica / self.load_hits

    @property
    def unrecoverable_load_fraction(self) -> float:
        """Fraction of all loads that hit an unrecoverable error (Fig. 14)."""
        if not self.loads:
            return 0.0
        return self.load_errors_unrecoverable / self.loads

    def merge(self, other: "CacheStats") -> None:
        """Accumulate *other*'s counters into this instance."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        """Zero every counter (used for warm-up exclusion)."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of all raw counters (for reports/tests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class HierarchyStats:
    """Per-level stats for a full hierarchy run."""

    l1d: CacheStats = field(default_factory=CacheStats)
    l1i: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    memory_accesses: int = 0
    write_buffer_stall_cycles: int = 0
    l2_store_writes: int = 0  # write-through traffic reaching L2

    def reset(self) -> None:
        """Zero every counter at every level (warm-up exclusion)."""
        self.l1d.reset()
        self.l1i.reset()
        self.l2.reset()
        self.memory_accesses = 0
        self.write_buffer_stall_cycles = 0
        self.l2_store_writes = 0
