"""Generic set-associative cache with true-LRU replacement.

This is the substrate both the unified L2 and the instruction cache use
directly, and that the ICR data cache (:mod:`repro.core.icr_cache`) builds
on.  Addresses are byte addresses; a *block address* is ``addr >> log2(block
size)``.  The cache is indexed by ``block_addr % n_sets`` exactly like the
hardware it models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.cache.block import CacheBlock
from repro.cache.stats import CacheStats


def _log2_exact(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache array."""

    size_bytes: int
    associativity: int
    block_size: int

    def __post_init__(self) -> None:
        _log2_exact(self.block_size, "block size")
        _log2_exact(self.associativity, "associativity")
        if self.size_bytes % (self.block_size * self.associativity):
            raise ValueError("cache size must be a multiple of way size")
        _log2_exact(self.n_sets, "number of sets")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.block_size * self.associativity)

    @property
    def block_offset_bits(self) -> int:
        return _log2_exact(self.block_size, "block size")

    def block_addr(self, addr: int) -> int:
        return addr >> self.block_offset_bits

    def set_index(self, block_addr: int) -> int:
        return block_addr % self.n_sets

    def word_index(self, addr: int) -> int:
        """Index of the 64-bit word within the block that *addr* touches."""
        return (addr >> 3) % (self.block_size // 8)


@dataclass
class Eviction:
    """A line pushed out of the cache; dirty ones must be written back."""

    block_addr: int
    dirty: bool
    was_replica: bool = False


class SetAssociativeCache:
    """A write-back, write-allocate, true-LRU set-associative cache.

    The class exposes the primitive operations (probe / fill / evict /
    touch) so that subclasses and wrappers can implement richer policies;
    :meth:`access` implements the plain demand-access path used by L2 and
    the instruction cache.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        name: str = "cache",
        replacement: str = "lru",
    ):
        from repro.cache.replacement import make_replacement_policy

        self.geometry = geometry
        self.name = name
        self.stats = CacheStats()
        self.sets: list[list[CacheBlock]] = [
            [CacheBlock(set_index, way) for way in range(geometry.associativity)]
            for set_index in range(geometry.n_sets)
        ]
        self.replacement = make_replacement_policy(
            replacement, geometry.associativity
        )
        self._lru_clock = 0
        # Optional callback invoked with each Eviction (hierarchies hook
        # this to route writebacks to the next level).
        self.on_evict: Optional[Callable[[Eviction], None]] = None
        # Hoisted geometry (n_sets is a power of two, so indexing is a mask).
        self._set_mask = geometry.n_sets - 1
        self._block_shift = geometry.block_offset_bits
        # O(1) tag lookup: block_addr -> resident *primary* block.  Updated
        # on fill/evict; probe() re-validates entries so code that mutates
        # blocks directly (checkpoint restore) only needs rebuild_tag_index.
        self._tag_index: dict[int, CacheBlock] = {}
        self._touch_tracked = self.replacement.tracks_touches

    # -- primitives --------------------------------------------------------

    def probe(self, block_addr: int) -> Optional[CacheBlock]:
        """Find the primary copy of *block_addr*, without side effects."""
        self.stats.tag_probes += 1
        block = self._tag_index.get(block_addr)
        if (
            block is not None
            and block.valid
            and not block.is_replica
            and block.block_addr == block_addr
        ):
            return block
        return None

    def index_fill(self, block: CacheBlock) -> None:
        """Register a just-filled primary with the tag index."""
        self._tag_index[block.block_addr] = block

    def index_drop(self, block: CacheBlock) -> None:
        """Remove *block*'s tag-index entry (before invalidation/refill)."""
        if self._tag_index.get(block.block_addr) is block:
            del self._tag_index[block.block_addr]

    def rebuild_tag_index(self) -> None:
        """Recompute the tag index from the arrays (after a bulk restore)."""
        self._tag_index = {
            block.block_addr: block
            for _, _, block in self.iter_valid_blocks()
            if not block.is_replica
        }

    def touch_lru(self, block: CacheBlock) -> None:
        """Record a use of *block* with the replacement policy."""
        self._lru_clock += 1
        block.lru_stamp = self._lru_clock
        if not self._touch_tracked:
            return
        if block.is_replica and block.set_index != (block.block_addr & self._set_mask):
            # ICR replicas live at distance-k from their home set; stateful
            # policies (PLRU) track primaries only.
            return
        self.replacement.on_touch(block.set_index, block.way)

    def lru_victim(self, set_index: int) -> CacheBlock:
        """The line normal placement would evict: invalid first, then the
        replacement policy's choice (true LRU by default).

        Matches the paper's primary-placement rule: "we simply use the
        normal LRU mechanism to pick a victim regardless of whether it is a
        dead, replica or another primary block".
        """
        ways = self.sets[set_index]
        return ways[self.replacement.victim_way(set_index, ways)]

    def evict(self, block: CacheBlock) -> Optional[Eviction]:
        """Invalidate *block*, reporting any writeback obligation.

        Returns the :class:`Eviction` record, or ``None`` when there is
        nothing to report: the block was already invalid, or it was clean
        and no :attr:`on_evict` hook is installed (the L2/iL1 hot loop —
        allocating a record nobody reads is wasted work).
        """
        if not block.valid:
            return None
        was_replica = block.is_replica
        block_addr = block.block_addr
        dirty = block.dirty and not was_replica
        if not was_replica and self._tag_index.get(block_addr) is block:
            del self._tag_index[block_addr]
        block.invalidate()
        if dirty:
            self.stats.writebacks += 1
        elif self.on_evict is None:
            return None
        eviction = Eviction(block_addr=block_addr, dirty=dirty, was_replica=was_replica)
        if self.on_evict is not None:
            self.on_evict(eviction)
        return eviction

    def locate(self, set_index: int, way: int) -> CacheBlock:
        return self.sets[set_index][way]

    def way_of(self, set_index: int, block: CacheBlock) -> int:
        if block.set_index == set_index:
            return block.way
        raise ValueError(f"block does not live in set {set_index}")

    def iter_valid_blocks(self) -> Iterator[tuple[int, int, CacheBlock]]:
        """Yield ``(set_index, way, block)`` for every valid line."""
        for set_index, ways in enumerate(self.sets):
            for way, block in enumerate(ways):
                if block.valid:
                    yield set_index, way, block

    # -- demand path (plain caches: L2, iL1) -------------------------------

    def access(self, addr: int, is_write: bool, now: int) -> bool:
        """One demand access; returns ``True`` on hit.

        Misses allocate (write-allocate) and evict via LRU; the evicted
        line is reported through :attr:`on_evict`.  The hit path is
        written flat — indexed tag lookup, hoisted locals, inlined
        touch — because this is the L2/iL1 inner loop.
        """
        stats = self.stats
        block_addr = addr >> self._block_shift
        stats.tag_probes += 1
        block = self._tag_index.get(block_addr)
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        if (
            block is not None
            and block.valid
            and not block.is_replica
            and block.block_addr == block_addr
        ):
            if is_write:
                stats.store_hits += 1
                stats.array_writes += 1
                block.dirty = True
            else:
                stats.load_hits += 1
                stats.array_reads += 1
            if now > block.last_access_cycle:
                block.last_access_cycle = now
            self._lru_clock += 1
            block.lru_stamp = self._lru_clock
            if self._touch_tracked:
                self.replacement.on_touch(block.set_index, block.way)
            return True
        # Miss path.
        if is_write:
            stats.store_misses += 1
        else:
            stats.load_misses += 1
        set_index = block_addr & self._set_mask
        victim = self.lru_victim(set_index)
        self.evict(victim)
        victim.fill(block_addr, now, dirty=is_write)
        self._tag_index[block_addr] = victim
        stats.array_writes += 1
        self.touch_lru(victim)
        return False

    def contents_summary(self) -> dict[str, int]:
        """Census of line roles, used by tests and reports."""
        summary = {"valid": 0, "dirty": 0, "replicas": 0, "primaries": 0}
        for _, _, block in self.iter_valid_blocks():
            summary["valid"] += 1
            if block.dirty:
                summary["dirty"] += 1
            if block.is_replica:
                summary["replicas"] += 1
            else:
                summary["primaries"] += 1
        return summary
