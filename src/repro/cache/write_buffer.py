"""Coalescing write buffer between a write-through L1 and the L2.

Used by the paper's Section 5.8 comparison: a write-through dL1 (as in the
IBM POWER4) sends every store to L2 through an 8-entry coalescing write
buffer.  Stores stall the pipeline only when the buffer is full; stores to a
block already buffered coalesce into the existing entry.

The drain model is a single port to L2: entries retire one at a time, each
occupying the L2 port for ``drain_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WriteBufferStats:
    enqueues: int = 0
    coalesced: int = 0
    drains: int = 0
    stall_cycles: int = 0
    full_stalls: int = 0


@dataclass
class _Entry:
    block_addr: int
    drain_done: int  # cycle at which this entry has fully drained to L2


@dataclass
class CoalescingWriteBuffer:
    """An N-entry coalescing store buffer draining to L2."""

    entries: int = 8
    drain_cycles: int = 6
    stats: WriteBufferStats = field(default_factory=WriteBufferStats)

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("write buffer needs at least one entry")
        self._queue: list[_Entry] = []
        self._port_free = 0  # cycle at which the L2 port is next free

    def _expire(self, now: int) -> None:
        """Drop entries that have finished draining by *now*."""
        self._queue = [e for e in self._queue if e.drain_done > now]

    def occupancy(self, now: int) -> int:
        self._expire(now)
        return len(self._queue)

    def push(self, block_addr: int, now: int) -> int:
        """Buffer a store to *block_addr* at cycle *now*.

        Returns the number of cycles the store had to stall (0 in the
        common case).  Coalescing hits do not allocate and never stall.
        """
        self._expire(now)
        for entry in self._queue:
            if entry.block_addr == block_addr:
                self.stats.coalesced += 1
                return 0
        stall = 0
        if len(self._queue) >= self.entries:
            # Stall until the oldest entry finishes draining.
            oldest = min(e.drain_done for e in self._queue)
            stall = max(0, oldest - now)
            self.stats.full_stalls += 1
            self.stats.stall_cycles += stall
            now += stall
            self._expire(now)
        # Serialize on the L2 port.
        start = max(now, self._port_free)
        done = start + self.drain_cycles
        self._port_free = done
        self._queue.append(_Entry(block_addr, done))
        self.stats.enqueues += 1
        self.stats.drains += 1
        return stall
