"""Cache substrate: blocks, set-associative arrays, hierarchy, write buffer."""

from repro.cache.block import CacheBlock
from repro.cache.hierarchy import DL1Outcome, HierarchyConfig, MemoryHierarchy
from repro.cache.set_assoc import CacheGeometry, Eviction, SetAssociativeCache
from repro.cache.stats import CacheStats, HierarchyStats
from repro.cache.write_buffer import CoalescingWriteBuffer, WriteBufferStats

__all__ = [
    "CacheBlock",
    "DL1Outcome",
    "HierarchyConfig",
    "MemoryHierarchy",
    "CacheGeometry",
    "Eviction",
    "SetAssociativeCache",
    "CacheStats",
    "HierarchyStats",
    "CoalescingWriteBuffer",
    "WriteBufferStats",
]
