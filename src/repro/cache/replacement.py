"""Replacement policies for the set-associative substrate.

The paper's caches are true-LRU ("we simply use the normal LRU
mechanism"), which stays the default everywhere.  Real L1s often
approximate LRU; these variants let the ablation benchmarks check how
sensitive ICR's behaviour is to the underlying replacement policy:

* ``lru``    — true LRU via per-line stamps (default, paper-faithful);
* ``fifo``   — evict the oldest *fill*, ignoring hits;
* ``random`` — pseudo-random victim (deterministic LCG, reproducible);
* ``plru``   — tree pseudo-LRU, the common hardware approximation.

A policy answers two questions: which way to victimize, and what to do
when a line is touched.  All policies fill invalid ways first.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.cache.block import CacheBlock


class ReplacementPolicy(Protocol):
    name: str
    #: Whether on_touch carries state.  Policies that ignore touches keep
    #: the default False so the cache's hot path can skip the call.
    tracks_touches: bool

    def victim_way(self, set_index: int, ways: Sequence[CacheBlock]) -> int: ...

    def on_touch(self, set_index: int, way: int) -> None: ...


def _first_invalid(ways: Sequence[CacheBlock]) -> int | None:
    for way, block in enumerate(ways):
        if not block.valid:
            return way
    return None


class TrueLRU:
    """Stamp-based exact LRU (stamps are maintained by the cache)."""

    name = "lru"
    tracks_touches = False

    def victim_way(self, set_index: int, ways: Sequence[CacheBlock]) -> int:
        # Single pass: the first invalid way wins outright, otherwise the
        # lowest-stamp way (first one on ties, matching min()).
        best = 0
        best_stamp = None
        for way, block in enumerate(ways):
            if not block.valid:
                return way
            stamp = block.lru_stamp
            if best_stamp is None or stamp < best_stamp:
                best_stamp = stamp
                best = way
        return best

    def on_touch(self, set_index: int, way: int) -> None:
        pass  # stamps carry the state


class FIFO:
    """Evict in fill order; hits do not refresh a line's position."""

    name = "fifo"
    tracks_touches = False

    def __init__(self) -> None:
        self._fill_stamp: dict[tuple[int, int], int] = {}
        self._clock = 0

    def victim_way(self, set_index: int, ways: Sequence[CacheBlock]) -> int:
        invalid = _first_invalid(ways)
        if invalid is not None:
            way = invalid
        else:
            way = min(
                range(len(ways)),
                key=lambda w: self._fill_stamp.get((set_index, w), 0),
            )
        self._clock += 1
        self._fill_stamp[(set_index, way)] = self._clock
        return way

    def on_touch(self, set_index: int, way: int) -> None:
        pass  # FIFO ignores touches


class RandomReplacement:
    """Deterministic pseudo-random victim (64-bit LCG)."""

    name = "random"
    tracks_touches = False

    def __init__(self, seed: int = 0x5DEECE66D) -> None:
        self._state = seed & ((1 << 64) - 1)

    def _next(self) -> int:
        self._state = (self._state * 6364136223846793005 + 1442695040888963407) & (
            (1 << 64) - 1
        )
        return self._state >> 33

    def victim_way(self, set_index: int, ways: Sequence[CacheBlock]) -> int:
        invalid = _first_invalid(ways)
        if invalid is not None:
            return invalid
        return self._next() % len(ways)

    def on_touch(self, set_index: int, way: int) -> None:
        pass


class TreePLRU:
    """Tree pseudo-LRU: one decision bit per internal node.

    For ``w`` (power-of-two) ways each set keeps ``w - 1`` bits arranged
    as a binary tree; a touch flips the path bits away from the touched
    way, and the victim walk follows the bits toward the pseudo-least-
    recently-used leaf.
    """

    name = "plru"
    tracks_touches = True

    def __init__(self, n_ways: int) -> None:
        if n_ways <= 0 or n_ways & (n_ways - 1):
            raise ValueError("tree PLRU needs a power-of-two way count")
        self.n_ways = n_ways
        self._bits: dict[int, list[bool]] = {}

    def _tree(self, set_index: int) -> list[bool]:
        tree = self._bits.get(set_index)
        if tree is None:
            tree = [False] * (self.n_ways - 1)
            self._bits[set_index] = tree
        return tree

    def victim_way(self, set_index: int, ways: Sequence[CacheBlock]) -> int:
        invalid = _first_invalid(ways)
        if invalid is not None:
            return invalid
        tree = self._tree(set_index)
        node = 0
        while node < len(tree):
            node = 2 * node + (2 if tree[node] else 1)
        return node - len(tree)

    def on_touch(self, set_index: int, way: int) -> None:
        tree = self._tree(set_index)
        # Walk from the leaf up, pointing each node away from `way`.
        node = way + len(tree)
        while node > 0:
            parent = (node - 1) // 2
            tree[parent] = node == 2 * parent + 1  # point at the other child
            node = parent


def make_replacement_policy(name: str, n_ways: int) -> ReplacementPolicy:
    """Instantiate a policy by name."""
    if name == "lru":
        return TrueLRU()
    if name == "fifo":
        return FIFO()
    if name == "random":
        return RandomReplacement()
    if name == "plru":
        return TreePLRU(n_ways)
    raise ValueError(
        f"unknown replacement policy {name!r}; choose lru/fifo/random/plru"
    )
