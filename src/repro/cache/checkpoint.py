"""Cache-state checkpointing: snapshot and restore a cache's contents.

Long sweeps repeat the same warm-up over and over; a checkpoint taken
after warm-up lets every configuration start from an identical warm state
(as SimpleScalar's EIO checkpoints did for the paper's runs).  Snapshots
capture the architectural content — which lines are resident, their
role/dirty state, recency and links — but not bit-accurate word storage
(fault-injection runs re-materialize words on demand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.set_assoc import SetAssociativeCache


@dataclass(frozen=True)
class _LineState:
    block_addr: int
    dirty: bool
    is_replica: bool
    lru_stamp: int
    last_access_cycle: int
    # Replica links by (set, way) coordinates, resolved at restore time.
    replica_locs: tuple[tuple[int, int], ...] = ()
    primary_loc: Optional[tuple[int, int]] = None


@dataclass(frozen=True)
class CacheCheckpoint:
    """An immutable snapshot of one cache's contents."""

    n_sets: int
    associativity: int
    lines: dict[tuple[int, int], _LineState] = field(default_factory=dict)

    @property
    def valid_lines(self) -> int:
        return len(self.lines)


def take_checkpoint(cache: SetAssociativeCache) -> CacheCheckpoint:
    """Snapshot *cache* (plain or ICR)."""
    coords: dict[int, tuple[int, int]] = {}  # id(block) -> (set, way)
    for set_index, ways in enumerate(cache.sets):
        for way, block in enumerate(ways):
            coords[id(block)] = (set_index, way)
    lines: dict[tuple[int, int], _LineState] = {}
    for set_index, way, block in cache.iter_valid_blocks():
        replica_locs = tuple(
            coords[id(r)] for r in block.replica_refs if id(r) in coords
        )
        primary_loc = (
            coords.get(id(block.primary_ref))
            if block.primary_ref is not None
            else None
        )
        lines[(set_index, way)] = _LineState(
            block_addr=block.block_addr,
            dirty=block.dirty,
            is_replica=block.is_replica,
            lru_stamp=block.lru_stamp,
            last_access_cycle=block.last_access_cycle,
            replica_locs=replica_locs,
            primary_loc=primary_loc,
        )
    return CacheCheckpoint(
        n_sets=cache.geometry.n_sets,
        associativity=cache.geometry.associativity,
        lines=lines,
    )


def restore_checkpoint(cache: SetAssociativeCache, checkpoint: CacheCheckpoint) -> None:
    """Load *checkpoint* into *cache* (must have the same shape)."""
    if (
        cache.geometry.n_sets != checkpoint.n_sets
        or cache.geometry.associativity != checkpoint.associativity
    ):
        raise ValueError("checkpoint shape does not match the cache geometry")
    # Wipe.
    for ways in cache.sets:
        for block in ways:
            block.invalidate()
    # First pass: contents.
    max_stamp = 0
    for (set_index, way), state in checkpoint.lines.items():
        block = cache.sets[set_index][way]
        block.fill(
            state.block_addr,
            state.last_access_cycle,
            is_replica=state.is_replica,
            dirty=state.dirty,
        )
        block.lru_stamp = state.lru_stamp
        max_stamp = max(max_stamp, state.lru_stamp)
    # Second pass: links.
    for (set_index, way), state in checkpoint.lines.items():
        block = cache.sets[set_index][way]
        if state.primary_loc is not None:
            ps, pw = state.primary_loc
            block.primary_ref = cache.sets[ps][pw]
        for rs, rw in state.replica_locs:
            block.replica_refs.append(cache.sets[rs][rw])
    # Keep future touches ahead of restored stamps.
    cache._lru_clock = max(cache._lru_clock, max_stamp)
    # The bulk fills above bypassed the cache's fill paths; resync the
    # O(1) tag/replica indexes with the restored arrays.
    cache.rebuild_tag_index()
