"""Experiment harness: runners, per-figure reproduction, sweeps, reports."""

from repro.harness.experiment import (
    DEFAULT_INSTRUCTIONS,
    MachineConfig,
    SimulationResult,
    normalized_cycles,
    run_experiment,
    run_schemes,
)
from repro.harness.figures import ALL_FIGURES, AGGRESSIVE, RELAXED, FigureResult
from repro.harness.report import format_table, percent, relative
from repro.harness.sweeps import SweepResult, decay_window_sweep, scheme_sweep, sweep

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "MachineConfig",
    "SimulationResult",
    "normalized_cycles",
    "run_experiment",
    "run_schemes",
    "ALL_FIGURES",
    "AGGRESSIVE",
    "RELAXED",
    "FigureResult",
    "format_table",
    "percent",
    "relative",
    "SweepResult",
    "decay_window_sweep",
    "scheme_sweep",
    "sweep",
]
