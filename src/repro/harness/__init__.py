"""Experiment harness: runners, per-figure reproduction, sweeps, reports."""

from repro.harness.cache import (
    ResultCache,
    UncacheableJobError,
    code_version,
    job_key,
    result_from_dict,
    result_to_dict,
)
from repro.harness.campaign import (
    SCHEDULERS,
    CampaignConfig,
    CampaignEngine,
    CampaignReport,
    create_engine,
    run_campaign,
)
from repro.harness.experiment import (
    SimulationResult,
    normalized_cycles,
    run_experiment,
    run_schemes,
)
from repro.harness.figures import (
    AGGRESSIVE,
    ALL_FIGURES,
    RELAXED,
    FigureResult,
    execution_context,
    run_figure,
)
from repro.harness.report import format_table, percent, relative
from repro.harness.runner import (
    Job,
    ParallelRunner,
    RunnerError,
    RunnerSession,
    RunnerStats,
    TrialHandle,
)
from repro.harness.scheduler import StealingCampaignEngine
from repro.harness.spec import (
    DEFAULT_INSTRUCTIONS,
    ExperimentSpec,
    MachineConfig,
)
from repro.harness.stats import BootstrapCI, bootstrap_ci
from repro.harness.sweeps import (
    SweepResult,
    decay_window_sweep,
    replication_factor_sweep,
    scheme_sweep,
    sweep,
)

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "ExperimentSpec",
    "MachineConfig",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignReport",
    "SCHEDULERS",
    "StealingCampaignEngine",
    "create_engine",
    "run_campaign",
    "BootstrapCI",
    "bootstrap_ci",
    "SimulationResult",
    "normalized_cycles",
    "run_experiment",
    "run_schemes",
    "ALL_FIGURES",
    "AGGRESSIVE",
    "RELAXED",
    "FigureResult",
    "execution_context",
    "run_figure",
    "format_table",
    "percent",
    "relative",
    "SweepResult",
    "decay_window_sweep",
    "replication_factor_sweep",
    "scheme_sweep",
    "sweep",
    "Job",
    "ParallelRunner",
    "RunnerError",
    "RunnerSession",
    "RunnerStats",
    "TrialHandle",
    "ResultCache",
    "UncacheableJobError",
    "code_version",
    "job_key",
    "result_from_dict",
    "result_to_dict",
]
