"""Experiment harness: runners, per-figure reproduction, sweeps, reports."""

from repro.harness.cache import (
    ResultCache,
    UncacheableJobError,
    code_version,
    job_key,
    result_from_dict,
    result_to_dict,
)
from repro.harness.experiment import (
    DEFAULT_INSTRUCTIONS,
    MachineConfig,
    SimulationResult,
    normalized_cycles,
    run_experiment,
    run_schemes,
)
from repro.harness.figures import (
    ALL_FIGURES,
    AGGRESSIVE,
    RELAXED,
    FigureResult,
    execution_context,
    run_figure,
)
from repro.harness.report import format_table, percent, relative
from repro.harness.runner import (
    Job,
    ParallelRunner,
    RunnerError,
    RunnerStats,
)
from repro.harness.sweeps import SweepResult, decay_window_sweep, scheme_sweep, sweep

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "MachineConfig",
    "SimulationResult",
    "normalized_cycles",
    "run_experiment",
    "run_schemes",
    "ALL_FIGURES",
    "AGGRESSIVE",
    "RELAXED",
    "FigureResult",
    "execution_context",
    "run_figure",
    "format_table",
    "percent",
    "relative",
    "SweepResult",
    "decay_window_sweep",
    "scheme_sweep",
    "sweep",
    "Job",
    "ParallelRunner",
    "RunnerError",
    "RunnerStats",
    "ResultCache",
    "UncacheableJobError",
    "code_version",
    "job_key",
    "result_from_dict",
    "result_to_dict",
]
