"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN: keep the cell short and unmistakable
            return "nan"
        return f"{value:.3f}"
    return str(value)


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_table(columns: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned ASCII table.

    Numeric cells are right-justified so that sign characters and NaNs
    don't break the column layout; labels stay left-justified.
    """
    cell_rows = [[(_fmt(v), _is_numeric(v)) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in cell_rows:
        for i, (cell, _) in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    rule = "-" * len(header)
    lines = [header, rule]
    for row in cell_rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if numeric else cell.ljust(widths[i])
                for i, (cell, numeric) in enumerate(row)
            )
        )
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (one bar per label).

    Bars are scaled to the maximum value; useful for eyeballing figure
    output in a terminal without plotting dependencies.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        return ""
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak)) if value > 0 else 0
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)}  {bar} {_fmt(value)}{unit}")
    return "\n".join(lines)


def percent(value: float) -> str:
    """0.036 -> '3.6%'."""
    return f"{value * 100:.1f}%"


def relative(value: float, base: float = 1.0) -> str:
    """1.036 -> '+3.6%' (relative to *base*)."""
    delta = (value / base - 1.0) * 100
    sign = "+" if delta >= 0 else ""
    return f"{sign}{delta:.1f}%"
