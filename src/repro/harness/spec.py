"""The experiment specification: one frozen value = one simulation.

Historically :func:`repro.harness.experiment.run_experiment` grew a long
keyword tail (error rate, error model, seeds, scrubbing, warm-up, iL1
injection, plus free-form scheme kwargs).  :class:`ExperimentSpec`
replaces that sprawl with a single frozen dataclass:

* every run parameter is a field with the same default the keyword form
  used, so a spec built with no arguments reproduces a bare
  ``run_experiment(benchmark, scheme)`` call bit-for-bit;
* free-form scheme kwargs (``decay_window``, ``victim_policy``, ...) are
  normalized into a sorted tuple of ``(name, value)`` pairs, making two
  specs that mean the same run compare (and hash) equal;
* :meth:`ExperimentSpec.key` is the content-addressed cache key — the
  same key the :class:`~repro.harness.runner.ParallelRunner` uses — so
  campaign trials, sweeps and ad-hoc runs all share one cache identity;
* :meth:`ExperimentSpec.replace` derives variants (a new ``error_seed``
  per Monte Carlo trial, a new ``trace_seed`` per statistics run)
  without mutating anything.

``run_experiment(spec)`` is the sole entry point (the deprecated
keyword shim has been removed); :meth:`ExperimentSpec.from_kwargs`
builds a spec from the legacy keyword vocabulary.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from repro.cache.hierarchy import HierarchyConfig
from repro.cache.set_assoc import CacheGeometry
from repro.core.config import ICRConfig
from repro.core.registry import normalize_scheme_name
from repro.cpu.pipeline import PipelineConfig
from repro.workloads.generator import WorkloadProfile

#: Default trace length.  The paper runs 500M instructions on SimpleScalar;
#: a pure-Python model uses shorter traces, long past dL1 warm-up (the
#: convergence test in tests/test_integration_convergence.py verifies the
#: metrics are stable at this scale).
DEFAULT_INSTRUCTIONS = 200_000


@dataclass(frozen=True)
class MachineConfig:
    """The full Table 1 machine around the dL1 under study."""

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    parity_fraction: float = 0.15
    ecc_fraction: float = 0.30


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything one :func:`run_experiment` call depends on.

    *benchmark* is a benchmark name or a full
    :class:`~repro.workloads.generator.WorkloadProfile`; *scheme* is a
    scheme name (see :mod:`repro.core.schemes`) or a prebuilt
    :class:`~repro.core.config.ICRConfig`.  *scheme_kwargs* holds the
    extra keyword arguments forwarded to
    :func:`repro.core.schemes.make_config` when *scheme* is a name; pass
    a mapping — it is canonicalized to a sorted tuple of pairs.
    """

    benchmark: Union[str, WorkloadProfile]
    scheme: Union[str, ICRConfig]
    n_instructions: int = DEFAULT_INSTRUCTIONS
    machine: Optional[MachineConfig] = None
    error_rate: float = 0.0
    error_model: str = "random"
    error_seed: int = 12345
    measure_vulnerability: bool = False
    scrub_period: Optional[int] = None
    trace_seed: int = 0
    warmup_instructions: int = 0
    icache_error_rate: float = 0.0
    #: Simulation kernel: "object" (the CacheBlock-based reference
    #: implementation) or "array" (the struct-of-arrays kernel of
    #: repro.core.array_kernel, bit-identical where supported and
    #: falling back to the object kernel elsewhere).  Participates in
    #: :meth:`key`, so results from different backends never share a
    #: cache entry.
    backend: str = "object"
    scheme_kwargs: tuple = ()

    def __post_init__(self):
        if self.backend not in ("object", "array"):
            raise ValueError(
                f"unknown backend {self.backend!r}; choose 'object' or 'array'"
            )
        if isinstance(self.scheme, str):
            # Canonicalize through the registry: every accepted spelling
            # of a scheme shares one spec (and one cache key), and typos
            # fail here with the list of registered schemes instead of
            # deep inside a worker.
            object.__setattr__(
                self, "scheme", normalize_scheme_name(self.scheme)
            )
        kwargs = self.scheme_kwargs
        if isinstance(kwargs, Mapping):
            items = kwargs.items()
        else:
            items = tuple(kwargs)
        normalized = tuple(sorted((str(k), _freeze(v)) for k, v in items))
        object.__setattr__(self, "scheme_kwargs", normalized)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_kwargs(
        cls,
        benchmark: Union[str, WorkloadProfile],
        scheme: Union[str, ICRConfig],
        **kwargs: Any,
    ) -> "ExperimentSpec":
        """Build a spec from the legacy ``run_experiment`` keyword form.

        Keywords matching a spec field set that field; everything else is
        collected into :attr:`scheme_kwargs`.
        """
        known = {}
        scheme_kwargs = {}
        for name, value in kwargs.items():
            if name in _SPEC_FIELDS:
                known[name] = value
            else:
                scheme_kwargs[name] = value
        return cls(benchmark, scheme, scheme_kwargs=scheme_kwargs, **known)

    def replace(self, **changes: Any) -> "ExperimentSpec":
        """A copy of this spec with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def with_seed(self, error_seed: int) -> "ExperimentSpec":
        """The same experiment under a different fault-injection seed."""
        return self.replace(error_seed=error_seed)

    def with_backend(self, backend: str) -> "ExperimentSpec":
        """The same experiment on a different simulation kernel.

        Used by backend-aware dispatch: the scheduler probes
        :func:`repro.core.array_kernel.backend_mode` on the array twin
        of a spec to decide which kernel a cell's trials should run on.
        Note the backend participates in :meth:`key`, so the twin is a
        distinct cache identity.
        """
        return self.replace(backend=backend)

    # -- views ------------------------------------------------------------

    @property
    def benchmark_name(self) -> str:
        return (
            self.benchmark
            if isinstance(self.benchmark, str)
            else self.benchmark.name
        )

    @property
    def scheme_name(self) -> str:
        return self.scheme if isinstance(self.scheme, str) else self.scheme.name

    @property
    def label(self) -> str:
        return f"{self.benchmark_name}/{self.scheme_name}"

    def run_kwargs(self) -> dict[str, Any]:
        """The keyword dict equivalent of this spec (scheme kwargs splatted).

        ``ExperimentSpec.from_kwargs(spec.benchmark, spec.scheme,
        **spec.run_kwargs()) == spec`` for every spec, which is what keeps
        the spec path and the legacy keyword path cache-key identical.
        """
        out: dict[str, Any] = {
            name: getattr(self, name) for name in _SPEC_FIELDS
        }
        out.update(dict(self.scheme_kwargs))
        return out

    def key(self) -> str:
        """Content-addressed cache key (see :mod:`repro.harness.cache`)."""
        from repro.harness.cache import job_key

        return job_key(self.benchmark, self.scheme, self.run_kwargs())

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe wire form; the simulation service's submission payload.

        Round-trips exactly: ``ExperimentSpec.from_dict(spec.to_dict())``
        equals *spec* and shares its :meth:`key` — the property that
        makes a spec submitted over HTTP the same cache identity as one
        run locally.  *scheme* must be a registered name (prebuilt
        :class:`~repro.core.config.ICRConfig` objects have no stable
        wire form); *benchmark* may be a name or a full
        :class:`~repro.workloads.generator.WorkloadProfile`.  Raises
        :class:`ValueError` for specs that cannot be represented.
        """
        if not isinstance(self.scheme, str):
            raise ValueError(
                "only named schemes are wire-serializable; got a prebuilt "
                f"{type(self.scheme).__name__}"
            )
        out: dict[str, Any] = {
            "format": SPEC_WIRE_FORMAT,
            "benchmark": (
                self.benchmark
                if isinstance(self.benchmark, str)
                else {"__profile__": dataclasses.asdict(self.benchmark)}
            ),
            "scheme": self.scheme,
            "scheme_kwargs": {
                name: _wire_value(value) for name, value in self.scheme_kwargs
            },
        }
        for name in _SPEC_FIELDS:
            value = getattr(self, name)
            if name == "machine":
                value = _machine_to_dict(value) if value is not None else None
            out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict` (raises :class:`ValueError` on bad input)."""
        if data.get("format") != SPEC_WIRE_FORMAT:
            raise ValueError(f"unsupported spec format {data.get('format')!r}")
        benchmark = data["benchmark"]
        if isinstance(benchmark, dict):
            benchmark = WorkloadProfile(**benchmark["__profile__"])
        known: dict[str, Any] = {}
        for name in _SPEC_FIELDS:
            if name not in data:
                continue
            value = data[name]
            if name == "machine" and value is not None:
                value = _machine_from_dict(value)
            known[name] = value
        scheme_kwargs = {
            name: _unwire_value(value)
            for name, value in dict(data.get("scheme_kwargs", {})).items()
        }
        return cls(
            benchmark, data["scheme"], scheme_kwargs=scheme_kwargs, **known
        )


def _freeze(value: Any) -> Any:
    """Recursively turn lists into tuples so spec fields stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


#: Version tag of the spec wire form (:meth:`ExperimentSpec.to_dict`).
SPEC_WIRE_FORMAT = 1


def _wire_value(value: Any) -> Any:
    """JSON-safe form of one scheme kwarg (raises ValueError otherwise).

    Enums are tagged with their import path so :func:`_unwire_value`
    reconstructs the *same* object — a spec built with
    ``victim_policy=VictimPolicy.DEAD_FIRST`` and its wire round-trip
    hash to one cache key.
    """
    if isinstance(value, enum.Enum):
        cls = type(value)
        return {
            "__enum__": f"{cls.__module__}:{cls.__qualname__}",
            "value": value.value,
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_wire_value(v) for v in value]
    raise ValueError(
        f"scheme kwarg of type {type(value).__name__} is not wire-serializable"
    )


def _unwire_value(value: Any) -> Any:
    """Inverse of :func:`_wire_value`.

    Wire payloads are untrusted (the job server feeds them straight off
    the network), so the ``__enum__`` tag is *not* a free import-and-call
    gadget: the path must resolve inside this package and to an actual
    :class:`enum.Enum` subclass, or the payload is rejected.
    """
    if isinstance(value, dict):
        path = value.get("__enum__")
        if not isinstance(path, str) or ":" not in path:
            raise ValueError(f"malformed wire value {value!r}")
        module_name, _, qualname = path.partition(":")
        root = __name__.partition(".")[0]
        if module_name != root and not module_name.startswith(root + "."):
            raise ValueError(
                f"wire enum {path!r} is outside the {root!r} package"
            )
        try:
            obj: Any = importlib.import_module(module_name)
            for part in qualname.split("."):
                obj = getattr(obj, part)
        except (ImportError, AttributeError):
            raise ValueError(f"wire enum {path!r} does not resolve") from None
        if not (isinstance(obj, type) and issubclass(obj, enum.Enum)):
            raise ValueError(f"wire enum {path!r} is not an enum type")
        return obj(value["value"])
    if isinstance(value, list):
        return [_unwire_value(v) for v in value]
    return value


def _machine_to_dict(machine: MachineConfig) -> dict[str, Any]:
    """Wire form of a full machine (all leaves are plain scalars)."""
    if machine.pipeline.fu_specs is not None:
        raise ValueError("custom fu_specs are not wire-serializable")
    return dataclasses.asdict(machine)


def _machine_from_dict(data: Mapping[str, Any]) -> MachineConfig:
    hierarchy = dict(data["hierarchy"])
    for geom in ("l1i_geometry", "l2_geometry"):
        hierarchy[geom] = CacheGeometry(**hierarchy[geom])
    return MachineConfig(
        hierarchy=HierarchyConfig(**hierarchy),
        pipeline=PipelineConfig(**data["pipeline"]),
        parity_fraction=data["parity_fraction"],
        ecc_fraction=data["ecc_fraction"],
    )


#: Run-parameter fields of the spec (everything except the identity pair
#: and the free-form scheme kwargs).  Also the single source of truth for
#: the keyword defaults the cache normalizes omitted arguments against.
_SPEC_FIELDS: tuple[str, ...] = tuple(
    f.name
    for f in dataclasses.fields(ExperimentSpec)
    if f.name not in ("benchmark", "scheme", "scheme_kwargs")
)

RUN_DEFAULTS: dict[str, Any] = {
    f.name: f.default
    for f in dataclasses.fields(ExperimentSpec)
    if f.name in _SPEC_FIELDS
}
