"""Generic parameter sweeps over the experiment runner.

The figure functions in :mod:`repro.harness.figures` cover the paper's
plots; this module provides the free-form sweep utilities used by the
examples and by exploratory work (new decay windows, distance lists,
scheme subsets, machine variations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.core.registry import normalize_scheme_name
from repro.harness.experiment import SimulationResult
from repro.harness.report import format_table
from repro.harness.runner import Job, ParallelRunner
from repro.harness.spec import DEFAULT_INSTRUCTIONS, ExperimentSpec, MachineConfig


@dataclass
class SweepResult:
    """Results of a sweep, indexed by (benchmark, point label)."""

    parameter: str
    results: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[tuple[tuple[str, str], SimulationResult]]:
        """Iterate ``((benchmark, label), result)`` pairs in insertion order."""
        return iter(self.results.items())

    def metric(self, name: str) -> dict[tuple[str, str], float]:
        """Extract one metric (attribute name) across all points."""
        return {key: getattr(r, name) for key, r in self.results.items()}

    def table(self, metrics: Sequence[str]) -> str:
        columns = ["benchmark", self.parameter] + list(metrics)
        rows = []
        for (bench, label), r in sorted(self.results.items()):
            rows.append([bench, label] + [getattr(r, m) for m in metrics])
        return format_table(columns, rows)


def _resolve_runner(
    runner: Optional[ParallelRunner], jobs: Optional[int]
) -> ParallelRunner:
    """The engine a sweep runs on: the caller's, or a plain serial one."""
    if runner is not None:
        return runner
    return ParallelRunner(jobs=jobs or 1)


def sweep(
    parameter: str,
    points: Iterable[tuple[str, dict]],
    benchmarks: Sequence[str],
    scheme: str = "ICR-P-PS(S)",
    *,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    machine: Optional[MachineConfig] = None,
    base_kwargs: Optional[dict] = None,
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
) -> SweepResult:
    """Run *scheme* on each benchmark at every sweep point.

    *points* is an iterable of ``(label, kwargs)`` pairs; each ``kwargs``
    dict is merged over *base_kwargs* and forwarded to
    :func:`~repro.harness.experiment.run_experiment`.  The whole grid is
    executed through a :class:`~repro.harness.runner.ParallelRunner` —
    pass *jobs* (worker count) or a preconfigured *runner* (e.g. with a
    result cache attached); the default is serial, uncached, in-process.
    """
    engine = _resolve_runner(runner, jobs)
    points = list(points)
    out = SweepResult(parameter=parameter)
    grid: list[tuple[tuple[str, str], Job]] = []
    for bench in benchmarks:
        for label, kwargs in points:
            merged: dict[str, Any] = dict(base_kwargs or {})
            merged.update(kwargs)
            spec = ExperimentSpec.from_kwargs(
                bench,
                scheme,
                n_instructions=n_instructions,
                machine=machine,
                **merged,
            )
            grid.append(((bench, str(label)), Job.from_spec(spec)))
    for (key, _), result in zip(grid, engine.run([job for _, job in grid])):
        out.results[key] = result
    return out


def decay_window_sweep(
    benchmarks: Sequence[str],
    windows: Sequence[int] = (0, 250, 1000, 4000, 10000),
    scheme: str = "ICR-P-PS(S)",
    **kwargs,
) -> SweepResult:
    """The Section 5.3 sweep generalized to any benchmark set."""
    points = [(str(w), {"decay_window": w}) for w in windows]
    return sweep("decay_window", points, benchmarks, scheme, **kwargs)


def replication_factor_sweep(
    benchmarks: Sequence[str],
    factors: Sequence[int] = (1, 2, 3),
    scheme: str = "ICR-P-PS(S)",
    *,
    virtual_nodes: int = 8,
    ring_attempts: int = 4,
    **kwargs,
) -> SweepResult:
    """Hash-ring placement: sweep the replication factor N.

    Runs *scheme* with ``placement="ring"`` at each factor (the
    ring-placement analogue of the paper's distance ablation); pair it
    with the plain scheme run to compare against the Distance-N/2 walk.
    """
    points = [
        (
            str(n),
            {
                "placement": "ring",
                "replication_factor": n,
                "virtual_nodes": virtual_nodes,
                "ring_attempts": ring_attempts,
            },
        )
        for n in factors
    ]
    return sweep("replication_factor", points, benchmarks, scheme, **kwargs)


def scheme_sweep(
    benchmarks: Sequence[str],
    schemes: Sequence[str],
    *,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    scheme_kwargs: Optional[Callable[[str], dict]] = None,
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
    **kwargs,
) -> SweepResult:
    """Run a set of schemes; sweep point label = scheme name."""
    engine = _resolve_runner(runner, jobs)
    out = SweepResult(parameter="scheme")
    grid: list[tuple[tuple[str, str], Job]] = []
    # Canonicalize up front: the per-scheme kwargs callback and the
    # result keys both see registry spellings, whatever the caller wrote.
    schemes = [normalize_scheme_name(s) for s in schemes]
    for bench in benchmarks:
        for scheme in schemes:
            extra = scheme_kwargs(scheme) if scheme_kwargs else {}
            spec = ExperimentSpec.from_kwargs(
                bench,
                scheme,
                n_instructions=n_instructions,
                **extra,
                **kwargs,
            )
            grid.append(((bench, scheme), Job.from_spec(spec)))
    for (key, _), result in zip(grid, engine.run([job for _, job in grid])):
        out.results[key] = result
    return out
