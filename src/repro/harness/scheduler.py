"""Continuous work-stealing campaign execution.

:class:`StealingCampaignEngine` replaces the round-barrier discipline of
:class:`~repro.harness.campaign.CampaignEngine` with a streaming one:
every campaign cell keeps its own task deque (retries first, then fresh
trial indices), a shared :class:`~repro.harness.runner.RunnerSession`
executes trials continuously, and the dispatcher refills worker capacity
the instant a trial completes — stealing from another cell's deque when
the cell that just freed the slot has nothing left to run.

The hard invariant is that the final :class:`CampaignReport` is
**byte-identical** to the round scheduler's.  The argument:

* Adaptive stopping (``_cell_done``) is only consulted at batch-aligned
  committed-record counts, so the stopping rule is a pure function of
  the committed records — never of completion order, timing, worker
  count or scheduler.
* The stealing engine *stages* results as they arrive out of order and
  commits them strictly in contiguous trial-index order, holding an
  index until its full retry chain has resolved.  At every batch
  boundary the committed set therefore equals what the round engine
  would have on its barrier — the stopping decisions coincide.
* Work past the current *firm* frontier (the batch the stopping rule
  has already approved) is **speculative**: it is submitted early to
  keep workers busy, but its results are only committed once the
  boundary evaluation lets the cell continue.  The moment a cell
  converges, its queued trials are revoked mid-flight and its staged
  speculative results are discarded — they were never committed, so
  the report cannot see them.
* Aggregation (bootstrap CIs included) is deterministic given the
  records, and the report sorts records by ``(index, attempt)``.

Straggler mitigation duplicates the longest-in-flight trial once it
looks pathological; the duplicate runs the *same* spec, so whichever
copy finishes first yields the identical deterministic result (and the
content-addressed cache makes the loser's store idempotent).

Multi-host cooperation (``share_dir=``): engines pointed at the same
share directory claim cells one at a time through TTL-bounded
:class:`~repro.harness.cache.FileLease` files, publish their committed
records as they go, adopt each other's published records, take over
stale leases after a crash, and — when every remaining cell is owned by
a live peer — run *helper* trials that warm the shared result cache
without committing anything, so the owner's submissions become cache
hits.  One committer per cell keeps the determinism argument intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.harness.cache import FileLease
from repro.harness.campaign import CampaignEngine, Cell, TrialRecord
from repro.harness.runner import Job, RunnerError

#: Log-spaced per-trial latency histogram bucket edges (seconds).
HIST_EDGES = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0)


def _latency_summary(values: list) -> dict:
    """Order statistics plus a log-bucket histogram of trial latencies."""
    vals = sorted(values)
    n = len(vals)
    counts = [0] * (len(HIST_EDGES) + 1)
    for v in vals:
        i = 0
        while i < len(HIST_EDGES) and v >= HIST_EDGES[i]:
            i += 1
        counts[i] += 1
    return {
        "count": n,
        "mean": sum(vals) / n,
        "p50": vals[n // 2],
        "p90": vals[min(n - 1, (9 * n) // 10)],
        "max": vals[-1],
        "histogram": {"edges": list(HIST_EDGES), "counts": counts},
    }


@dataclass
class _CellRun:
    """Scheduler-side state of one cell (the committed state lives in
    the engine's :class:`CellOutcome`, shared with the round engine)."""

    cell: Cell
    done: bool = False
    owned: bool = True
    next_submit: int = 0
    #: (index, attempt) pairs waiting to be resubmitted after a failure.
    retries: deque = field(default_factory=deque)
    #: index -> [(attempt, result), ...] staged, not yet committed.
    staged: dict = field(default_factory=dict)
    #: Indices whose retry chain has fully resolved (commit-eligible).
    resolved: set = field(default_factory=set)
    #: (index, attempt) -> TrialHandle for primary submissions.
    inflight: dict = field(default_factory=dict)
    #: (index, attempt) -> TrialHandle for speculative duplicates.
    dups: dict = field(default_factory=dict)
    #: Outstanding helper handles (unowned cells, cache warming only).
    helpers: list = field(default_factory=list)
    #: Committed count the stopping rule was last evaluated at (memo).
    checked: int = -1
    lease: Optional[FileLease] = None
    #: Next index a helper trial would warm for this (unowned) cell.
    helper_next: int = 0
    #: Record count at the last publish (skip no-op publishes).
    published: int = -1
    #: monotonic time of the last failed lease-claim attempt (throttle).
    last_claim: float = -1e9


class StealingCampaignEngine(CampaignEngine):
    """Work-stealing campaign engine (byte-identical reports).

    Parameters beyond :class:`CampaignEngine`'s
    ----------------------------------------
    workers:
        Session worker-process count (default: the runner's ``jobs``).
    max_inflight:
        Cap on queued-plus-running trials (default ``4 * workers``) —
        enough lookahead to hide scheduling latency without revoking
        large swaths of work on convergence.
    lookahead_batches:
        How many batches past the firm frontier a cell may speculate
        (0 disables speculation; only meaningful with adaptive
        stopping).
    speculate_after:
        Seconds an in-flight trial must age before a duplicate is
        launched against it; ``None`` auto-tunes to 4x the observed
        median latency (and disables duplication until 8 latencies are
        seen).  Duplication needs a real pool (``workers > 1``).
    share_dir:
        Directory shared between cooperating engines (lease + published
        record files).  ``None`` (default) disables cooperation.
    lease_ttl / coop_interval:
        Lease staleness horizon and the cadence of renew/publish/adopt
        ticks; keep ``lease_ttl`` several multiples of
        ``coop_interval``.
    """

    SCHEDULER = "stealing"

    def __init__(
        self,
        config,
        runner=None,
        *,
        workers: Optional[int] = None,
        max_inflight: Optional[int] = None,
        lookahead_batches: int = 2,
        speculate_after: Optional[float] = None,
        share_dir: Union[str, Path, None] = None,
        lease_ttl: float = 30.0,
        coop_interval: float = 0.5,
        **engine_kwargs: Any,
    ):
        super().__init__(config, runner, **engine_kwargs)
        self.workers = (
            workers if workers and workers > 0 else self.runner.jobs
        )
        self.max_inflight = (
            max_inflight
            if max_inflight and max_inflight > 0
            else 4 * self.workers
        )
        self.lookahead_batches = max(0, lookahead_batches)
        self.speculate_after = speculate_after
        self.share_dir = Path(share_dir) if share_dir else None
        self.lease_ttl = lease_ttl
        self.coop_interval = coop_interval
        self.owner_id = (
            f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
        )
        # -- telemetry counters (never part of the report) --
        self.steals = 0
        self.speculative_submits = 0
        self.duplicate_submits = 0
        self.cancelled_savings = 0
        self.discarded_results = 0
        self.records_adopted = 0
        self.helper_submits = 0
        self.helper_completed = 0
        self.helper_warmed = 0
        self.lease_takeovers = 0
        #: Ordered trace of ("submit", cell_id, index, attempt, kind)
        #: and ("cell-done", cell_id) events — the zero-trials-after-
        #: convergence test reads this.
        self.events: list = []
        self._busy = 0.0
        self._run_elapsed = 0.0
        self._latency: dict = {}
        self._submit_times: dict = {}
        self._cells: dict = {}
        self._order: list = []
        self._rr = 0
        self._commits = 0
        self._last_coop = -1e9

    # -- frontier geometry ------------------------------------------------

    def _firm_end(self, cs: _CellRun) -> int:
        """End of the batch the stopping rule has already approved."""
        committed = self._next_index(self.outcomes[cs.cell])
        if committed >= self.config.trials:
            return committed
        return self._batch_stop(committed)

    def _submit_limit(self, cs: _CellRun) -> int:
        """First index this cell may *not* submit yet.

        Without adaptive stopping every index up to ``trials`` is firm.
        With it, the firm batch plus ``lookahead_batches`` speculative
        batches may be in flight; anything beyond waits for the next
        boundary decision.
        """
        if cs.done:
            return 0
        if self.config.target_half_width is None:
            return self.config.trials
        return min(
            self._firm_end(cs)
            + self.lookahead_batches * self.config.batch_size,
            self.config.trials,
        )

    # -- run loop ---------------------------------------------------------

    def run(self, max_rounds=None, *, max_trials: Optional[int] = None):
        """Stream trials until every cell is done (or a budget is hit).

        *max_trials* bounds the records committed by this call (the
        interrupt/resume tests use it); *max_rounds* is accepted for
        API parity with the round engine and maps to an equivalent
        trial budget of ``max_rounds * batch_size * n_cells``.
        """
        if max_trials is None and max_rounds is not None:
            max_trials = (
                max_rounds * self.config.batch_size * len(self.config.cells())
            )
        t0 = time.monotonic()
        coop = self.share_dir is not None
        self._cells = {cell: _CellRun(cell) for cell in self.config.cells()}
        self._order = list(self._cells.values())
        self._rr = 0
        self._commits = 0
        for cs in self._order:
            outcome = self.outcomes[cs.cell]
            cs.next_submit = self._next_index(outcome)
            cs.helper_next = cs.next_submit
            cs.owned = not coop
            self._drain(cs, None)  # checkpointed records may finish a cell
        if coop:
            (self.share_dir / "leases").mkdir(parents=True, exist_ok=True)
            (self.share_dir / "cells").mkdir(parents=True, exist_ok=True)
        session = self.runner.session(workers=self.workers)
        last_cell = None
        try:
            with session:
                while True:
                    if all(cs.done for cs in self._order):
                        break
                    if max_trials is not None and self._commits >= max_trials:
                        break
                    if coop:
                        self._coop_tick(session)
                    self._dispatch(session, last_cell)
                    last_cell = None
                    handle = session.next_completed(
                        timeout=self.coop_interval if coop else None
                    )
                    if handle is None:
                        if session.outstanding() == 0:
                            if not coop:
                                break  # defensive: nothing runnable
                            time.sleep(min(0.05, self.coop_interval))
                        continue
                    last_cell = handle.tag[0]
                    self._on_complete(session, handle)
        finally:
            try:
                if coop:
                    for cs in self._order:
                        if cs.owned:
                            self._publish(cs)
                            self._release(cs)
            finally:
                self._submit_times.clear()
                self._maybe_checkpoint(force=True)
                self._run_elapsed += time.monotonic() - t0
        return self.report()

    # -- dispatch ---------------------------------------------------------

    def _dispatch(self, session, freed_cell=None) -> None:
        """Refill worker capacity from the per-cell deques.

        The first refill after a completion prefers the cell that just
        freed the slot; serving any other cell instead is counted as a
        steal.  Once regular work runs dry the dispatcher falls back to
        claiming an unowned cell (multi-host), helper trials, then
        speculative duplication of stragglers.
        """
        prefer = freed_cell
        while (
            session.in_flight() < self.max_inflight
            and session.outstanding() < 4 * self.max_inflight
        ):
            picked = self._next_work(prefer)
            prefer = None
            if picked is None:
                if self.share_dir is not None and self._claim_one(session):
                    continue
                if self._maybe_helper(session):
                    continue
                if self._maybe_duplicate(session):
                    return  # at most one duplicate per dispatch pass
                return
            cs, index, attempt = picked
            kind = "trial"
            if (
                self.config.target_half_width is not None
                and index >= self._firm_end(cs)
            ):
                kind = "spec"
                self.speculative_submits += 1
            self._submit(session, cs, index, attempt, kind)

    def _cell_work(self, cs: _CellRun):
        """The cell's next (index, attempt), or None (retries first)."""
        if cs.done or not cs.owned:
            return None
        if cs.retries:
            return cs.retries.popleft()
        if cs.next_submit < self._submit_limit(cs):
            index = cs.next_submit
            cs.next_submit += 1
            return (index, 0)
        return None

    def _next_work(self, prefer: Optional[Cell]):
        """Pick the next (cell, index, attempt), stealing if needed."""
        if prefer is not None:
            cs = self._cells.get(prefer)
            if cs is not None:
                work = self._cell_work(cs)
                if work is not None:
                    return (cs, *work)
        n = len(self._order)
        for k in range(n):
            cs = self._order[(self._rr + k) % n]
            work = self._cell_work(cs)
            if work is not None:
                self._rr = (self._rr + k) % n
                if prefer is not None and cs.cell != prefer:
                    self.steals += 1
                return (cs, *work)
        return None

    def _submit(self, session, cs, index, attempt, kind):
        spec = self.config.trial_spec(cs.cell, index, attempt)
        handle = session.submit(
            Job.from_spec(spec), tag=(cs.cell, index, attempt, kind)
        )
        self._submit_times[handle] = time.monotonic()
        self.events.append(("submit", cs.cell.id, index, attempt, kind))
        if kind == "helper":
            cs.helpers.append(handle)
            self.helper_submits += 1
        elif kind == "dup":
            cs.dups[(index, attempt)] = handle
            self.duplicate_submits += 1
        else:
            cs.inflight[(index, attempt)] = handle
        return handle

    def _maybe_duplicate(self, session) -> bool:
        """Launch one duplicate of the oldest pathological straggler."""
        if self.workers <= 1:
            return False
        threshold = self.speculate_after
        if threshold is None:
            latencies = [v for vals in self._latency.values() for v in vals]
            if len(latencies) < 8:
                return False
            threshold = max(1.0, 4 * sorted(latencies)[len(latencies) // 2])
        now = time.monotonic()
        best = None
        for cs in self._order:
            if cs.done:
                continue
            for (index, attempt), handle in cs.inflight.items():
                if (index, attempt) in cs.dups or handle.done:
                    continue
                started = self._submit_times.get(handle)
                if started is None:
                    continue
                age = now - started
                if age >= threshold and (best is None or age > best[0]):
                    best = (age, cs, index, attempt)
        if best is None:
            return False
        _, cs, index, attempt = best
        self._submit(session, cs, index, attempt, "dup")
        return True

    # -- completion + commit ----------------------------------------------

    def _on_complete(self, session, handle) -> None:
        cell, index, attempt, kind = handle.tag
        cs = self._cells[cell]
        started = self._submit_times.pop(handle, None)
        if started is not None and not handle.cached:
            elapsed = time.monotonic() - started
            self._busy += elapsed
            mode = self.config.trial_mode(cell)
            self._latency.setdefault(mode, []).append(elapsed)
        if kind == "helper":
            self.helper_completed += 1
            if not handle.cached and not isinstance(handle.result, RunnerError):
                # A genuinely fresh simulation now sits in the shared
                # result cache for the owning engine to hit.
                self.helper_warmed += 1
            try:
                cs.helpers.remove(handle)
            except ValueError:
                pass
            return  # cache warmed; the owner commits this trial
        primary = cs.inflight.pop((index, attempt), None)
        dup = cs.dups.pop((index, attempt), None)
        if primary is None and dup is None:
            return  # twin already processed, or the cell was abandoned
        twin = dup if handle is primary else primary
        if twin is not None and twin is not handle:
            # First completion wins; same spec -> identical result, so
            # which copy wins never shows in the records.
            if session.cancel(twin):
                self.cancelled_savings += 1
            self._submit_times.pop(twin, None)
        if cs.done:
            self.discarded_results += 1
            return
        cs.staged.setdefault(index, []).append((attempt, handle.result))
        if (
            isinstance(handle.result, RunnerError)
            and attempt < self.config.max_trial_retries
        ):
            cs.retries.append((index, attempt + 1))
        else:
            cs.resolved.add(index)
        self._drain(cs, session)

    def _drain(self, cs: _CellRun, session) -> None:
        """Commit the resolved contiguous prefix; stop on convergence.

        The stopping rule runs at most once per committed-count value
        (``cs.checked`` memoizes the boundary evaluation); it only does
        real work at batch boundaries, exactly like the round engine's
        barrier.
        """
        outcome = self.outcomes[cs.cell]
        while not cs.done:
            committed = self._next_index(outcome)
            if committed != cs.checked:
                cs.checked = committed
                if self._cell_done(outcome):
                    cs.done = True
                    self.events.append(("cell-done", cs.cell.id))
                    if self.verbose:
                        print(
                            f"[campaign] cell {cs.cell.id} done "
                            f"({len(outcome.records)} records)",
                            file=self.stream,
                        )
                    self._abandon(cs, session)
                    if self.share_dir is not None and cs.owned:
                        self._publish(cs)
                        self._release(cs)
                    return
            if committed not in cs.resolved:
                return
            cs.resolved.discard(committed)
            for attempt, result in sorted(
                cs.staged.pop(committed, ()), key=lambda item: item[0]
            ):
                self._record(cs.cell, committed, attempt, result)
                self._commits += 1
            self._maybe_checkpoint()

    def _abandon(self, cs: _CellRun, session) -> None:
        """Revoke a converged cell's queued work, discard its stage."""
        pending = (
            list(cs.inflight.values()) + list(cs.dups.values()) + cs.helpers
        )
        for handle in pending:
            if session is not None and session.cancel(handle):
                self.cancelled_savings += 1
                self._submit_times.pop(handle, None)
        cs.inflight.clear()
        cs.dups.clear()
        cs.helpers = []
        self.discarded_results += sum(
            len(events) for events in cs.staged.values()
        )
        cs.staged.clear()
        cs.resolved.clear()
        cs.retries.clear()

    # -- multi-host cooperation -------------------------------------------

    def _cell_hash(self, cell: Cell) -> str:
        return hashlib.blake2b(cell.id.encode(), digest_size=12).hexdigest()

    def _lease_for(self, cs: _CellRun) -> FileLease:
        if cs.lease is None:
            cs.lease = FileLease(
                self.share_dir / "leases" / f"{self._cell_hash(cs.cell)}.lease",
                self.owner_id,
                ttl=self.lease_ttl,
            )
        return cs.lease

    def _release(self, cs: _CellRun) -> None:
        if cs.lease is not None:
            cs.lease.release()

    def _publish(self, cs: _CellRun) -> None:
        """Atomically publish the cell's committed records for peers."""
        outcome = self.outcomes[cs.cell]
        if len(outcome.records) == cs.published:
            return
        path = self.share_dir / "cells" / f"{self._cell_hash(cs.cell)}.json"
        payload = {
            "campaign": self.digest,
            "done": cs.done,
            "records": [r.to_dict() for r in outcome.records],
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            return
        cs.published = len(outcome.records)

    def _adopt(self, cs: _CellRun, session) -> None:
        """Fold a peer's published records into our committed state.

        Published records are the peer's *committed* set — contiguous
        and boundary-gated — so adopting them wholesale preserves the
        determinism argument; the local drain re-derives ``done`` and
        ``stopped_early`` from the records themselves.
        """
        path = self.share_dir / "cells" / f"{self._cell_hash(cs.cell)}.json"
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return
        if payload.get("campaign") != self.digest:
            return
        records = payload.get("records") or []
        outcome = self.outcomes[cs.cell]
        if len(records) <= len(outcome.records):
            return
        adopted = len(records) - len(outcome.records)
        outcome.records = [TrialRecord.from_dict(r) for r in records]
        self.records_adopted += adopted
        self._dirty_records += adopted
        cs.checked = -1
        cs.next_submit = max(cs.next_submit, self._next_index(outcome))
        cs.helper_next = max(cs.helper_next, cs.next_submit)
        self._drain(cs, session)

    def _claim_one(self, session) -> bool:
        """Try to claim one unowned cell's lease (throttled per cell)."""
        now = time.monotonic()
        for cs in self._order:
            if cs.done or cs.owned:
                continue
            if now - cs.last_claim < self.coop_interval:
                continue
            self._adopt(cs, session)  # it may already be finished
            if cs.done:
                continue
            lease = self._lease_for(cs)
            was_stale = lease.is_stale() and lease.holder() is not None
            if lease.acquire():
                if was_stale:
                    self.lease_takeovers += 1
                self._adopt(cs, session)  # start from the peer's frontier
                cs.owned = True
                cs.next_submit = self._next_index(self.outcomes[cs.cell])
                return True
            cs.last_claim = now
        return False

    def _coop_tick(self, session) -> None:
        """Periodic renew / publish / adopt pass (claims happen in
        dispatch, one cell at a time, so two engines partition the grid
        instead of one hoarding every lease up front)."""
        now = time.monotonic()
        if now - self._last_coop < self.coop_interval:
            return
        self._last_coop = now
        for cs in self._order:
            if cs.done:
                continue
            if cs.owned:
                lease = self._lease_for(cs)
                if lease.held():
                    lease.renew()
                self._publish(cs)
            else:
                self._adopt(cs, session)

    def _maybe_helper(self, session) -> bool:
        """Warm the shared cache for a cell a live peer owns."""
        if self.share_dir is None or self.runner.cache is None:
            return False
        if sum(len(cs.helpers) for cs in self._order) >= self.workers:
            return False
        for cs in self._order:
            if cs.done or cs.owned:
                continue
            outcome = self.outcomes[cs.cell]
            committed = self._next_index(outcome)
            cs.helper_next = max(cs.helper_next, committed)
            if self.config.target_half_width is None:
                limit = self.config.trials
            else:
                limit = min(
                    self._batch_stop(committed)
                    + self.lookahead_batches * self.config.batch_size,
                    self.config.trials,
                )
            if cs.helper_next < limit:
                index = cs.helper_next
                cs.helper_next += 1
                self._submit(session, cs, index, 0, "helper")
                return True
        return False

    # -- telemetry --------------------------------------------------------

    def telemetry(self) -> dict:
        """Base counters plus the scheduler-specific instrumentation.

        ``utilization`` approximates worker busy fraction from summed
        trial latencies (submit-to-harvest, so pool queue wait inflates
        it slightly); ``cancelled_savings`` counts trials revoked
        before they ever executed; ``discarded_results`` counts
        simulated-but-never-committed speculative results (they stay in
        the result cache, so they are not pure waste on resume).
        """
        data = super().telemetry()
        elapsed = self._run_elapsed
        busy_share = (
            min(1.0, self._busy / (self.workers * elapsed))
            if elapsed > 0
            else 0.0
        )
        data.update(
            {
                "workers": self.workers,
                "max_inflight": self.max_inflight,
                "utilization": busy_share,
                "steals": self.steals,
                "speculative_submits": self.speculative_submits,
                "speculative_duplicates": self.duplicate_submits,
                "cancelled_savings": self.cancelled_savings,
                "discarded_results": self.discarded_results,
                "records_adopted": self.records_adopted,
                "helper_trials": self.helper_submits,
                "helper_completed": self.helper_completed,
                "helper_warmed": self.helper_warmed,
                "helper_warm_rate": (
                    self.helper_warmed / self.helper_submits
                    if self.helper_submits
                    else 0.0
                ),
                "lease_takeovers": self.lease_takeovers,
                "backend_latency": {
                    mode: _latency_summary(vals)
                    for mode, vals in sorted(self._latency.items())
                },
            }
        )
        return data
