"""Statistical rigor utilities: multi-seed runs and summary statistics.

The paper reports single deterministic runs (simulation noise is not an
issue on a fixed trace).  Our synthetic traces are seeded, so we can do
better: re-run an experiment over several trace seeds and report the mean
and spread of every metric — useful for judging whether a small scheme
difference is real or workload noise.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.harness.experiment import DEFAULT_INSTRUCTIONS, _run_spec
from repro.harness.spec import ExperimentSpec


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread of one metric over seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.n) if self.n > 1 else 0.0

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)


def summarize(values: Sequence[float]) -> MetricSummary:
    """Summary statistics of a sample (population-corrected std)."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return MetricSummary(
        mean=mean, std=math.sqrt(var), minimum=min(values), maximum=max(values), n=n
    )


@dataclass(frozen=True)
class BootstrapCI:
    """Percentile-bootstrap confidence interval for a sample statistic.

    Produced by :func:`bootstrap_ci`; the interval is deterministic for
    a fixed *(values, seed)* pair, which is what lets a resumed fault-
    injection campaign reproduce its report byte-for-byte.
    """

    mean: float
    lo: float
    hi: float
    n: int
    level: float
    resamples: int

    @property
    def half_width(self) -> float:
        """Half the CI width — the campaign's adaptive-stopping signal."""
        return (self.hi - self.lo) / 2.0


def bootstrap_ci(
    values: Sequence[float],
    *,
    level: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
    statistic: Optional[Callable[[Sequence[float]], float]] = None,
) -> BootstrapCI:
    """Percentile bootstrap CI of *statistic* (default: the mean).

    Resampling uses ``random.Random(seed)``, so the interval is a pure
    function of the sample and the seed.  With one observation the
    interval degenerates to the point estimate.
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < level < 1.0:
        raise ValueError("confidence level must be in (0, 1)")
    stat = statistic or (lambda xs: sum(xs) / len(xs))
    values = list(values)
    n = len(values)
    point = stat(values)
    if n == 1:
        return BootstrapCI(
            mean=point, lo=point, hi=point, n=1, level=level,
            resamples=n_resamples,
        )
    rng = random.Random(seed)
    replicates = sorted(
        stat([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(n_resamples)
    )
    alpha = (1.0 - level) / 2.0
    lo_index = min(n_resamples - 1, max(0, int(math.floor(alpha * n_resamples))))
    hi_index = min(
        n_resamples - 1, max(0, int(math.ceil((1.0 - alpha) * n_resamples)) - 1)
    )
    return BootstrapCI(
        mean=point,
        lo=replicates[lo_index],
        hi=replicates[hi_index],
        n=n,
        level=level,
        resamples=n_resamples,
    )


@dataclass
class SeededRun:
    """Per-metric summaries of one experiment repeated over trace seeds."""

    benchmark: str
    scheme: str
    seeds: tuple[int, ...]
    metrics: dict[str, MetricSummary] = field(default_factory=dict)

    def __getitem__(self, metric: str) -> MetricSummary:
        return self.metrics[metric]


#: Metrics summarized by default (attribute names of SimulationResult).
DEFAULT_METRICS = (
    "cycles",
    "cpi",
    "miss_rate",
    "replication_ability",
    "loads_with_replica",
)


def run_with_seeds(
    benchmark: str,
    scheme: str,
    *,
    n_seeds: int = 5,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    metrics: Sequence[str] = DEFAULT_METRICS,
    **kwargs,
) -> SeededRun:
    """Repeat one experiment over *n_seeds* trace seeds and summarize."""
    if n_seeds <= 0:
        raise ValueError("need at least one seed")
    seeds = tuple(range(n_seeds))
    samples: dict[str, list[float]] = {m: [] for m in metrics}
    scheme_name = benchmark_name = None
    base = ExperimentSpec.from_kwargs(
        benchmark, scheme, n_instructions=n_instructions, **kwargs
    )
    for seed in seeds:
        result = _run_spec(base.replace(trace_seed=seed))
        scheme_name = result.scheme
        benchmark_name = result.benchmark
        for metric in metrics:
            samples[metric].append(float(getattr(result, metric)))
    return SeededRun(
        benchmark=benchmark_name,
        scheme=scheme_name,
        seeds=seeds,
        metrics={m: summarize(v) for m, v in samples.items()},
    )


def significant_difference(
    a: MetricSummary, b: MetricSummary, sigma: float = 2.0
) -> bool:
    """Crude Welch-style significance: means differ by > sigma joint SEMs."""
    joint = math.sqrt(a.sem**2 + b.sem**2)
    if joint == 0.0:
        return a.mean != b.mean
    return abs(a.mean - b.mean) > sigma * joint


def compare_with_seeds(
    benchmark: str,
    scheme_a: str,
    scheme_b: str,
    *,
    metric: str = "cycles",
    n_seeds: int = 5,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    kwargs_a: dict | None = None,
    kwargs_b: dict | None = None,
) -> tuple[MetricSummary, MetricSummary, bool]:
    """Seed-paired comparison of one metric between two schemes."""
    a = run_with_seeds(
        benchmark, scheme_a, n_seeds=n_seeds, n_instructions=n_instructions,
        metrics=(metric,), **(kwargs_a or {}),
    )
    b = run_with_seeds(
        benchmark, scheme_b, n_seeds=n_seeds, n_instructions=n_instructions,
        metrics=(metric,), **(kwargs_b or {}),
    )
    return a[metric], b[metric], significant_difference(a[metric], b[metric])
