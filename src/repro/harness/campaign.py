"""Monte Carlo fault-injection campaigns with confidence intervals.

The paper's reliability numbers (Figure 14, the unrecoverable-load
fraction, the AVF census, derived MTTF) come from *one* seeded
fault-injection run per configuration — a single-sample point estimate.
This module upgrades them to statistical campaigns: every
``(benchmark, scheme, error_rate)`` cell runs N independent trials that
differ only in their fault-injection seed, fanned out through the
:class:`~repro.harness.runner.ParallelRunner` (and therefore through
the content-addressed result cache), and the per-trial outcomes are
aggregated into means with percentile-bootstrap confidence intervals.

Design points, in the order a long campaign meets them:

* **Trials are specs.**  Each trial is an
  :class:`~repro.harness.spec.ExperimentSpec` whose ``error_seed`` is a
  hash of (campaign seed, cell, trial index, attempt) — the cache key
  falls out of the spec's content hash, so re-running or resuming a
  campaign never re-simulates a trial it already has.
* **Adaptive stopping.**  With ``target_half_width`` set, a cell stops
  scheduling new trials once the CI half-width of its
  unrecoverable-load fraction drops below the target (after
  ``min_trials``); otherwise it runs the full ``trials`` budget.
* **Graceful degradation.**  A crashed or hung worker costs one
  attempt: the trial is retried with a *fresh* seed (bounded by
  ``max_trial_retries``), and a trial that exhausts its retries is
  recorded as failed in the report instead of aborting the campaign.
* **Checkpointing.**  The engine atomically writes a JSON checkpoint
  of all committed trial records on a dirty-count / elapsed-time
  cadence (and always when a run exits); a new engine pointed at the
  same checkpoint resumes exactly where the interrupted one stopped and
  produces a byte-identical final report (everything downstream of the
  records — bootstrap resampling included — is deterministic).
* **Two schedulers, one report.**  :class:`CampaignEngine` executes in
  synchronous rounds; the work-stealing engine in
  :mod:`repro.harness.scheduler` streams trials continuously and
  cancels queued work the moment a cell converges.  Because adaptive
  stopping is only consulted at batch-aligned record counts (a pure
  function of the committed records, never of completion order or
  timing), both schedulers commit the *same* trial set and render
  byte-identical reports — pick with :func:`create_engine` or the
  ``scheduler=`` argument of :func:`run_campaign`.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro import recovery
from repro.chaos import runtime as _chaos
from repro.core.registry import normalize_scheme_name, scheme_info
from repro.harness.report import format_table
from repro.harness.runner import Job, ParallelRunner, RunnerError
from repro.harness.spec import ExperimentSpec, MachineConfig
from repro.harness.stats import BootstrapCI, bootstrap_ci

#: Version tag of the checkpoint / report plain-data formats.
CAMPAIGN_FORMAT = 1

#: The per-trial metric driving adaptive stopping.
STOPPING_METRIC = "unrecoverable_load_fraction"


def _stable_seed(*parts: Any) -> int:
    """A 63-bit seed pinned by the hash of its parts (never by offsets)."""
    text = "\x00".join(repr(p) for p in parts)
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class Cell:
    """One campaign cell: a (benchmark, scheme, error_rate) triple."""

    benchmark: str
    scheme: str
    error_rate: float

    @property
    def id(self) -> str:
        return f"{self.benchmark}|{self.scheme}|{self.error_rate!r}"


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign depends on (frozen, content-hashable)."""

    benchmarks: tuple[str, ...]
    schemes: tuple[str, ...]
    error_rates: tuple[float, ...] = (1e-2,)
    trials: int = 50
    min_trials: int = 8
    batch_size: int = 10
    target_half_width: Optional[float] = None
    ci_level: float = 0.95
    bootstrap_resamples: int = 1000
    bootstrap_seed: int = 0
    seed0: int = 20_000
    max_trial_retries: int = 2
    #: Per-cell circuit breaker: once this many *consecutive trailing*
    #: trial indices have exhausted their retry budget and failed, the
    #: cell is declared broken (its outcome carries a diagnostic) and
    #: stops scheduling — a systematically-crashing configuration costs
    #: one batch or two, not an endless retry grind.  Checked only at
    #: batch-aligned committed counts, so the decision is a pure
    #: function of the committed records (the round/stealing
    #: byte-identity contract).  0 disables the breaker.
    breaker_threshold: int = 5
    n_instructions: int = 40_000
    error_model: str = "random"
    measure_vulnerability: bool = False
    scrub_period: Optional[int] = None
    machine: Optional[MachineConfig] = None
    #: Simulation kernel for every trial ("object" | "array" | "auto");
    #: part of the campaign digest, so an object-backend checkpoint can
    #: never be resumed by an array-backend campaign (or vice versa).
    #: "auto" resolves per cell: trials whose spec the array kernel can
    #: honor (per :func:`repro.core.array_kernel.backend_mode`) run with
    #: ``backend="array"``, everything else falls back to "object" —
    #: the resolution is a pure function of the cell, so it never
    #: depends on which scheduler (or host) runs the trial.
    backend: str = "object"
    #: Extra scheme kwargs applied to non-Base schemes (e.g. the relaxed
    #: decay/victim knobs); normalized to a sorted tuple of pairs.
    scheme_kwargs: tuple = ()

    def __post_init__(self):
        if self.backend not in ("object", "array", "auto"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                "choose 'object', 'array' or 'auto'"
            )
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        # Scheme names resolve through the registry: canonical spelling
        # everywhere (cells, checkpoints, reports), and an unknown
        # scheme fails here with the registered list, not mid-campaign.
        object.__setattr__(
            self,
            "schemes",
            tuple(normalize_scheme_name(s) for s in self.schemes),
        )
        object.__setattr__(self, "error_rates", tuple(self.error_rates))
        kwargs = self.scheme_kwargs
        items = kwargs.items() if isinstance(kwargs, Mapping) else tuple(kwargs)
        object.__setattr__(
            self, "scheme_kwargs", tuple(sorted((str(k), v) for k, v in items))
        )
        if self.trials <= 0:
            raise ValueError("a campaign needs at least one trial per cell")
        if self.batch_size <= 0:
            raise ValueError("batch size must be positive")
        if self.min_trials <= 1:
            raise ValueError("adaptive stopping needs min_trials >= 2")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0 (0 disables)")

    def cells(self) -> list[Cell]:
        """The campaign grid, in deterministic report order."""
        return [
            Cell(bench, scheme, rate)
            for bench in self.benchmarks
            for scheme in self.schemes
            for rate in self.error_rates
        ]

    def digest(self) -> str:
        """Content hash of the config plus the simulator code version.

        A checkpoint is only resumed when its digest matches, so a
        config edit or any simulator change starts a fresh campaign
        instead of mixing incompatible trial populations.
        """
        from repro.harness.cache import _canonical, code_version

        payload = {
            "format": CAMPAIGN_FORMAT,
            "code": code_version(),
            "config": _canonical(self),
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()

    def trial_spec(self, cell: Cell, index: int, attempt: int) -> ExperimentSpec:
        """The fully-specified experiment for one trial attempt.

        The seed is a content hash of (campaign seed, cell, index,
        attempt): distinct cells never share seeds, and a retry after a
        crash gets a genuinely fresh seed rather than a neighbour.
        """
        return self._spec(cell, index, attempt, self.trial_backend(cell))

    def trial_backend(self, cell: Cell) -> str:
        """The concrete kernel a cell's trials run ("object" | "array").

        With ``backend="auto"`` this is the backend-aware dispatch:
        prefer the array kernel wherever
        :func:`~repro.core.array_kernel.backend_mode` reports it can
        honor the spec (a per-cell property — every field the
        eligibility predicates read is cell-constant), fall back to the
        object kernel per cell otherwise.
        """
        if self.backend != "auto":
            return self.backend
        return "array" if self.trial_mode(cell) != "object" else "object"

    def trial_mode(self, cell: Cell) -> str:
        """The kernel tier the cell's trials execute on.

        One of ``array-batched`` / ``array-soa`` / ``object`` — the
        scheduler's per-backend latency telemetry is keyed by this.
        """
        if self.backend == "object":
            return "object"
        return _trial_mode(self, cell)

    def _spec(
        self, cell: Cell, index: int, attempt: int, backend: str
    ) -> ExperimentSpec:
        # The shared scheme kwargs are the ICR design-space knobs (e.g.
        # the relaxed decay/victim settings); the registry's metadata
        # says which schemes they mean anything to — base schemes and
        # the rcache/victim-cache baselines run without them.
        scheme_kwargs = (
            dict(self.scheme_kwargs)
            if scheme_info(cell.scheme).accepts_icr_knobs
            else {}
        )
        return ExperimentSpec(
            benchmark=cell.benchmark,
            scheme=cell.scheme,
            n_instructions=self.n_instructions,
            machine=self.machine,
            error_rate=cell.error_rate,
            error_model=self.error_model,
            error_seed=_stable_seed(
                self.seed0, cell.benchmark, cell.scheme, cell.error_rate,
                index, attempt,
            ),
            measure_vulnerability=self.measure_vulnerability,
            scrub_period=self.scrub_period,
            backend=backend,
            scheme_kwargs=scheme_kwargs,
        )


@lru_cache(maxsize=4096)
def _trial_mode(config: CampaignConfig, cell: Cell) -> str:
    """Memoized kernel-tier probe (``backend_mode`` builds a config)."""
    from repro.core.array_kernel import backend_mode

    return backend_mode(config._spec(cell, 0, 0, "array"))


@dataclass
class TrialRecord:
    """Outcome of one trial attempt (successful or failed)."""

    index: int
    attempt: int
    error_seed: int
    status: str  # "ok" | "failed"
    error: Optional[str] = None
    metrics: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "attempt": self.attempt,
            "error_seed": self.error_seed,
            "status": self.status,
            "error": self.error,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialRecord":
        return cls(
            index=data["index"],
            attempt=data["attempt"],
            error_seed=data["error_seed"],
            status=data["status"],
            error=data.get("error"),
            metrics=dict(data.get("metrics") or {}),
        )


def trial_metrics(result) -> dict[str, Any]:
    """The per-trial reliability metrics a campaign aggregates."""
    d = result.dl1
    cycles = result.cycles
    unrecoverable = d.get("load_errors_unrecoverable", 0)
    metrics: dict[str, Any] = {
        "cycles": cycles,
        "instructions": result.instructions,
        "errors_injected": d.get("errors_injected", 0),
        "load_errors_detected": d.get("load_errors_detected", 0),
        "load_errors_unrecoverable": unrecoverable,
        "load_errors_recovered_replica": d.get("load_errors_recovered_replica", 0),
        "load_errors_recovered_l2": d.get("load_errors_recovered_l2", 0),
        "load_errors_corrected_ecc": d.get("load_errors_corrected_ecc", 0),
        "silent_corruptions": d.get("silent_corruptions", 0),
        "unrecoverable_load_fraction": result.unrecoverable_load_fraction,
        "fatal_rate_per_cycle": unrecoverable / cycles if cycles else 0.0,
        "avf": (
            result.vulnerability.vulnerable_fraction
            if result.vulnerability is not None
            else None
        ),
    }
    return metrics


def _ci_to_dict(ci: BootstrapCI) -> dict:
    return {
        "mean": ci.mean,
        "lo": ci.lo,
        "hi": ci.hi,
        "half_width": ci.half_width,
        "n": ci.n,
        "level": ci.level,
    }


@dataclass
class CellOutcome:
    """All records of one cell plus its aggregate statistics."""

    cell: Cell
    records: list[TrialRecord]
    stopped_early: bool = False
    #: Circuit-breaker diagnostic when the cell was failed after
    #: repeated exhausted trials; None for a healthy cell.  Derived
    #: deterministically from the records (never persisted), so a
    #: resumed campaign re-trips the same breaker with the same text.
    broken: Optional[str] = None

    def ok_records(self) -> list[TrialRecord]:
        return sorted(
            (r for r in self.records if r.status == "ok"),
            key=lambda r: (r.index, r.attempt),
        )

    def failed_attempts(self) -> int:
        return sum(1 for r in self.records if r.status == "failed")

    def metric_values(self, metric: str) -> list[float]:
        values = []
        for record in self.ok_records():
            value = record.metrics.get(metric)
            if value is not None:
                values.append(float(value))
        return values

    def metric_ci(self, metric: str, config: CampaignConfig) -> Optional[BootstrapCI]:
        values = self.metric_values(metric)
        if not values:
            return None
        return bootstrap_ci(
            values,
            level=config.ci_level,
            n_resamples=config.bootstrap_resamples,
            seed=_stable_seed(config.bootstrap_seed, self.cell.id, metric),
        )

    def summary(self, config: CampaignConfig) -> dict:
        """Aggregate statistics (plain data, deterministic)."""
        out: dict[str, Any] = {
            "benchmark": self.cell.benchmark,
            "scheme": self.cell.scheme,
            "error_rate": self.cell.error_rate,
            "trials_ok": len(self.ok_records()),
            "failed_attempts": self.failed_attempts(),
            "stopped_early": self.stopped_early,
            "broken": self.broken,
            "metrics": {},
        }
        for metric in (
            "unrecoverable_load_fraction",
            "fatal_rate_per_cycle",
            "avf",
            "silent_corruptions",
            "errors_injected",
        ):
            ci = self.metric_ci(metric, config)
            if ci is not None:
                out["metrics"][metric] = _ci_to_dict(ci)
        rate = out["metrics"].get("fatal_rate_per_cycle")
        if rate is not None:
            # MTTF in cycles is the inverse of the fatal rate; a zero
            # rate bound maps to None (report-friendly "no failures
            # observed") rather than JSON-hostile infinity.
            out["metrics"]["mttf_cycles"] = {
                "mean": 1.0 / rate["mean"] if rate["mean"] > 0 else None,
                "lo": 1.0 / rate["hi"] if rate["hi"] > 0 else None,
                "hi": 1.0 / rate["lo"] if rate["lo"] > 0 else None,
            }
        return out


@dataclass
class CampaignReport:
    """Final (or partial) campaign outcome: records + aggregates."""

    config: CampaignConfig
    digest: str
    outcomes: list[CellOutcome]
    complete: bool = True

    def to_dict(self) -> dict:
        return {
            "format": CAMPAIGN_FORMAT,
            "campaign": self.digest,
            "complete": self.complete,
            "cells": [
                {
                    **outcome.summary(self.config),
                    "records": [
                        r.to_dict()
                        for r in sorted(
                            outcome.records, key=lambda r: (r.index, r.attempt)
                        )
                    ],
                }
                for outcome in self.outcomes
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON rendering (byte-identical across resumes)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_table(self) -> str:
        """The per-cell summary table (mean and CI bounds per metric)."""
        columns = [
            "benchmark", "scheme", "error_rate", "n", "failed",
            "ulf_mean", "ulf_lo", "ulf_hi",
        ]
        have_avf = self.config.measure_vulnerability
        if have_avf:
            columns += ["avf_mean", "avf_lo", "avf_hi"]
        rows = []
        for outcome in self.outcomes:
            summary = outcome.summary(self.config)
            ulf = summary["metrics"].get("unrecoverable_load_fraction")
            row = [
                summary["benchmark"],
                summary["scheme"],
                f"{summary['error_rate']:g}",
                summary["trials_ok"],
                summary["failed_attempts"],
            ]
            row += (
                [ulf["mean"], ulf["lo"], ulf["hi"]]
                if ulf
                else [float("nan")] * 3
            )
            if have_avf:
                avf = summary["metrics"].get("avf")
                row += (
                    [avf["mean"], avf["lo"], avf["hi"]]
                    if avf
                    else [float("nan")] * 3
                )
            rows.append(row)
        return format_table(columns, rows)


class CampaignEngine:
    """Runs a :class:`CampaignConfig` to completion, round by round.

    Parameters
    ----------
    config:
        The campaign definition.
    runner:
        A :class:`~repro.harness.runner.ParallelRunner` (bring your own
        worker count / result cache); default is serial and uncached.
    checkpoint_path:
        JSON checkpoint location.  Written atomically after every
        round; loaded on construction when it exists and its config
        digest matches.  ``None`` disables checkpointing.
    trial_log_path:
        Optional JSONL file appended with one line per finished trial
        attempt — the full :meth:`SimulationResult.to_dict` payload for
        successes, the error text for failures.
    checkpoint_every_trials / checkpoint_interval:
        Checkpoint write cadence: a write happens at the next
        opportunity once *checkpoint_every_trials* records are dirty
        **or** *checkpoint_interval* seconds have elapsed since the
        last write, whichever comes first — large campaigns stop
        serializing the full record set after every handful of trials.
        A run always flushes on exit (completion or early stop), so
        resumability never depends on the cadence.
    verbose:
        When true, one progress line per round goes to *stream*
        (default ``sys.stderr``).
    """

    #: Which scheduling discipline this engine implements (telemetry).
    SCHEDULER = "round"

    def __init__(
        self,
        config: CampaignConfig,
        runner: Optional[ParallelRunner] = None,
        *,
        checkpoint_path: Union[str, Path, None] = None,
        trial_log_path: Union[str, Path, None] = None,
        checkpoint_every_trials: int = 32,
        checkpoint_interval: float = 10.0,
        verbose: bool = False,
        stream=None,
    ):
        self.config = config
        self.runner = runner if runner is not None else ParallelRunner(jobs=1)
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.trial_log_path = Path(trial_log_path) if trial_log_path else None
        self.checkpoint_every_trials = max(1, checkpoint_every_trials)
        self.checkpoint_interval = checkpoint_interval
        self.verbose = verbose
        self.stream = stream if stream is not None else sys.stderr
        self.digest = config.digest()
        self.outcomes: dict[Cell, CellOutcome] = {
            cell: CellOutcome(cell, []) for cell in config.cells()
        }
        self.rounds_run = 0
        self.resumed = False
        self.checkpoint_writes = 0
        self.breaker_trips = 0
        self._dirty_records = 0
        self._last_checkpoint = time.monotonic()
        if self.checkpoint_path is not None:
            self.resumed = self._load_checkpoint()

    # -- scheduling -------------------------------------------------------

    def _next_index(self, outcome: CellOutcome) -> int:
        """Indices are attempted contiguously; the next is 1 + highest."""
        if not outcome.records:
            return 0
        return 1 + max(r.index for r in outcome.records)

    def _cell_done(self, outcome: CellOutcome) -> bool:
        """Pure stopping rule shared by every scheduler.

        Adaptive stopping is only consulted at *batch-aligned* record
        counts (multiples of ``batch_size``).  That makes the decision a
        function of the committed records alone — independent of which
        scheduler produced them, of completion order, and of where a
        checkpoint happened to land — which is the invariant behind the
        round/stealing byte-identical-report contract and behind
        resuming a mid-batch checkpoint under either scheduler.
        """
        next_index = self._next_index(outcome)
        if next_index >= self.config.trials:
            return True
        if (
            self.config.breaker_threshold
            and next_index % self.config.batch_size == 0
            and self._breaker_tripped(outcome)
        ):
            return True
        if self.config.target_half_width is None:
            return False
        if next_index % self.config.batch_size != 0:
            return False
        values = outcome.metric_values(STOPPING_METRIC)
        if len(values) < self.config.min_trials:
            return False
        ci = outcome.metric_ci(STOPPING_METRIC, self.config)
        if ci is not None and ci.half_width <= self.config.target_half_width:
            outcome.stopped_early = True
            return True
        return False

    def _breaker_tripped(self, outcome: CellOutcome) -> bool:
        """The per-cell circuit breaker (pure function of the records).

        Trips when the trailing ``breaker_threshold`` trial indices all
        exhausted their retry budget and failed — the signature of a
        configuration (or environment) that crashes systematically
        rather than sporadically.  The cell is failed with a diagnostic
        instead of grinding through (and retrying) its whole trial
        budget; sporadic failures interleaved with successes never
        trip it.
        """
        if outcome.broken is not None:
            return True
        final: dict[int, TrialRecord] = {}
        for record in outcome.records:
            prev = final.get(record.index)
            if prev is None or record.attempt > prev.attempt:
                final[record.index] = record
        if not final:
            return False
        streak = 0
        last_failure: Optional[TrialRecord] = None
        index = max(final)
        while index >= 0:
            record = final.get(index)
            if (
                record is None
                or record.status != "failed"
                or record.attempt < self.config.max_trial_retries
            ):
                break
            last_failure = last_failure or record
            streak += 1
            index -= 1
        if streak < self.config.breaker_threshold:
            return False
        outcome.broken = (
            f"circuit breaker: last {streak} trials exhausted "
            f"{1 + self.config.max_trial_retries} attempt(s) each "
            f"(latest error: {last_failure.error or 'unknown'})"
        )
        self.breaker_trips += 1
        recovery.count("breaker_trips")
        recovery.warn(
            "campaign",
            f"breaker tripped for cell {outcome.cell.id}: "
            f"{streak} consecutive exhausted trials",
        )
        if self.verbose:
            print(
                f"[campaign] cell {outcome.cell.id} failed by circuit "
                f"breaker after {streak} consecutive exhausted trials",
                file=self.stream,
            )
        return True

    def _batch_stop(self, start: int) -> int:
        """End of the batch containing *start* (batch-grid aligned).

        Aligning to the global batch grid — rather than ``start +
        batch_size`` — keeps batch boundaries identical when a resume
        starts from a mid-batch checkpoint.
        """
        b = self.config.batch_size
        return min(b * (start // b + 1), self.config.trials)

    def _schedule_round(self) -> list[tuple[Cell, int, int]]:
        """(cell, trial index, attempt 0) tuples for the next round."""
        work = []
        for cell in self.config.cells():
            outcome = self.outcomes[cell]
            if self._cell_done(outcome):
                continue
            start = self._next_index(outcome)
            work.extend(
                (cell, index, 0) for index in range(start, self._batch_stop(start))
            )
        return work

    # -- execution --------------------------------------------------------

    def run(self, max_rounds: Optional[int] = None) -> CampaignReport:
        """Run rounds until every cell is done (or *max_rounds* is hit).

        *max_rounds* exists for tests and incremental driving; a report
        built after an early stop is marked ``complete=False``.
        """
        rounds = 0
        try:
            while max_rounds is None or rounds < max_rounds:
                work = self._schedule_round()
                if not work:
                    break
                self._run_round(work)
                rounds += 1
                self.rounds_run += 1
                self._maybe_checkpoint()
                if self.verbose:
                    done = sum(
                        len(o.ok_records()) for o in self.outcomes.values()
                    )
                    print(
                        f"[campaign] round {self.rounds_run}: "
                        f"{done} ok trials across {len(self.outcomes)} cells",
                        file=self.stream,
                    )
        finally:
            self._maybe_checkpoint(force=True)
        return self.report()

    def _run_round(self, work: list[tuple[Cell, int, int]]) -> None:
        """Drive every scheduled trial of one round to closure."""
        while work:
            jobs = [
                Job.from_spec(self.config.trial_spec(cell, index, attempt))
                for cell, index, attempt in work
            ]
            results = self.runner.run(jobs, on_error="return")
            retries: list[tuple[Cell, int, int]] = []
            for (cell, index, attempt), job, result in zip(work, jobs, results):
                self._record(cell, index, attempt, result)
                if (
                    isinstance(result, RunnerError)
                    and attempt < self.config.max_trial_retries
                ):
                    retries.append((cell, index, attempt + 1))
            work = retries

    def _record(self, cell: Cell, index: int, attempt: int, result) -> None:
        """Commit one trial attempt's outcome (shared by all schedulers)."""
        seed = self.config.trial_spec(cell, index, attempt).error_seed
        if isinstance(result, RunnerError):
            record = TrialRecord(
                index=index,
                attempt=attempt,
                error_seed=seed,
                status="failed",
                error=_last_line(result.detail),
            )
            self.outcomes[cell].records.append(record)
            self._log_trial(cell, record, None)
        else:
            record = TrialRecord(
                index=index,
                attempt=attempt,
                error_seed=seed,
                status="ok",
                metrics=trial_metrics(result),
            )
            self.outcomes[cell].records.append(record)
            self._log_trial(cell, record, result)
        self._dirty_records += 1

    # -- persistence ------------------------------------------------------

    def _maybe_checkpoint(self, force: bool = False) -> None:
        """Write a checkpoint when the cadence thresholds say so.

        Serializing every record after every handful of trials is
        O(trials²) over a campaign; batching the write behind a
        dirty-count / elapsed-time threshold caps that cost while
        bounding the work an interrupt can lose.  ``force`` flushes
        unconditionally (run exit).
        """
        if self.checkpoint_path is None or (not force and not self._dirty_records):
            return
        if not force:
            due = (
                self._dirty_records >= self.checkpoint_every_trials
                or time.monotonic() - self._last_checkpoint
                >= self.checkpoint_interval
            )
            if not due:
                return
        self._write_checkpoint()

    def _checkpoint_records(self) -> dict[str, list[dict]]:
        """The record lists a checkpoint persists (committed state)."""
        return {
            cell.id: [r.to_dict() for r in outcome.records]
            for cell, outcome in self.outcomes.items()
        }

    def _write_checkpoint(self) -> None:
        if self.checkpoint_path is None:
            return
        payload = {
            "format": CAMPAIGN_FORMAT,
            "campaign": self.digest,
            "rounds": self.rounds_run,
            "cells": self._checkpoint_records(),
        }
        path = self.checkpoint_path
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            _chaos.check_disk_full("checkpoint", str(path))
            text = json.dumps(payload, sort_keys=True)
            if _chaos.tear_checkpoint(self.digest):
                # A writer crash persisted half the payload: the resume
                # path's quarantine (below) must absorb it.
                text = text[: len(text) // 2]
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(text)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only disk costs durability, never the run:
            # the records stay dirty, the next cadence window retries,
            # and the exit flush gets the last word.
            recovery.count("checkpoint_write_errors")
            recovery.warn(
                "campaign", f"checkpoint write to {path} failed; continuing"
            )
            self._last_checkpoint = time.monotonic()
            return
        self.checkpoint_writes += 1
        self._dirty_records = 0
        self._last_checkpoint = time.monotonic()

    def _load_checkpoint(self) -> bool:
        """Adopt a matching checkpoint.

        Missing or digest-mismatched checkpoints are ignored (fresh
        start); a *corrupt* one — truncated JSON, malformed trial
        records — is quarantined (renamed to ``*.corrupt``) so the
        campaign restarts its cells cleanly instead of raising out of
        resume.  Restarting is cheap: every previously-simulated trial
        is a content-addressed cache hit.
        """
        path = self.checkpoint_path
        try:
            text = path.read_text()
        except OSError:
            return False  # nothing there: a fresh campaign, not a fault
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("checkpoint is not a JSON object")
        except ValueError:
            self._quarantine_checkpoint("unparseable JSON")
            return False
        if (
            payload.get("format") != CAMPAIGN_FORMAT
            or payload.get("campaign") != self.digest
        ):
            if self.verbose:
                print(
                    f"[campaign] ignoring checkpoint {path} "
                    "(different config or code version)",
                    file=self.stream,
                )
            return False
        by_id = {cell.id: cell for cell in self.outcomes}
        staged: dict[Cell, list[TrialRecord]] = {}
        try:
            for cell_id, records in payload.get("cells", {}).items():
                cell = by_id.get(cell_id)
                if cell is None:
                    continue
                staged[cell] = [TrialRecord.from_dict(r) for r in records]
        except (ValueError, KeyError, TypeError, AttributeError):
            # Structurally valid JSON whose records are garbage (a torn
            # write that happened to cut on a token boundary, a foreign
            # tool's file, ...).  Stage-then-commit keeps the outcomes
            # untouched on this path.
            self._quarantine_checkpoint("malformed trial records")
            return False
        loaded = 0
        for cell, records in staged.items():
            self.outcomes[cell].records = records
            loaded += len(records)
        self.rounds_run = payload.get("rounds", 0)
        if self.verbose and loaded:
            print(
                f"[campaign] resumed {loaded} trial records from {path}",
                file=self.stream,
            )
        return loaded > 0

    def _quarantine_checkpoint(self, reason: str) -> None:
        """Move a corrupt checkpoint aside and account for it."""
        path = self.checkpoint_path
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        recovery.count("checkpoint_quarantined")
        recovery.warn(
            "campaign",
            f"quarantined corrupt checkpoint {path} ({reason}); "
            "restarting cells from the result cache",
        )
        if self.verbose:
            print(
                f"[campaign] quarantined corrupt checkpoint {path} ({reason})",
                file=self.stream,
            )

    def _log_trial(self, cell: Cell, record: TrialRecord, result) -> None:
        if self.trial_log_path is None:
            return
        line: dict[str, Any] = {"cell": cell.id, **record.to_dict()}
        if result is not None:
            line["result"] = result.to_dict()
        try:
            self.trial_log_path.parent.mkdir(parents=True, exist_ok=True)
            with self.trial_log_path.open("a") as fh:
                fh.write(json.dumps(line, sort_keys=True) + "\n")
        except OSError:
            # The trial log is observability, not state: losing a line
            # to a full disk must not fail the trial it describes.
            recovery.count("trial_log_errors")
            recovery.warn("campaign", "trial log append failed; continuing")

    # -- reporting --------------------------------------------------------

    def report(self) -> CampaignReport:
        """The campaign outcome built from the records gathered so far."""
        outcomes = []
        complete = True
        for cell in self.config.cells():
            outcome = self.outcomes[cell]
            if not self._cell_done(outcome):
                complete = False
            outcomes.append(outcome)
        return CampaignReport(
            config=self.config,
            digest=self.digest,
            outcomes=outcomes,
            complete=complete,
        )

    def telemetry(self) -> dict[str, Any]:
        """Scheduler/runner counters for benchmarks and the CLI.

        Deliberately *not* part of :class:`CampaignReport` — telemetry
        depends on timing and scheduling, while the report is
        byte-identical across schedulers, worker counts and resumes.
        """
        committed = sum(len(o.records) for o in self.outcomes.values())
        return {
            "scheduler": self.SCHEDULER,
            "trials_committed": committed,
            "rounds": self.rounds_run,
            "checkpoint_writes": self.checkpoint_writes,
            "breaker_trips": self.breaker_trips,
            "runner": {
                "jobs": self.runner.stats.jobs,
                "cache_hits": self.runner.stats.cache_hits,
                "simulated": self.runner.stats.simulated,
                "retries": self.runner.stats.retries,
                "cancelled": self.runner.stats.cancelled,
                "elapsed": self.runner.stats.elapsed,
            },
        }


def _last_line(detail: str) -> str:
    """The final non-empty line of a traceback (the exception itself)."""
    lines = [line for line in detail.strip().splitlines() if line.strip()]
    return lines[-1].strip() if lines else "unknown error"


#: The scheduling disciplines :func:`create_engine` knows how to build.
SCHEDULERS = ("round", "stealing")


def create_engine(
    config: CampaignConfig,
    runner: Optional[ParallelRunner] = None,
    *,
    scheduler: str = "round",
    **engine_kwargs: Any,
):
    """Build the campaign engine implementing *scheduler*.

    ``"round"`` is the synchronous round-barrier
    :class:`CampaignEngine`; ``"stealing"`` is the continuous
    work-stealing engine of :mod:`repro.harness.scheduler`
    (identical reports, better worker utilization, mid-flight
    cancellation, optional multi-host cooperation).
    """
    if scheduler == "round":
        return CampaignEngine(config, runner, **engine_kwargs)
    if scheduler == "stealing":
        from repro.harness.scheduler import StealingCampaignEngine

        return StealingCampaignEngine(config, runner, **engine_kwargs)
    raise ValueError(
        f"unknown scheduler {scheduler!r}; choose one of {', '.join(SCHEDULERS)}"
    )


def run_campaign(
    config: CampaignConfig,
    runner: Optional[ParallelRunner] = None,
    *,
    scheduler: str = "round",
    **engine_kwargs: Any,
) -> CampaignReport:
    """Convenience one-shot: build an engine, run it, return the report."""
    return create_engine(
        config, runner, scheduler=scheduler, **engine_kwargs
    ).run()
