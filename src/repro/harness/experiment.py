"""Top-level experiment runner: workload -> CPU -> ICR dL1 -> metrics.

One :func:`run_experiment` call reproduces one bar of one figure: it builds
the Table 1 machine around the requested dL1 scheme, generates (or reuses)
the benchmark trace, runs the timing pipeline, and returns every Section
4.1 metric plus the raw counters.

The primary calling convention is spec-based::

    spec = ExperimentSpec("gzip", "ICR-P-PS(S)", n_instructions=100_000)
    result = run_experiment(spec)

The historical keyword form (``run_experiment(benchmark, scheme, **kw)``)
has been removed; :meth:`ExperimentSpec.from_kwargs` builds the
equivalent spec for callers migrating off it — both routes produce
bit-identical results and share one cache identity.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Union

from repro.cache.hierarchy import MemoryHierarchy
from repro.core import array_kernel
from repro.core.config import ICRConfig
from repro.core.icr_cache import ICRCache
from repro.core.registry import UnknownSchemeError, build_dl1, scheme_info
from repro.core.schemes import make_config
from repro.cpu.branch import PredictorStats
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineResult
from repro.energy.accounting import EnergyBreakdown, EnergyParams, energy_of
from repro.errors.injector import FaultInjector, derive_stream_seed
from repro.harness.spec import (
    DEFAULT_INSTRUCTIONS,
    ExperimentSpec,
    MachineConfig,
)
from repro.workloads.generator import WorkloadProfile, trace_for
from repro.workloads.spec2000 import profile_for

#: Version tag of the plain-data form of :class:`SimulationResult`
#: (:meth:`SimulationResult.to_dict`); bumped on incompatible changes.
RESULT_FORMAT = 1


@dataclass
class SimulationResult:
    """Everything one run produced."""

    benchmark: str
    scheme: str
    instructions: int
    cycles: int
    pipeline: PipelineResult
    dl1: dict[str, int]  # raw dL1 counters (CacheStats.snapshot())
    miss_rate: float
    load_miss_rate: float
    replication_ability: float
    second_replica_ability: float
    loads_with_replica: float
    unrecoverable_load_fraction: float
    energy: EnergyBreakdown
    write_buffer_stalls: int
    # Present only when the run was started with measure_vulnerability.
    vulnerability: Optional["VulnerabilityReport"] = None
    # Raw iL1 counters (populated when icache_error_rate > 0).
    l1i: Optional[dict] = None

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    # -- stable plain-data round-trip ------------------------------------

    def to_dict(self) -> dict:
        """Lossless plain-data form (JSON-serializable).

        The inverse is :meth:`from_dict`; the round-trip covers every
        field including the optional ``vulnerability`` and ``l1i``
        payloads.  This is the one serialization used by the result
        cache, campaign checkpoints and JSONL trial logs.
        """
        p = self.pipeline
        return {
            "format": RESULT_FORMAT,
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "pipeline": {
                "cycles": p.cycles,
                "instructions": p.instructions,
                "loads": p.loads,
                "stores": p.stores,
                "branches": p.branches,
                "mispredicts": p.mispredicts,
                "predictor_stats": dataclasses.asdict(p.predictor_stats),
            },
            "dl1": dict(self.dl1),
            "miss_rate": self.miss_rate,
            "load_miss_rate": self.load_miss_rate,
            "replication_ability": self.replication_ability,
            "second_replica_ability": self.second_replica_ability,
            "loads_with_replica": self.loads_with_replica,
            "unrecoverable_load_fraction": self.unrecoverable_load_fraction,
            "energy": dataclasses.asdict(self.energy),
            "write_buffer_stalls": self.write_buffer_stalls,
            "vulnerability": (
                _vulnerability_to_dict(self.vulnerability)
                if self.vulnerability is not None
                else None
            ),
            "l1i": dict(self.l1i) if self.l1i is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Inverse of :meth:`to_dict` (raises on malformed input)."""
        if data.get("format") != RESULT_FORMAT:
            raise ValueError(
                f"unsupported result format {data.get('format')!r}"
            )
        p = data["pipeline"]
        pipeline = PipelineResult(
            cycles=p["cycles"],
            instructions=p["instructions"],
            loads=p["loads"],
            stores=p["stores"],
            branches=p["branches"],
            mispredicts=p["mispredicts"],
            predictor_stats=PredictorStats(**p["predictor_stats"]),
        )
        vulnerability = data["vulnerability"]
        return cls(
            benchmark=data["benchmark"],
            scheme=data["scheme"],
            instructions=data["instructions"],
            cycles=data["cycles"],
            pipeline=pipeline,
            dl1=dict(data["dl1"]),
            miss_rate=data["miss_rate"],
            load_miss_rate=data["load_miss_rate"],
            replication_ability=data["replication_ability"],
            second_replica_ability=data["second_replica_ability"],
            loads_with_replica=data["loads_with_replica"],
            unrecoverable_load_fraction=data["unrecoverable_load_fraction"],
            energy=EnergyBreakdown(**data["energy"]),
            write_buffer_stalls=data["write_buffer_stalls"],
            vulnerability=(
                _vulnerability_from_dict(vulnerability)
                if vulnerability is not None
                else None
            ),
            l1i=dict(data["l1i"]) if data["l1i"] is not None else None,
        )


def _vulnerability_to_dict(report) -> dict:
    return {
        "block_cycles": {c.value: v for c, v in report.block_cycles.items()},
        "invalid_block_cycles": report.invalid_block_cycles,
        "observed_cycles": report.observed_cycles,
        "samples": report.samples,
        "total_blocks": report.total_blocks,
    }


def _vulnerability_from_dict(data: dict):
    from repro.reliability.vulnerability import ExposureClass, VulnerabilityReport

    return VulnerabilityReport(
        block_cycles={
            ExposureClass(name): value
            for name, value in data["block_cycles"].items()
        },
        invalid_block_cycles=data["invalid_block_cycles"],
        observed_cycles=data["observed_cycles"],
        samples=data["samples"],
        total_blocks=data["total_blocks"],
    )


def run_experiment(spec: ExperimentSpec) -> SimulationResult:
    """Run one experiment on the Table 1 machine.

    Takes an :class:`~repro.harness.spec.ExperimentSpec` — the sole
    entry point since the removal of the deprecated
    ``run_experiment(benchmark, scheme, **kwargs)`` keyword form (build
    the equivalent spec with :meth:`ExperimentSpec.from_kwargs`).  A
    nonzero ``error_rate`` turns on bit-accurate storage and per-cycle
    Bernoulli fault injection (Section 5.5).
    """
    if not isinstance(spec, ExperimentSpec):
        raise TypeError(
            "run_experiment takes an ExperimentSpec; the keyword form "
            "was removed — use ExperimentSpec.from_kwargs(benchmark, "
            "scheme, **kwargs)"
        )
    return _run_spec(spec)


def _run_spec(spec: ExperimentSpec) -> SimulationResult:
    """Execute one fully-specified experiment."""
    machine = spec.machine or MachineConfig()
    profile = (
        profile_for(spec.benchmark)
        if isinstance(spec.benchmark, str)
        else spec.benchmark
    )
    scheme_kwargs = dict(spec.scheme_kwargs)

    if isinstance(spec.scheme, ICRConfig):
        if scheme_kwargs:
            raise ValueError("pass scheme kwargs only with a scheme *name*")
        config = spec.scheme
        dl1 = None
    else:
        # Scheme names resolve through the registry, so the comparison
        # baselines (rcache, victim-cache) run through the exact same
        # machinery as the ICR family.
        if spec.error_rate > 0.0:
            scheme_kwargs.setdefault("track_data", True)
        if scheme_info(spec.scheme).kind == "baseline":
            # Wrapper models (rcache, victim-cache) have no SoA port;
            # they always run the object kernel.
            dl1 = build_dl1(spec.scheme, **scheme_kwargs)
            config = dl1.config
        else:
            # Base/ICR schemes are ICRCache(make_config(...)); resolve
            # the config first so the backend dispatch below can pick a
            # kernel without building the object cache.
            try:
                config = make_config(spec.scheme, **scheme_kwargs)
                dl1 = None
            except TypeError as exc:
                raise TypeError(f"scheme {spec.scheme!r}: {exc}") from None
            except UnknownSchemeError:
                # Registered (the spec resolved the name) but not an
                # ICR-family config scheme: an external entry-point
                # scheme.  Drive its model generically, like a baseline.
                dl1 = build_dl1(spec.scheme, **scheme_kwargs)
                config = dl1.config

    if dl1 is None:
        # Backend dispatch for the ICR family.  "array" is a pure
        # execution-strategy knob: the batched engine where timing
        # independence holds, the per-access SoA kernel where only the
        # dL1-internal conditions hold, and the object kernel otherwise —
        # all three bit-identical (tests/differential/).
        if spec.backend == "array":
            if array_kernel.batched_supported(spec, config, machine):
                return array_kernel.run_batched(spec, profile, config, machine)
            if array_kernel.soa_supported(spec, config):
                dl1 = array_kernel.ArrayDL1(config)
        if dl1 is None:
            dl1 = ICRCache(config)
    # Wrapper models expose the ICR cache that holds the real array as
    # injection_target; observers always attach there.
    dl1_core = getattr(dl1, "injection_target", dl1)
    if spec.error_rate > 0.0 and not dl1_core.config.track_data:
        raise ValueError("error injection requires track_data=True in the config")

    hierarchy_config = machine.hierarchy
    if spec.icache_error_rate > 0.0 and not hierarchy_config.protected_icache:
        hierarchy_config = dataclasses.replace(
            hierarchy_config, protected_icache=True
        )
    hierarchy = MemoryHierarchy(dl1, hierarchy_config)
    if spec.icache_error_rate > 0.0:
        # The iL1 stream is hash-derived from the trial seed, never a
        # neighbouring integer seed — two trials differing only in
        # error_seed can't alias each other's draw streams.
        FaultInjector(
            hierarchy.l1i,
            spec.icache_error_rate,
            model=spec.error_model,
            seed=derive_stream_seed(spec.error_seed, "l1i"),
        )
    if spec.error_rate > 0.0:
        FaultInjector(
            dl1_core, spec.error_rate, model=spec.error_model, seed=spec.error_seed
        )
    monitor = None
    if spec.measure_vulnerability:
        from repro.reliability.vulnerability import VulnerabilityMonitor

        monitor = VulnerabilityMonitor(dl1_core)
    if spec.scrub_period is not None:
        from repro.errors.scrubber import Scrubber

        Scrubber(dl1_core, period=spec.scrub_period)
    pipeline = OutOfOrderPipeline(hierarchy, machine.pipeline)

    trace = trace_for(
        profile,
        spec.n_instructions + spec.warmup_instructions,
        seed_offset=spec.trace_seed,
    )
    result = pipeline.run(trace, reset_stats_at=spec.warmup_instructions)
    vulnerability = monitor.finish(result.cycles) if monitor else None

    params = EnergyParams.from_geometries(
        config.geometry,
        machine.hierarchy.l2_geometry,
        parity_fraction=machine.parity_fraction,
        ecc_fraction=machine.ecc_fraction,
    )
    stats = dl1.stats
    return SimulationResult(
        benchmark=profile.name,
        scheme=config.name,
        instructions=result.instructions,
        cycles=result.cycles,
        pipeline=result,
        dl1=stats.snapshot(),
        miss_rate=stats.miss_rate,
        load_miss_rate=stats.load_miss_rate,
        replication_ability=stats.replication_ability,
        second_replica_ability=stats.second_replica_ability,
        loads_with_replica=stats.loads_with_replica,
        unrecoverable_load_fraction=stats.unrecoverable_load_fraction,
        energy=energy_of(hierarchy.stats, params, cycles=result.cycles),
        write_buffer_stalls=hierarchy.stats.write_buffer_stall_cycles,
        vulnerability=vulnerability,
        l1i=(
            hierarchy.l1i.stats.snapshot()
            if spec.icache_error_rate > 0.0
            else None
        ),
    )


def run_schemes(
    benchmark: Union[str, WorkloadProfile],
    schemes: list,
    *,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    machine: Optional[MachineConfig] = None,
    **scheme_kwargs,
) -> dict[str, SimulationResult]:
    """Run several schemes on the same benchmark trace (paired comparison)."""
    results = {}
    for scheme in schemes:
        spec = ExperimentSpec.from_kwargs(
            benchmark,
            scheme,
            n_instructions=n_instructions,
            machine=machine,
            **scheme_kwargs,
        )
        result = _run_spec(spec)
        results[result.scheme] = result
    return results


def normalized_cycles(
    results: dict[str, SimulationResult], base: str = "BaseP"
) -> dict[str, float]:
    """Execution cycles of each scheme relative to *base* (Figure 9 style)."""
    base_cycles = results[base].cycles
    return {name: r.cycles / base_cycles for name, r in results.items()}
