"""Top-level experiment runner: workload -> CPU -> ICR dL1 -> metrics.

One :func:`run_experiment` call reproduces one bar of one figure: it builds
the Table 1 machine around the requested dL1 scheme, generates (or reuses)
the benchmark trace, runs the timing pipeline, and returns every Section
4.1 metric plus the raw counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.cache.set_assoc import CacheGeometry
from repro.core.config import ICRConfig
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineConfig, PipelineResult
from repro.energy.accounting import EnergyBreakdown, EnergyParams, energy_of
from repro.errors.injector import FaultInjector
from repro.workloads.generator import WorkloadProfile, trace_for
from repro.workloads.spec2000 import profile_for

#: Default trace length.  The paper runs 500M instructions on SimpleScalar;
#: a pure-Python model uses shorter traces, long past dL1 warm-up (the
#: convergence test in tests/test_integration_convergence.py verifies the
#: metrics are stable at this scale).
DEFAULT_INSTRUCTIONS = 200_000


@dataclass(frozen=True)
class MachineConfig:
    """The full Table 1 machine around the dL1 under study."""

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    parity_fraction: float = 0.15
    ecc_fraction: float = 0.30


@dataclass
class SimulationResult:
    """Everything one run produced."""

    benchmark: str
    scheme: str
    instructions: int
    cycles: int
    pipeline: PipelineResult
    dl1: dict[str, int]  # raw dL1 counters (CacheStats.snapshot())
    miss_rate: float
    load_miss_rate: float
    replication_ability: float
    second_replica_ability: float
    loads_with_replica: float
    unrecoverable_load_fraction: float
    energy: EnergyBreakdown
    write_buffer_stalls: int
    # Present only when the run was started with measure_vulnerability.
    vulnerability: Optional["VulnerabilityReport"] = None
    # Raw iL1 counters (populated when icache_error_rate > 0).
    l1i: Optional[dict] = None

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def run_experiment(
    benchmark: Union[str, WorkloadProfile],
    scheme: Union[str, ICRConfig],
    *,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    machine: Optional[MachineConfig] = None,
    error_rate: float = 0.0,
    error_model: str = "random",
    error_seed: int = 12345,
    measure_vulnerability: bool = False,
    scrub_period: Optional[int] = None,
    trace_seed: int = 0,
    warmup_instructions: int = 0,
    icache_error_rate: float = 0.0,
    **scheme_kwargs,
) -> SimulationResult:
    """Run one (benchmark, scheme) pair on the Table 1 machine.

    *scheme* is a scheme name (see :mod:`repro.core.schemes`) or a prebuilt
    :class:`ICRConfig`; extra keyword arguments (``decay_window``,
    ``victim_policy``, ``leave_replicas_on_evict``, ``replica_distances``,
    ...) are forwarded to :func:`repro.core.schemes.make_config` when a
    name is given.  A nonzero *error_rate* turns on bit-accurate storage
    and per-cycle Bernoulli fault injection (Section 5.5).
    """
    machine = machine or MachineConfig()
    profile = profile_for(benchmark) if isinstance(benchmark, str) else benchmark

    if isinstance(scheme, ICRConfig):
        if scheme_kwargs:
            raise ValueError("pass scheme kwargs only with a scheme *name*")
        config = scheme
    else:
        if error_rate > 0.0:
            scheme_kwargs.setdefault("track_data", True)
        config = make_config(scheme, **scheme_kwargs)
    if error_rate > 0.0 and not config.track_data:
        raise ValueError("error injection requires track_data=True in the config")

    dl1 = ICRCache(config)
    hierarchy_config = machine.hierarchy
    if icache_error_rate > 0.0 and not hierarchy_config.protected_icache:
        from dataclasses import replace as _replace

        hierarchy_config = _replace(hierarchy_config, protected_icache=True)
    hierarchy = MemoryHierarchy(dl1, hierarchy_config)
    if icache_error_rate > 0.0:
        FaultInjector(
            hierarchy.l1i, icache_error_rate, model=error_model, seed=error_seed + 1
        )
    if error_rate > 0.0:
        FaultInjector(dl1, error_rate, model=error_model, seed=error_seed)
    monitor = None
    if measure_vulnerability:
        from repro.reliability.vulnerability import VulnerabilityMonitor

        monitor = VulnerabilityMonitor(dl1)
    if scrub_period is not None:
        from repro.errors.scrubber import Scrubber

        Scrubber(dl1, period=scrub_period)
    pipeline = OutOfOrderPipeline(hierarchy, machine.pipeline)

    trace = trace_for(
        profile, n_instructions + warmup_instructions, seed_offset=trace_seed
    )
    result = pipeline.run(trace, reset_stats_at=warmup_instructions)
    vulnerability = monitor.finish(result.cycles) if monitor else None

    params = EnergyParams.from_geometries(
        config.geometry,
        machine.hierarchy.l2_geometry,
        parity_fraction=machine.parity_fraction,
        ecc_fraction=machine.ecc_fraction,
    )
    stats = dl1.stats
    return SimulationResult(
        benchmark=profile.name,
        scheme=config.name,
        instructions=result.instructions,
        cycles=result.cycles,
        pipeline=result,
        dl1=stats.snapshot(),
        miss_rate=stats.miss_rate,
        load_miss_rate=stats.load_miss_rate,
        replication_ability=stats.replication_ability,
        second_replica_ability=stats.second_replica_ability,
        loads_with_replica=stats.loads_with_replica,
        unrecoverable_load_fraction=stats.unrecoverable_load_fraction,
        energy=energy_of(hierarchy.stats, params, cycles=result.cycles),
        write_buffer_stalls=hierarchy.stats.write_buffer_stall_cycles,
        vulnerability=vulnerability,
        l1i=hierarchy.l1i.stats.snapshot() if icache_error_rate > 0.0 else None,
    )


def run_schemes(
    benchmark: Union[str, WorkloadProfile],
    schemes: list,
    *,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    machine: Optional[MachineConfig] = None,
    **scheme_kwargs,
) -> dict[str, SimulationResult]:
    """Run several schemes on the same benchmark trace (paired comparison)."""
    results = {}
    for scheme in schemes:
        result = run_experiment(
            benchmark,
            scheme,
            n_instructions=n_instructions,
            machine=machine,
            **scheme_kwargs,
        )
        results[result.scheme] = result
    return results


def normalized_cycles(results: dict[str, SimulationResult], base: str = "BaseP") -> dict[str, float]:
    """Execution cycles of each scheme relative to *base* (Figure 9 style)."""
    base_cycles = results[base].cycles
    return {name: r.cycles / base_cycles for name, r in results.items()}
