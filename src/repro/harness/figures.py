"""One function per table/figure of the paper's evaluation (Section 5).

Each ``figure_*`` function runs the experiments behind one figure and
returns a :class:`FigureResult` whose rows are the same series the paper
plots.  The benchmark suite (``benchmarks/``) calls these functions, and
``EXPERIMENTS.md`` is generated from their output, so the mapping
paper-figure -> code lives in exactly one place.

Two standard configurations (paper Section 5):

* **aggressive** — decay window 0 (dead as soon as the access completes)
  with the dead-only victim policy; used by Figures 1-9.
* **relaxed** — 1000-cycle decay window with the dead-first victim policy;
  adopted in Section 5.4 and used by Figures 12-17.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.config import VictimPolicy
from repro.core.schemes import ALL_SCHEMES
from repro.harness.experiment import (
    DEFAULT_INSTRUCTIONS,
    run_experiment,
)
from repro.harness.report import format_table
from repro.harness.runner import Job, ParallelRunner
from repro.harness.spec import ExperimentSpec
from repro.workloads.spec2000 import BENCHMARKS

#: Shared kwargs for the two standard configurations.
AGGRESSIVE = dict(decay_window=0, victim_policy=VictimPolicy.DEAD_ONLY)
RELAXED = dict(decay_window=1000, victim_policy=VictimPolicy.DEAD_FIRST)


@dataclass
class FigureResult:
    """The regenerated rows of one paper figure."""

    figure_id: str
    title: str
    paper_claim: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    # Hand-written reproduction status vs. the paper (paper figures only).
    verdict: str = ""

    def to_table(self) -> str:
        body = format_table(self.columns, self.rows)
        return f"{self.figure_id}: {self.title}\npaper: {self.paper_claim}\n{body}"

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def averages(self) -> dict[str, float]:
        """Mean of every numeric column (skipping the first, labels)."""
        result = {}
        for i, name in enumerate(self.columns[1:], start=1):
            values = [row[i] for row in self.rows if isinstance(row[i], (int, float))]
            if values:
                result[name] = sum(values) / len(values)
        return result

    def to_json(self) -> str:
        """Machine-readable form for downstream tooling."""
        import json

        return json.dumps(
            {
                "figure_id": self.figure_id,
                "title": self.title,
                "paper_claim": self.paper_claim,
                "columns": self.columns,
                "rows": self.rows,
                "verdict": self.verdict,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FigureResult":
        import json

        data = json.loads(text)
        return cls(
            figure_id=data["figure_id"],
            title=data["title"],
            paper_claim=data["paper_claim"],
            columns=data["columns"],
            rows=data["rows"],
            verdict=data.get("verdict", ""),
        )


# ---------------------------------------------------------------------------
# Execution engine plumbing
#
# Every simulation a figure function performs goes through _run().  By
# default that is a plain run_experiment() call; under an execution
# context it is routed through a ParallelRunner (caching, metrics) or a
# job collector (the prefetch pass of run_figure).
# ---------------------------------------------------------------------------

#: The active execution engine, or None for direct serial execution.
_CONTEXT = None


@contextlib.contextmanager
def execution_context(engine):
    """Route every ``_run`` call inside the block through *engine*.

    *engine* is anything with a ``run_one(benchmark, scheme, **kwargs)``
    method — normally a :class:`~repro.harness.runner.ParallelRunner`.
    Contexts nest; the previous engine is restored on exit.
    """
    global _CONTEXT
    previous = _CONTEXT
    _CONTEXT = engine
    try:
        yield engine
    finally:
        _CONTEXT = previous


def _run(bench, scheme, n, **kwargs):
    if _CONTEXT is not None:
        return _CONTEXT.run_one(bench, scheme, n_instructions=n, **kwargs)
    return run_experiment(
        ExperimentSpec.from_kwargs(bench, scheme, n_instructions=n, **kwargs)
    )


class _Probe(float):
    """Placeholder result used while collecting a figure's job set.

    Behaves as 1.0 in arithmetic, returns another probe for any
    attribute or item access, so the row-building code of a figure
    function runs to completion without a real simulation behind it.
    """

    def __new__(cls):
        return super().__new__(cls, 1.0)

    def __getattr__(self, name):
        return _Probe()

    def __getitem__(self, key):
        return _Probe()


class _JobCollector:
    """Execution engine that records jobs instead of running them.

    Uncacheable jobs (no stable key) are skipped: their results could
    not be recovered from the cache during the replay pass, so they run
    exactly once, serially, during replay.
    """

    def __init__(self):
        self.jobs: list[Job] = []
        self._seen: set[str] = set()

    def run_one(self, benchmark, scheme, **kwargs):
        job = Job(benchmark, scheme, kwargs)
        key = job.key()
        if key is not None and key not in self._seen:
            self._seen.add(key)
            self.jobs.append(job)
        return _Probe()


class _ReplayEngine:
    """Serves the replay pass from the runner's memo without re-counting.

    The batch pass already accounted for every cacheable job in the
    runner's stats; replaying through ``runner.run_one`` would double
    the job and hit counters.  Anything not in the memo (uncacheable
    jobs) falls through to the runner and is counted normally.
    """

    def __init__(self, runner: ParallelRunner):
        self.runner = runner

    def run_one(self, benchmark, scheme, **kwargs):
        key = Job(benchmark, scheme, kwargs).key()
        if key is not None:
            hit = self.runner._memo.get(key)
            if hit is not None:
                return hit
        return self.runner.run_one(benchmark, scheme, **kwargs)


#: Figure functions that simulate outside _run(); collecting their jobs
#: would run that work twice, so run_figure executes them in a single
#: pass instead.  The rcache / victim-cache comparisons left this set
#: when those baselines became registered schemes running through _run.
PREFETCH_UNSAFE = frozenset({"comparison_area"})


def run_figure(
    figure_id: str,
    *,
    runner: Optional[ParallelRunner] = None,
    prefetch: Optional[bool] = None,
    **kwargs,
) -> FigureResult:
    """Run one registered figure, optionally through a parallel runner.

    With a *runner*, the figure function is first traced with
    placeholder results to collect its full (benchmark, scheme) job
    grid, the grid is executed through ``runner.run`` (worker pool +
    cache), and the figure function is then replayed against the warmed
    cache — producing output bit-identical to the serial path.  Set
    ``prefetch=False`` to skip the trace and run serially (still cached).
    """
    fn = ALL_FIGURES[figure_id]
    if runner is None:
        return fn(**kwargs)
    if prefetch is None:
        prefetch = runner.jobs > 1 and figure_id not in PREFETCH_UNSAFE
    if prefetch:
        collector = _JobCollector()
        with execution_context(collector):
            fn(**kwargs)
        runner.run(collector.jobs)
        with execution_context(_ReplayEngine(runner)):
            return fn(**kwargs)
    with execution_context(runner):
        return fn(**kwargs)


# ---------------------------------------------------------------------------
# Section 5.1 — replication mechanisms (aggressive dead-block prediction)
# ---------------------------------------------------------------------------


def figure_01(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Replication ability: single vs multiple placement attempts."""
    result = FigureResult(
        "Fig 1",
        "Replication ability, single vs multiple attempts, ICR-P-PS(S)",
        "multiple attempts (N/2 then N/4) raise the replication ability",
        ["benchmark", "single_attempt", "multi_attempt"],
        verdict=(
            "REPRODUCED — multi-attempt ability exceeds single-attempt on every "
            "benchmark; absolute levels are workload-dependent."
        ),
    )
    for bench in benchmarks:
        single = _run(bench, "ICR-P-PS(S)", n, **AGGRESSIVE)
        multi = _run(
            bench, "ICR-P-PS(S)", n, replica_distances=("N/2", "N/4"), **AGGRESSIVE
        )
        result.rows.append(
            [bench, single.replication_ability, multi.replication_ability]
        )
    return result


def figure_02(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Loads with replica: single vs multiple placement attempts."""
    result = FigureResult(
        "Fig 2",
        "Loads with replica, single vs multiple attempts, ICR-P-PS(S)",
        "negligible improvement from multiple attempts (hot data already replicated)",
        ["benchmark", "single_attempt", "multi_attempt"],
        verdict=(
            "REPRODUCED — the loads-with-replica gain from multiple attempts is far "
            "smaller than the ability gain (slightly larger than the paper's "
            "'negligible')."
        ),
    )
    for bench in benchmarks:
        single = _run(bench, "ICR-P-PS(S)", n, **AGGRESSIVE)
        multi = _run(
            bench, "ICR-P-PS(S)", n, replica_distances=("N/2", "N/4"), **AGGRESSIVE
        )
        result.rows.append([bench, single.loads_with_replica, multi.loads_with_replica])
    return result


def figure_03(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Ability to create one vs two replicas (second at Distance-N/4)."""
    result = FigureResult(
        "Fig 3",
        "Replication ability for one vs two replicas, ICR-P-PS(S)",
        "a second copy can be created around 12% of the time on average",
        ["benchmark", "one_replica", "two_replicas"],
        verdict=(
            "REPRODUCED — a second replica is placeable a minority of the time, in the "
            "paper's ~12%-average regime."
        ),
    )
    for bench in benchmarks:
        two = _run(
            bench,
            "ICR-P-PS(S)",
            n,
            max_replicas=2,
            second_replica_distances=("N/4",),
            **AGGRESSIVE,
        )
        both = two.replication_ability * two.second_replica_ability
        result.rows.append([bench, two.replication_ability, both])
    return result


def figure_04(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """dL1 miss rates with one vs two replicas."""
    result = FigureResult(
        "Fig 4",
        "Miss rates, single vs two replicas, ICR-P-PS(S)",
        "extra copies evict useful blocks and worsen miss rates (mesa nearly doubles)",
        ["benchmark", "one_replica", "two_replicas"],
        verdict=(
            "REPRODUCED — the second replica's displacement raises miss rates on every "
            "benchmark."
        ),
    )
    for bench in benchmarks:
        one = _run(bench, "ICR-P-PS(S)", n, **AGGRESSIVE)
        two = _run(
            bench,
            "ICR-P-PS(S)",
            n,
            max_replicas=2,
            second_replica_distances=("N/4",),
            **AGGRESSIVE,
        )
        result.rows.append([bench, one.miss_rate, two.miss_rate])
    return result


def figure_05(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Vertical (Distance-N/2) vs horizontal (Distance-0) replication."""
    result = FigureResult(
        "Fig 5",
        "Loads with replica, vertical vs horizontal replication, ICR-P-PS(S)",
        "little difference between Distance-N/2 and Distance-0",
        ["benchmark", "vertical_N/2", "horizontal_0"],
        verdict=(
            "REPRODUCED — vertical and horizontal replication are nearly "
            "indistinguishable."
        ),
    )
    for bench in benchmarks:
        vertical = _run(bench, "ICR-P-PS(S)", n, **AGGRESSIVE)
        horizontal = _run(
            bench, "ICR-P-PS(S)", n, replica_distances=("0",), **AGGRESSIVE
        )
        result.rows.append(
            [bench, vertical.loads_with_replica, horizontal.loads_with_replica]
        )
    return result


# ---------------------------------------------------------------------------
# Section 5.2 — comparing the schemes (aggressive dead-block prediction)
# ---------------------------------------------------------------------------


def figure_06(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Replication ability: LS (misses + stores) vs S (stores only)."""
    result = FigureResult(
        "Fig 6",
        "Replication ability, ICR-*(LS) vs ICR-*(S)",
        "LS replicates more data than S",
        ["benchmark", "LS", "S"],
        verdict=(
            "PARTIAL — LS >= S holds on most benchmarks; per-benchmark magnitudes "
            "differ from the paper's."
        ),
    )
    for bench in benchmarks:
        ls = _run(bench, "ICR-P-PS(LS)", n, **AGGRESSIVE)
        s = _run(bench, "ICR-P-PS(S)", n, **AGGRESSIVE)
        result.rows.append([bench, ls.replication_ability, s.replication_ability])
    return result


def figure_07(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Loads with replica: LS vs S."""
    result = FigureResult(
        "Fig 7",
        "Loads with replica, ICR-*(LS) vs ICR-*(S)",
        "over 65% of read hits find replicas with S, over 90% with LS (max in mcf)",
        ["benchmark", "LS", "S"],
        verdict=(
            "PARTIAL — S covers the majority of read hits (~0.5-0.8) and LS >= S per "
            "benchmark, but LS stays below the paper's >90% (flatter synthetic reuse "
            "skew; see the header notes)."
        ),
    )
    for bench in benchmarks:
        ls = _run(bench, "ICR-P-PS(LS)", n, **AGGRESSIVE)
        s = _run(bench, "ICR-P-PS(S)", n, **AGGRESSIVE)
        result.rows.append([bench, ls.loads_with_replica, s.loads_with_replica])
    return result


def figure_08(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """dL1 miss rates: Base vs ICR-*(LS) vs ICR-*(S)."""
    result = FigureResult(
        "Fig 8",
        "Miss rates for Base*, ICR-*(LS) and ICR-*(S)",
        "both ICR variants increase dL1 misses; LS more than S",
        ["benchmark", "Base", "ICR(LS)", "ICR(S)"],
        verdict="REPRODUCED — Base < ICR(S) < ICR(LS) miss rates on every benchmark.",
    )
    for bench in benchmarks:
        base = _run(bench, "BaseP", n)
        ls = _run(bench, "ICR-P-PS(LS)", n, **AGGRESSIVE)
        s = _run(bench, "ICR-P-PS(S)", n, **AGGRESSIVE)
        result.rows.append([bench, base.miss_rate, ls.miss_rate, s.miss_rate])
    return result


def figure_09(
    n: int = DEFAULT_INSTRUCTIONS,
    benchmarks: Sequence[str] = BENCHMARKS,
    schemes: Sequence[str] = ALL_SCHEMES,
) -> FigureResult:
    """Normalized execution cycles for all ten schemes (aggressive)."""
    result = FigureResult(
        "Fig 9",
        "Normalized execution cycles, all schemes, aggressive dead-block prediction",
        "BaseECC/ICR-*-PP 25-45% over BaseP; ICR-P-PS(S) +3.6%, ICR-ECC-PS(S) +21% avg",
        ["benchmark"] + list(schemes),
        verdict=(
            "REPRODUCED (orderings) — BaseP < ICR-P-PS < ICR-ECC-PS < PP-schemes ~ "
            "BaseECC; the BaseECC magnitude is ~half the paper's +31% (see header "
            "notes)."
        ),
    )
    for bench in benchmarks:
        base_cycles: Optional[int] = None
        row: list = [bench]
        for scheme in schemes:
            r = _run(bench, scheme, n, **AGGRESSIVE)
            if base_cycles is None:
                base_cycles = r.cycles
            row.append(r.cycles / base_cycles)
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Section 5.3-5.4 — decay-window aggressiveness (vpr), relaxed comparison
# ---------------------------------------------------------------------------

DECAY_WINDOWS = (0, 250, 1000, 4000, 10000)


def figure_10(n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "vpr") -> FigureResult:
    """Replication ability and loads-with-replica vs decay window (vpr)."""
    result = FigureResult(
        "Fig 10",
        f"Replication ability / loads with replica vs decay window ({benchmark})",
        "ability falls with larger windows; loads-with-replica barely moves",
        ["decay_window", "replication_ability", "loads_with_replica"],
        verdict=(
            "REPRODUCED — ability falls steadily with the window; loads-with-replica "
            "barely moves."
        ),
    )
    for window in DECAY_WINDOWS:
        r = _run(
            benchmark,
            "ICR-P-PS(S)",
            n,
            decay_window=window,
            victim_policy=VictimPolicy.DEAD_ONLY,
        )
        result.rows.append([window, r.replication_ability, r.loads_with_replica])
    return result


def figure_11(n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "vpr") -> FigureResult:
    """Normalized execution cycles vs decay window (vpr)."""
    result = FigureResult(
        "Fig 11",
        f"Normalized execution cycles vs decay window ({benchmark})",
        "ICR-P-PS(S) < 4% over BaseP at 1000 cycles, ~1.7% at 10000",
        ["decay_window", "ICR-P-PS(S)", "ICR-ECC-PS(S)"],
        verdict=(
            "REPRODUCED — ICR-P-PS(S) within a few percent of BaseP at 1000 cycles, "
            "closer at 10000."
        ),
    )
    base = _run(benchmark, "BaseP", n)
    for window in DECAY_WINDOWS:
        p = _run(
            benchmark,
            "ICR-P-PS(S)",
            n,
            decay_window=window,
            victim_policy=VictimPolicy.DEAD_ONLY,
        )
        e = _run(
            benchmark,
            "ICR-ECC-PS(S)",
            n,
            decay_window=window,
            victim_policy=VictimPolicy.DEAD_ONLY,
        )
        result.rows.append([window, p.cycles / base.cycles, e.cycles / base.cycles])
    return result


def figure_12(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Normalized cycles with the relaxed (1000-cycle) configuration."""
    result = FigureResult(
        "Fig 12",
        "Normalized execution cycles, decay window 1000, dead-first victim",
        "avg over BaseP: BaseECC +30.9%, ICR-P-PS(S) +2.4%, ICR-ECC-PS(S) +10.2%",
        ["benchmark", "BaseP", "BaseECC", "ICR-P-PS(S)", "ICR-ECC-PS(S)"],
        verdict=(
            "REPRODUCED (orderings and small-overhead claims) — ICR-ECC recovers most "
            "of BaseECC's loss."
        ),
    )
    for bench in benchmarks:
        base = _run(bench, "BaseP", n)
        ecc = _run(bench, "BaseECC", n)
        icr_p = _run(bench, "ICR-P-PS(S)", n, **RELAXED)
        icr_e = _run(bench, "ICR-ECC-PS(S)", n, **RELAXED)
        result.rows.append(
            [
                bench,
                1.0,
                ecc.cycles / base.cycles,
                icr_p.cycles / base.cycles,
                icr_e.cycles / base.cycles,
            ]
        )
    return result


def figure_13(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Replication ability / loads-with-replica: window 1000 vs 0."""
    result = FigureResult(
        "Fig 13",
        "Replication ability and loads with replica, decay window 1000 vs 0",
        "loads-with-replica barely changes even though ability differs",
        ["benchmark", "ability_w0", "ability_w1000", "lwr_w0", "lwr_w1000"],
        verdict=(
            "REPRODUCED — coverage is insensitive to the window even where ability is "
            "not."
        ),
    )
    for bench in benchmarks:
        w0 = _run(bench, "ICR-P-PS(S)", n, **AGGRESSIVE)
        w1000 = _run(bench, "ICR-P-PS(S)", n, **RELAXED)
        result.rows.append(
            [
                bench,
                w0.replication_ability,
                w1000.replication_ability,
                w0.loads_with_replica,
                w1000.loads_with_replica,
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Section 5.5 — error injection (vortex)
# ---------------------------------------------------------------------------

# Per-cycle fault probabilities.  As in the paper, deliberately extreme:
# realistic rates produce zero unrecoverable loads for every scheme, so the
# plot only separates the schemes under intense error pressure.
ERROR_RATES = (3e-2, 1e-2, 3e-3, 1e-3)


def figure_14(
    n: int = 100_000,
    benchmark: str = "vortex",
    error_rates: Sequence[float] = ERROR_RATES,
    model: str = "random",
) -> FigureResult:
    """Unrecoverable loads vs per-cycle error probability (vortex).

    Uses bit-accurate storage and the real parity/SEC-DED decoders;
    BaseECC corrects all single-bit errors by construction.
    """
    result = FigureResult(
        "Fig 14",
        f"Percentage of unrecoverable loads ({benchmark}, {model} model)",
        (
            "ICR schemes are far more resilient than BaseP; BaseECC corrects all 1-bit "
            "errors"
        ),
        ["error_rate", "BaseP", "ICR-P-PS(S)", "ICR-ECC-PS(S)", "BaseECC"],
        verdict=(
            "REPRODUCED — ICR-P far more resilient than BaseP at every rate; ICR-ECC "
            "near zero; BaseECC loses only accumulated doubles at extreme rates."
        ),
    )
    for rate in error_rates:
        row: list = [rate]
        for scheme, kwargs in (
            ("BaseP", {}),
            ("ICR-P-PS(S)", RELAXED),
            ("ICR-ECC-PS(S)", RELAXED),
            ("BaseECC", {}),
        ):
            r = _run(
                benchmark,
                scheme,
                n,
                error_rate=rate,
                error_model=model,
                **kwargs,
            )
            row.append(r.unrecoverable_load_fraction * 100)
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Section 5.6 — performance mode (replicas left in place)
# ---------------------------------------------------------------------------


def figure_15(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Normalized cycles when replicas are left in dL1 on primary eviction."""
    result = FigureResult(
        "Fig 15",
        "Normalized execution cycles with replicas used for performance",
        (
            "ICR-*-PS(S) matches BaseP nearly everywhere and beats it in mcf/vpr (up "
            "to 24%)"
        ),
        ["benchmark", "BaseP", "BaseECC", "ICR-P-PS(S)+leave", "ICR-ECC-PS(S)+leave"],
        verdict=(
            "PARTIAL — direction reproduced (ICR+leave matches BaseP everywhere and "
            "beats it on mcf); the mcf win is a few percent rather than up to 24% (see "
            "header notes)."
        ),
    )
    for bench in benchmarks:
        base = _run(bench, "BaseP", n)
        ecc = _run(bench, "BaseECC", n)
        icr_p = _run(
            bench, "ICR-P-PS(S)", n, leave_replicas_on_evict=True, **RELAXED
        )
        icr_e = _run(
            bench, "ICR-ECC-PS(S)", n, leave_replicas_on_evict=True, **RELAXED
        )
        result.rows.append(
            [
                bench,
                1.0,
                ecc.cycles / base.cycles,
                icr_p.cycles / base.cycles,
                icr_e.cycles / base.cycles,
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Section 5.8 — write-through comparison
# ---------------------------------------------------------------------------


def figure_16(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Write-through BaseP vs write-back ICR-P-PS(S): cycles and energy."""
    result = FigureResult(
        "Fig 16",
        "Write-through BaseP normalized to write-back ICR-P-PS(S)",
        "ICR is ~5.7% faster on average; WT spends >2x the L1+L2 energy",
        ["benchmark", "wt_cycles_ratio", "wt_energy_ratio"],
        verdict=(
            "REPRODUCED — write-through costs cycles (stalls) and much more L1+L2 "
            "energy than write-back ICR."
        ),
    )
    for bench in benchmarks:
        icr = _run(bench, "ICR-P-PS(S)", n, **RELAXED)
        wt = _run(bench, "BaseP-WT", n)
        result.rows.append(
            [
                bench,
                wt.cycles / icr.cycles,
                wt.energy.total_nj / icr.energy.total_nj,
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Section 5.9 — speculative-load BaseECC comparison
# ---------------------------------------------------------------------------


def figure_17(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """Speculative-load BaseECC vs performance-optimized ICR-P-PS(S)."""
    from repro.harness.experiment import MachineConfig

    result = FigureResult(
        "Fig 17",
        "BaseECC with 1-cycle speculative loads, normalized to ICR-P-PS(S)+leave",
        "ICR still ~2.5% faster avg (30.8% in mcf); energy ~equal at 15:30, "
        "BaseECC ~3.1% worse at 10:30",
        [
            "benchmark",
            "spec_cycles_ratio",
            "energy_ratio_15_30",
            "energy_ratio_10_30",
        ],
        verdict=(
            "REPRODUCED — speculative BaseECC recovers the cycles but not the check "
            "energy; the gap grows at 10:30."
        ),
    )
    machine_15 = MachineConfig(parity_fraction=0.15, ecc_fraction=0.30)
    machine_10 = MachineConfig(parity_fraction=0.10, ecc_fraction=0.30)
    for bench in benchmarks:
        icr_15 = _run(
            bench,
            "ICR-P-PS(S)",
            n,
            machine=machine_15,
            leave_replicas_on_evict=True,
            **RELAXED,
        )
        icr_10 = _run(
            bench,
            "ICR-P-PS(S)",
            n,
            machine=machine_10,
            leave_replicas_on_evict=True,
            **RELAXED,
        )
        spec_15 = _run(bench, "BaseECC-spec", n, machine=machine_15)
        spec_10 = _run(bench, "BaseECC-spec", n, machine=machine_10)
        result.rows.append(
            [
                bench,
                spec_15.cycles / icr_15.cycles,
                spec_15.energy.total_nj / icr_15.energy.total_nj,
                spec_10.energy.total_nj / icr_10.energy.total_nj,
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Ablations called out in the text (Sections 5.1, 5.7) and DESIGN.md
# ---------------------------------------------------------------------------


def ablation_distance(
    n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "gzip"
) -> FigureResult:
    """Distance-N/2 vs Distance-7 vs Distance-N/4 (text of Section 5.1)."""
    result = FigureResult(
        "Ablation A1",
        f"Replica distance choice ({benchmark})",
        "Distance-7 behaves like Distance-N/2",
        ["distance", "replication_ability", "loads_with_replica", "miss_rate"],
    )
    for label, distance in (("N/2", "N/2"), ("7", 7), ("N/4", "N/4"), ("0", "0")):
        r = _run(
            benchmark, "ICR-P-PS(S)", n, replica_distances=(distance,), **AGGRESSIVE
        )
        result.rows.append(
            [label, r.replication_ability, r.loads_with_replica, r.miss_rate]
        )
    return result


def ablation_victim_policy(
    n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "gcc"
) -> FigureResult:
    """All four victim policies (Section 3.1)."""
    result = FigureResult(
        "Ablation A2",
        f"Victim policy for replica placement ({benchmark})",
        "dead-first finds more sites than dead-only without hurting misses",
        ["policy", "replication_ability", "loads_with_replica", "miss_rate"],
    )
    for policy in VictimPolicy:
        r = _run(
            benchmark,
            "ICR-P-PS(S)",
            n,
            decay_window=1000,
            victim_policy=policy,
        )
        result.rows.append(
            [policy.value, r.replication_ability, r.loads_with_replica, r.miss_rate]
        )
    return result


def ablation_cache_params(
    n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "vpr"
) -> FigureResult:
    """Cache size / associativity sensitivity (Section 5.7)."""
    from repro.cache.set_assoc import CacheGeometry

    result = FigureResult(
        "Ablation A3",
        f"Sensitivity to dL1 size and associativity ({benchmark})",
        "ability rises with cache size; loads-with-replica changes little",
        ["geometry", "replication_ability", "loads_with_replica", "miss_rate"],
    )
    for size_kb, assoc in ((8, 4), (16, 2), (16, 4), (16, 8), (32, 4), (64, 4)):
        geometry = CacheGeometry(size_kb * 1024, assoc, 64)
        r = _run(
            benchmark, "ICR-P-PS(S)", n, geometry=geometry, **AGGRESSIVE
        )
        result.rows.append(
            [
                f"{size_kb}KB/{assoc}way",
                r.replication_ability,
                r.loads_with_replica,
                r.miss_rate,
            ]
        )
    return result


#: Registry used by the benchmark suite and the EXPERIMENTS.md generator.
ALL_FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig01": figure_01,
    "fig02": figure_02,
    "fig03": figure_03,
    "fig04": figure_04,
    "fig05": figure_05,
    "fig06": figure_06,
    "fig07": figure_07,
    "fig08": figure_08,
    "fig09": figure_09,
    "fig10": figure_10,
    "fig11": figure_11,
    "fig12": figure_12,
    "fig13": figure_13,
    "fig14": figure_14,
    "fig15": figure_15,
    "fig16": figure_16,
    "fig17": figure_17,
    "ablation_distance": ablation_distance,
    "ablation_victim_policy": ablation_victim_policy,
    "ablation_cache_params": ablation_cache_params,
}


# ---------------------------------------------------------------------------
# Extensions: comparisons and ablations beyond the paper's figures
# ---------------------------------------------------------------------------


def comparison_rcache(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """ICR coverage vs a dedicated Kim & Somani-style duplicate cache.

    The R-Cache side runs through the registered ``rcache`` scheme, so
    it shares the runner, the result cache, and the standard
    ``loads_with_replica`` metric with every other scheme (the numbers
    match :func:`repro.baselines.rcache.run_rcache_baseline` exactly —
    benchmarks/bench_comparison_rcache.py asserts it).
    """
    result = FigureResult(
        "Comparison C1",
        "Duplicate coverage: ICR-P-PS(S) vs dedicated 2KB R-Cache",
        "ICR reaches comparable coverage without the dedicated array",
        ["benchmark", "icr_loads_with_replica", "rcache_loads_with_duplicate"],
    )
    for bench in benchmarks:
        icr = _run(bench, "ICR-P-PS(S)", n)
        rcache = _run(bench, "rcache", n)
        result.rows.append(
            [bench, icr.loads_with_replica, rcache.loads_with_replica]
        )
    return result


def comparison_victim_cache(
    n: int = DEFAULT_INSTRUCTIONS, benchmarks: Sequence[str] = BENCHMARKS
) -> FigureResult:
    """ICR leave-in-place mode vs a dedicated 16-entry victim cache.

    The victim-cache side runs through the registered ``victim-cache``
    scheme on the full Table 1 machine — cycle-identical to
    :func:`repro.baselines.victim_cache.run_victim_cache_baseline`
    (benchmarks/bench_comparison_victim_cache.py asserts it).
    """
    result = FigureResult(
        "Comparison C2",
        "Cycles vs BaseP: dedicated 16-entry victim cache vs ICR leave-mode",
        "ICR's replica fills buy a victim-cache-like win with no extra array",
        ["benchmark", "victim_cache", "ICR-P-PS(S)+leave"],
    )
    for bench in benchmarks:
        base = _run(bench, "BaseP", n)
        vc = _run(bench, "victim-cache", n)
        icr = _run(
            bench, "ICR-P-PS(S)", n, leave_replicas_on_evict=True, **RELAXED
        )
        result.rows.append(
            [bench, vc.cycles / base.cycles, icr.cycles / base.cycles]
        )
    return result


def comparison_area(n: int = DEFAULT_INSTRUCTIONS) -> FigureResult:
    """Storage/leakage cost of each reliability option (Section 6 claim)."""
    from repro.cache.set_assoc import CacheGeometry
    from repro.energy.area import compare_reliability_areas

    result = FigureResult(
        "Comparison C3",
        "Extra storage over a parity dL1 (16KB/4-way/64B)",
        "ICR adds <1% metadata; every alternative adds a real array",
        ["option", "extra_bits", "extra_leakage_nW", "fraction_of_dl1"],
    )
    for row in compare_reliability_areas(CacheGeometry(16 * 1024, 4, 64)):
        result.rows.append(
            [row.option, row.extra_bits, row.extra_leakage_nw,
             row.extra_fraction_of_dl1]
        )
    return result


def ablation_pipeline(
    n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "gzip"
) -> FigureResult:
    """BaseECC's relative penalty across out-of-order window sizes."""
    from repro.cpu.pipeline import PipelineConfig
    from repro.harness.experiment import MachineConfig

    result = FigureResult(
        "Ablation A4",
        f"BaseECC cycle penalty vs out-of-order window ({benchmark})",
        "chained loads defeat the window; throughput-bound machines dilute "
        "the ECC penalty instead",
        ["configuration", "BaseECC/BaseP"],
    )
    for label, kwargs in (
        ("width2_ruu8_lsq4", dict(issue_width=2, ruu_size=8, lsq_size=4)),
        ("width4_ruu16_lsq8 (Table 1)", dict()),
        ("width4_ruu64_lsq32", dict(ruu_size=64, lsq_size=32)),
        ("width8_ruu128_lsq64", dict(issue_width=8, ruu_size=128, lsq_size=64)),
    ):
        machine = MachineConfig(pipeline=PipelineConfig(**kwargs))
        base = _run(benchmark, "BaseP", n, machine=machine)
        ecc = _run(benchmark, "BaseECC", n, machine=machine)
        result.rows.append([label, ecc.cycles / base.cycles])
    return result


def ablation_scrubbing(
    n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "vortex"
) -> FigureResult:
    """Scrubbing vs double-error accumulation at an intense fault rate."""
    rate = 5e-2
    result = FigureResult(
        "Ablation A5",
        f"Unrecoverable loads with/without scrubbing ({benchmark}, p={rate})",
        "scrubbing suppresses double-error accumulation (extension)",
        ["scheme", "no_scrub", "scrub_10k", "scrub_2k"],
    )
    for scheme in ("BaseECC", "ICR-ECC-PS(S)"):
        kwargs = {} if scheme.startswith("Base") else {"decay_window": 1000}
        row: list = [scheme]
        for period in (None, 10_000, 2_000):
            r = _run(
                benchmark, scheme, n,
                error_rate=rate, error_seed=5, scrub_period=period, **kwargs,
            )
            row.append(r.dl1["load_errors_unrecoverable"])
        result.rows.append(row)
    return result


def ablation_replacement(
    n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "gzip"
) -> FigureResult:
    """ICR behaviour under LRU approximations (extension)."""
    result = FigureResult(
        "Ablation A6",
        f"ICR-P-PS(S) under different primary replacement policies ({benchmark})",
        "coverage and miss cost are robust to the replacement approximation",
        ["replacement", "miss_rate", "loads_with_replica", "norm_cycles"],
    )
    base = _run(benchmark, "BaseP", n)
    for policy in ("lru", "plru", "fifo", "random"):
        r = _run(benchmark, "ICR-P-PS(S)", n, replacement=policy)
        result.rows.append(
            [policy, r.miss_rate, r.loads_with_replica, r.cycles / base.cycles]
        )
    return result


ALL_FIGURES.update(
    {
        "ablation_pipeline": ablation_pipeline,
        "ablation_scrubbing": ablation_scrubbing,
        "ablation_replacement": ablation_replacement,
        "comparison_rcache": comparison_rcache,
        "comparison_victim_cache": comparison_victim_cache,
        "comparison_area": comparison_area,
    }
)


def ablation_write_buffer(
    n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "vortex"
) -> FigureResult:
    """Write-buffer depth sensitivity for the write-through dL1 (Section 5.8).

    The paper's WT comparison uses an 8-entry coalescing buffer [24];
    shallower buffers stall stores more, deeper ones approach stall-free.
    """
    from repro.cache.hierarchy import HierarchyConfig
    from repro.harness.experiment import MachineConfig

    result = FigureResult(
        "Ablation A7",
        f"Write-through dL1 vs write-buffer depth ({benchmark})",
        "stalls shrink with buffer depth; 8 entries nearly suffices",
        ["entries", "norm_cycles_vs_wb8", "stall_cycles"],
    )
    reference = None
    for entries in (2, 4, 8, 16):
        machine = MachineConfig(
            hierarchy=HierarchyConfig(write_buffer_entries=entries)
        )
        r = _run(benchmark, "BaseP-WT", n, machine=machine)
        if entries == 8:
            reference = r.cycles
        result.rows.append([entries, r.cycles, r.write_buffer_stalls])
    # Normalize after the fact (reference defined once all rows ran).
    for row in result.rows:
        row[1] = row[1] / reference
    return result


def ablation_power2(
    n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "gzip"
) -> FigureResult:
    """The power-2 fallback sequence (Section 3.1): more attempts, more
    ability, diminishing returns."""
    from repro.core.config import power2_distances

    result = FigureResult(
        "Ablation A8",
        f"Power-2 placement fallback: attempts vs ability ({benchmark})",
        "each extra attempt raises ability with diminishing returns",
        ["max_attempts", "replication_ability", "loads_with_replica", "miss_rate"],
    )
    for attempts in (1, 2, 3, 5):
        distances = tuple(power2_distances(64, attempts))
        r = _run(
            benchmark, "ICR-P-PS(S)", n, replica_distances=distances, **AGGRESSIVE
        )
        result.rows.append(
            [attempts, r.replication_ability, r.loads_with_replica, r.miss_rate]
        )
    return result


def comparison_placement(
    n: int = DEFAULT_INSTRUCTIONS, benchmark: str = "gzip"
) -> FigureResult:
    """Placement policies beyond the paper: the Distance-N/2 walk vs
    power-2 multi-attempt vs consistent-hash-ring placement with
    replication factor N ∈ {1, 2, 3}."""
    result = FigureResult(
        "Comparison C4",
        f"Replica placement policies ({benchmark})",
        "ring placement matches the distance walk's ability at N=1 and "
        "buys extra replicas (deeper error coverage) at N>=2 at the "
        "cost of more displaced dead lines",
        [
            "placement",
            "replication_ability",
            "replicas_per_success",
            "loads_with_replica",
            "miss_rate",
        ],
    )
    runs = [
        ("distance-N/2", "ICR-P-PS(S)", {}),
        (
            "power2(4)",
            "ICR-P-PS(S)",
            {"placement": "power2", "ring_attempts": 4},
        ),
    ] + [
        (
            f"ring-N{k}",
            f"ICR-Ring-{k}",
            {},
        )
        for k in (1, 2, 3)
    ]
    for label, scheme, extra in runs:
        r = _run(benchmark, scheme, n, **extra, **AGGRESSIVE)
        d = r.dl1
        successes = d["replication_successes"]
        placed = successes + d["second_replica_successes"]
        result.rows.append(
            [
                label,
                r.replication_ability,
                placed / successes if successes else 0.0,
                r.loads_with_replica,
                r.miss_rate,
            ]
        )
    return result


def ablation_error_models(n: int = 60_000, benchmark: str = "vortex") -> FigureResult:
    """All four Kim & Somani models (Section 5.5: 'the overall results
    are similar, we present ... random')."""
    rate = 1e-2
    result = FigureResult(
        "Ablation A9",
        f"Lost-load %% (unrecoverable + silent) per error model "
        f"({benchmark}, p={rate})",
        "the scheme ordering holds under every injection model; adjacent "
        "double flips within a byte defeat parity *silently*, which only "
        "the golden-value comparison reveals",
        ["model", "BaseP", "BaseP_silent", "ICR-P-PS(S)", "ICR-P_silent",
         "ICR-ECC-PS(S)"],
    )
    for model in ("random", "direct", "adjacent", "column"):
        row: list = [model]
        for scheme, kwargs in (
            ("BaseP", {}),
            ("ICR-P-PS(S)", RELAXED),
            ("ICR-ECC-PS(S)", RELAXED),
        ):
            r = _run(
                benchmark, scheme, n,
                error_rate=rate, error_model=model, **kwargs,
            )
            row.append(r.unrecoverable_load_fraction * 100)
            if scheme != "ICR-ECC-PS(S)":
                row.append(r.dl1["silent_corruptions"] / r.dl1["loads"] * 100)
        result.rows.append(row)
    return result


ALL_FIGURES.update(
    {
        "ablation_write_buffer": ablation_write_buffer,
        "ablation_power2": ablation_power2,
        "comparison_placement": comparison_placement,
        "ablation_error_models": ablation_error_models,
    }
)


def ablation_icache(n: int = 60_000, benchmark: str = "gzip") -> FigureResult:
    """Parity-only iL1 under fault injection (Section 1's claim).

    "error detection and correction is more critical for data caches
    (which can be written into), while detection may suffice for
    instruction caches which are mainly read-only" — instructions are
    never dirty, so every detected iL1 error is recovered by refetch.
    """
    result = FigureResult(
        "Ablation A10",
        f"Parity iL1 under fault injection ({benchmark})",
        "every detected iL1 error is refetched from L2; none are lost",
        ["icache_error_rate", "injected", "detected", "recovered_l2",
         "unrecoverable"],
    )
    for rate in (1e-2, 1e-3):
        r = _run(benchmark, "BaseP", n, icache_error_rate=rate)
        i = r.l1i
        result.rows.append(
            [
                rate,
                i["errors_injected"],
                i["load_errors_detected"],
                i["load_errors_recovered_l2"],
                i["load_errors_unrecoverable"],
            ]
        )
    return result


ALL_FIGURES["ablation_icache"] = ablation_icache
