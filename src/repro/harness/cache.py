"""Content-addressed, on-disk cache for experiment results.

Re-running a figure or sweep with one changed configuration should only
simulate the delta.  To make that safe, a cached result is keyed by a
stable hash over *everything the simulation depends on*:

* the resolved :class:`~repro.workloads.generator.WorkloadProfile`
  (benchmark names are resolved to their full parameter set, so editing
  a profile invalidates its entries);
* the scheme — name plus every scheme kwarg, or a prebuilt
  :class:`~repro.core.config.ICRConfig` field-by-field;
* the run parameters (``n_instructions``, machine, error rate / model /
  seed, scrub period, trace seed, warm-up, iL1 error rate), with
  omitted arguments normalized to :func:`run_experiment`'s defaults so
  an explicit default and an omitted one share a key;
* a digest of the ``repro`` package source (the *code version*), so any
  edit to the simulator invalidates the whole cache.

Entries live under ``~/.cache/repro`` (override with ``--cache-dir`` or
the ``REPRO_CACHE_DIR`` environment variable) as one JSON file per
result, sharded by the first two hex digits of the key.  A corrupted or
truncated entry is treated as a miss — it is *quarantined* (renamed to
``<key>.corrupt`` so the damaged bytes survive for diagnosis) and the
experiment recomputed, never raised to the caller.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from functools import lru_cache
from pathlib import Path
from typing import Any, Optional, Union

from repro import recovery
from repro.chaos import runtime as _chaos

from repro.core.config import ICRConfig
from repro.core.registry import normalize_scheme_name
from repro.harness.experiment import SimulationResult
from repro.harness.spec import RUN_DEFAULTS as _RUN_DEFAULTS
from repro.harness.spec import MachineConfig
from repro.workloads.generator import WorkloadProfile
from repro.workloads.spec2000 import profile_for

#: Bumped whenever the on-disk entry format changes.
CACHE_FORMAT = 1


class UncacheableJobError(ValueError):
    """The job's parameters cannot be canonicalized to a stable key.

    Raised for values with no stable content representation (live
    objects such as :class:`~repro.core.hints.ReplicationHints`
    instances, callables, ...).  Callers fall back to running the
    experiment uncached.
    """


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro/**/*.py`` source file.

    Any edit to the simulator (or the harness itself) changes the
    version and therefore every cache key — stale results can never be
    served across code changes.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.blake2b(digest_size=8)
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _canonical(value: Any) -> Any:
    """Reduce *value* to JSON-stable plain data (or raise Uncacheable)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; NaN never equals itself, so
        # refuse it rather than silently aliasing keys.
        if value != value:
            raise UncacheableJobError("NaN parameter value")
        return repr(value)
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for k in sorted(value):
            if not isinstance(k, str):
                raise UncacheableJobError(f"non-string dict key {k!r}")
            out[k] = _canonical(value[k])
        return out
    raise UncacheableJobError(f"cannot canonicalize {type(value).__name__}")


def job_key(
    benchmark: Union[str, WorkloadProfile],
    scheme: Union[str, ICRConfig],
    kwargs: Optional[dict] = None,
) -> str:
    """Stable content hash for one :func:`run_experiment` invocation.

    Raises :class:`UncacheableJobError` when any parameter has no
    stable representation.
    """
    profile = profile_for(benchmark) if isinstance(benchmark, str) else benchmark
    if isinstance(scheme, str):
        # Canonical spelling via the registry: every accepted spelling of
        # a scheme shares one cache identity (matches ExperimentSpec).
        scheme = normalize_scheme_name(scheme)
    merged = dict(_RUN_DEFAULTS)
    merged.update(kwargs or {})
    if merged["machine"] is None:
        merged["machine"] = MachineConfig()
    payload = {
        "format": CACHE_FORMAT,
        "code": code_version(),
        "profile": _canonical(profile),
        "scheme": _canonical(scheme),
        "kwargs": _canonical(merged),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# SimulationResult <-> JSON
# ---------------------------------------------------------------------------

# The plain-data round-trip lives on SimulationResult itself
# (to_dict/from_dict); these wrappers are kept as the harness-level
# names used throughout the cache and its tests.


def result_to_dict(result: SimulationResult) -> dict:
    """Lossless plain-data form of a :class:`SimulationResult`."""
    return result.to_dict()


def result_from_dict(data: dict) -> SimulationResult:
    """Inverse of :func:`result_to_dict` (raises on malformed input)."""
    return SimulationResult.from_dict(data)


class FileLease:
    """An advisory, TTL-bounded claim on a shared resource.

    The multi-host campaign scheduler uses one lease file per campaign
    cell: an engine that wants to run a cell's trials must hold its
    lease, so two engines pointed at the same checkpoint/cache
    directory partition the grid between themselves instead of
    duplicating work.  The protocol is deliberately minimal and crash
    tolerant:

    * **Claim** — create the lease file with ``O_CREAT | O_EXCL`` (the
      one atomic primitive every shared filesystem offers) and write
      the owner's identity into it.
    * **Renew** — the holder refreshes the file's mtime on a heartbeat;
      a lease whose mtime is older than *ttl* seconds is *stale*.
    * **Takeover** — anyone may break a stale lease: atomically
      ``rename`` it aside (exactly one racer's rename succeeds; the
      losers see ``FileNotFoundError`` and fall back to racing the
      ``O_EXCL`` create), then race for a fresh create.  At most one
      racer wins; the dead holder's work is recoverable because all
      trial results live in the content-addressed cache and committed
      records in the published cell files.
    * **Release** — the holder unlinks the file (only while the file
      still names it as owner, so a takeover is never clobbered).

    Leases are advisory: they order *scheduling*, not correctness —
    even two engines running the same cell concurrently converge on
    identical records because trials are deterministic and
    content-addressed.
    """

    def __init__(self, path: Union[str, Path], owner: str, *, ttl: float = 30.0):
        self.path = Path(path)
        self.owner = owner
        self.ttl = ttl

    # -- state probes -----------------------------------------------------

    def holder(self) -> Optional[str]:
        """The current owner id, or None when unclaimed/unreadable."""
        try:
            data = json.loads(self.path.read_text())
            return data.get("owner")
        except (OSError, ValueError):
            return None

    def is_stale(self) -> bool:
        """True when the lease exists but stopped being renewed."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False
        return age > self.ttl

    def held(self) -> bool:
        """True while this instance's owner id is on the lease file."""
        return self.holder() == self.owner

    # -- protocol ---------------------------------------------------------

    def acquire(self, *, break_stale: bool = True) -> bool:
        """Try to claim the lease; True when this owner now holds it."""
        if self.held():
            self.renew()
            return True
        for _ in range(2):  # second try: after breaking a stale lease
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if not (break_stale and self.is_stale()):
                    return False
                if not self._break_stale():
                    return False
                continue
            except OSError:
                return False
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps({"owner": self.owner, "pid": os.getpid()}))
            # Post-create verification of the owner token.  The O_EXCL
            # create is the authoritative claim, but verifying that the
            # file still names us closes any future regression toward
            # the old unlink-based breaking, where a slow racer could
            # unlink *our* fresh lease and create its own over it.
            if self.holder() != self.owner:
                return False
            return True
        return False

    def _break_stale(self) -> bool:
        """Atomically retire a stale lease file; True when the caller
        may race for the ``O_EXCL`` create.

        The old protocol (``unlink`` then create) had a double-takeover
        race: engines A and B both observe the stale lease, A unlinks
        and creates its fresh lease, then B's queued unlink removes
        *A's* lease and B creates its own — two holders.  Breaking via
        ``os.rename`` to a unique graveyard name closes it: exactly one
        racer's rename succeeds (the losers get ``FileNotFoundError``
        and fall through to the create race, where ``O_EXCL`` arbitrates),
        and a fresh lease can never be swept away because only the
        *stale* file is ever moved.
        """
        grave = self.path.with_name(
            f"{self.path.name}.broken.{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(self.path, grave)
        except FileNotFoundError:
            return True  # another racer broke it first; race for the create
        except OSError:
            return False
        # rename preserves mtime: confirm the file we retired really was
        # stale.  A renew may have landed between is_stale() and the
        # rename — in that case try to put the live lease back (link
        # fails harmlessly if a new claim already took the slot).
        try:
            age = time.time() - grave.stat().st_mtime
        except OSError:
            age = self.ttl + 1.0
        if age <= self.ttl:
            try:
                os.link(grave, self.path)
            except OSError:
                pass
            try:
                grave.unlink()
            except OSError:
                pass
            return False
        try:
            grave.unlink()
        except OSError:
            pass
        recovery.count("lease_takeovers")
        recovery.warn(
            "lease", f"broke stale lease {self.path.name} (holder presumed dead)"
        )
        return True

    def renew(self) -> bool:
        """Heartbeat: refresh the mtime while we still own the lease."""
        if not self.held():
            return False
        try:
            os.utime(self.path)
        except OSError:
            return False
        return True

    def release(self) -> None:
        """Give the lease up (no-op if somebody else took it over)."""
        if self.held():
            try:
                self.path.unlink()
            except OSError:
                pass


class ResultCache:
    """Persistent result store, one JSON file per job key.

    ``enabled=False`` turns every operation into a no-op (the
    ``--no-cache`` path), which keeps call sites branch-free.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        *,
        enabled: bool = True,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def path_for(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for *key*, or None (missing/corrupt/disabled)."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            result = result_from_dict(data)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted / truncated / stale-format entry: quarantine it
            # (rename preserves the damaged bytes for diagnosis, and a
            # non-.json suffix keeps it out of every future lookup) and
            # recompute.  Deleting outright would work too, but losing
            # the evidence makes "why did this cache entry rot" an
            # unanswerable question.
            self.corrupt += 1
            self.misses += 1
            try:
                os.replace(path, path.with_suffix(".corrupt"))
            except OSError:
                try:
                    path.unlink()
                except OSError:
                    pass
            recovery.count("cache_quarantined")
            recovery.warn(
                "cache", f"quarantined corrupt entry {path.name} (recomputing)"
            )
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Persist *result* atomically (rename over a temp file)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            _chaos.check_disk_full("cache", key)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(result_to_dict(result)))
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache dir never fails the run — the
            # result is simply not persisted this time.
            recovery.count("cache_write_errors")
            recovery.warn("cache", f"dropped write for {key[:12]}… (disk error)")
            return
        _chaos.damage_cache_entry(key, path)
        self.stores += 1


class _CacheShard:
    """One lock-guarded LRU segment of a :class:`ReadThroughCache`."""

    __slots__ = ("lock", "entries", "capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int):
        self.lock = threading.Lock()
        self.entries: OrderedDict[str, SimulationResult] = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class ReadThroughCache:
    """Sharded in-memory LRU tier over a :class:`ResultCache`.

    The simulation service answers hot result lookups from this tier —
    a memory hit costs one dict probe under a per-shard lock, never a
    disk read, never the simulator.  Misses fall through to the backing
    disk cache and populate the memory tier on the way back (the
    *read-through* contract); :meth:`put` writes through to disk, so a
    restart loses only latency, never results.

    Keys are the content hashes of :func:`job_key` (hex), sharded by
    their leading digits: concurrent readers of different keys contend
    on different locks, and the eviction clock is per shard, so one
    scan-heavy client cannot flush another shard's hot entries.
    Capacity is ``capacity_per_shard`` entries *per shard*; the
    least-recently-used entry of a full shard is evicted on insert.

    Thread-safe; designed for one writer (the execution loop) and many
    readers (HTTP handlers), but safe for any mix.
    """

    def __init__(
        self,
        backing: Optional[ResultCache] = None,
        *,
        shards: int = 16,
        capacity_per_shard: int = 256,
    ):
        if shards < 1 or capacity_per_shard < 1:
            raise ValueError("shards and capacity_per_shard must be >= 1")
        self.backing = backing
        self._shards = [_CacheShard(capacity_per_shard) for _ in range(shards)]
        self.backing_hits = 0
        self.stores = 0

    def _shard_for(self, key: str) -> _CacheShard:
        try:
            index = int(key[:4], 16)
        except ValueError:  # non-hex key: still deterministic
            index = hash(key)
        return self._shards[index % len(self._shards)]

    def get(self, key: str) -> Optional[SimulationResult]:
        """Memory tier, then backing store, then ``None``."""
        shard = self._shard_for(key)
        with shard.lock:
            hit = shard.entries.get(key)
            if hit is not None:
                shard.entries.move_to_end(key)
                shard.hits += 1
                return hit
            shard.misses += 1
        if self.backing is None:
            return None
        result = self.backing.get(key)
        if result is not None:
            self.backing_hits += 1
            self._install(shard, key, result)
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Install in the memory tier and write through to the backing."""
        self._install(self._shard_for(key), key, result)
        self.stores += 1
        if self.backing is not None:
            self.backing.put(key, result)

    def warm(self, key: str, result: SimulationResult) -> None:
        """Install in the memory tier only (no backing write).

        For results some other path already persisted — e.g. the
        service's runner stores every simulated result in the shared
        disk cache itself, so completing a job only needs to make the
        hot tier current.
        """
        self._install(self._shard_for(key), key, result)

    def contains_in_memory(self, key: str) -> bool:
        """True when *key* is resident (no promotion, no stat changes)."""
        shard = self._shard_for(key)
        with shard.lock:
            return key in shard.entries

    def _install(
        self, shard: _CacheShard, key: str, result: SimulationResult
    ) -> None:
        with shard.lock:
            if key in shard.entries:
                shard.entries.move_to_end(key)
                shard.entries[key] = result
                return
            while len(shard.entries) >= shard.capacity:
                shard.entries.popitem(last=False)
                shard.evictions += 1
            shard.entries[key] = result

    def stats(self) -> dict[str, Any]:
        """Aggregate and per-shard counters (the telemetry payload)."""
        per_shard = [
            {
                "entries": len(s.entries),
                "hits": s.hits,
                "misses": s.misses,
                "evictions": s.evictions,
            }
            for s in self._shards
        ]
        hits = sum(s["hits"] for s in per_shard)
        misses = sum(s["misses"] for s in per_shard)
        return {
            "shards": len(self._shards),
            "entries": sum(s["entries"] for s in per_shard),
            "memory_hits": hits,
            "memory_misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "backing_hits": self.backing_hits,
            "evictions": sum(s["evictions"] for s in per_shard),
            "stores": self.stores,
            "per_shard": per_shard,
        }
