"""Parallel experiment execution with caching, timeouts and retries.

:class:`ParallelRunner` is the one execution engine behind the sweep
utilities, the figure functions and the CLI.  It fans independent
``(benchmark, scheme, kwargs)`` jobs out over a ``multiprocessing``
worker pool, consults the content-addressed result cache
(:mod:`repro.harness.cache`) before simulating anything, and guards
every job with a wall-clock timeout plus one retry — a crashed or hung
worker costs one job attempt, not the whole sweep.

Because every experiment is deterministic (seeded traces, seeded fault
injection), a parallel run returns results *bit-identical* to the serial
path regardless of worker scheduling; ``tests/test_harness_runner.py``
locks that equivalence.  With ``jobs=1`` everything runs in-process —
no fork, no pool — so coverage tools, profilers and ``pdb`` keep
working.
"""

from __future__ import annotations

import os
import signal
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.core.config import ICRConfig
from repro.harness.cache import ResultCache, UncacheableJobError, job_key
from repro.harness.experiment import SimulationResult, _run_spec
from repro.harness.spec import ExperimentSpec
from repro.workloads.generator import WorkloadProfile


@dataclass
class Job:
    """One :func:`run_experiment` invocation, ready to ship to a worker."""

    benchmark: Union[str, WorkloadProfile]
    scheme: Union[str, ICRConfig]
    kwargs: dict = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec: ExperimentSpec) -> "Job":
        """A job whose cache key is the spec's content hash."""
        return cls(spec.benchmark, spec.scheme, spec.run_kwargs())

    def spec(self) -> ExperimentSpec:
        """The :class:`ExperimentSpec` this job executes."""
        return ExperimentSpec.from_kwargs(
            self.benchmark, self.scheme, **self.kwargs
        )

    @property
    def label(self) -> str:
        bench = (
            self.benchmark if isinstance(self.benchmark, str) else self.benchmark.name
        )
        scheme = self.scheme if isinstance(self.scheme, str) else self.scheme.name
        return f"{bench}/{scheme}"

    def key(self) -> Optional[str]:
        """Cache key, or None when the job is uncacheable."""
        try:
            return job_key(self.benchmark, self.scheme, self.kwargs)
        except UncacheableJobError:
            return None


class JobTimeoutError(RuntimeError):
    """A job exceeded the runner's per-job wall-clock budget."""


class RunnerError(RuntimeError):
    """A job failed on both its first attempt and its retry."""

    def __init__(self, job: Job, detail: str):
        super().__init__(f"job {job.label} failed twice: {detail}")
        self.job = job
        self.detail = detail


@dataclass
class RunnerStats:
    """Aggregate counters for everything a runner executed."""

    jobs: int = 0
    completed: int = 0
    cache_hits: int = 0
    simulated: int = 0
    retries: int = 0
    failures: int = 0
    uncacheable: int = 0
    elapsed: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0

    @property
    def sims_per_sec(self) -> float:
        return self.simulated / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> str:
        """The one-line metrics report emitted after a batch."""
        return (
            f"[runner] {self.jobs} jobs · "
            f"{self.cache_hits} cache hits ({self.hit_rate * 100:.1f}%) · "
            f"{self.simulated} simulated · {self.retries} retries · "
            f"{self.elapsed:.2f}s · {self.sims_per_sec:.2f} sims/s"
        )


def _run_with_timeout(job: Job, timeout: Optional[float]) -> SimulationResult:
    """Execute *job*, bounded by an interval timer where the OS has one."""
    spec = job.spec()
    if not timeout or not hasattr(signal, "SIGALRM"):
        return _run_spec(spec)

    def _expired(signum, frame):
        raise JobTimeoutError(f"job {job.label} exceeded {timeout}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    # Re-arm the timer rather than firing once: if the first SIGALRM
    # lands while the interpreter is inside a GC callback (or any other
    # frame that swallows exceptions raised by signal handlers), a
    # one-shot alarm is silently lost and the job runs unbounded.  With
    # a repeat interval the next alarm fires from a normal frame and
    # the timeout still lands.
    signal.setitimer(signal.ITIMER_REAL, timeout, min(timeout, 0.05))
    try:
        return _run_spec(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _worker(payload: tuple[Job, Optional[float]]) -> tuple[str, object]:
    """Pool entry point: never raises, always returns a tagged outcome."""
    job, timeout = payload
    try:
        return "ok", _run_with_timeout(job, timeout)
    except JobTimeoutError as exc:
        return "timeout", str(exc)
    except Exception:
        return "error", traceback.format_exc()


class ParallelRunner:
    """Cache-aware batch executor for experiment jobs.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` means ``os.cpu_count()``.  With
        1 everything runs in the calling process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable persistence.
        An in-memory memo is always kept, so repeated identical jobs
        within one runner never re-simulate even without a disk cache.
    timeout:
        Per-job wall-clock budget in seconds (``None`` = unbounded).
    retries:
        Extra attempts after a crash or timeout (default 1).  Retries
        run *in the parent process*, so a poisoned worker pool cannot
        take the retry down with it.
    progress:
        When true, a compact progress line is written to *stream*
        (default ``sys.stderr``) as jobs complete.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: bool = False,
        stream=None,
    ):
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, retries)
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        self.stats = RunnerStats()
        self._memo: dict[str, SimulationResult] = {}

    # -- single-job path (also the figures execution context) ------------

    def run_one(self, benchmark, scheme=None, **kwargs) -> SimulationResult:
        """Run one experiment in-process, through memo and disk cache.

        Accepts either an :class:`ExperimentSpec` as the sole argument
        or the legacy ``(benchmark, scheme, **kwargs)`` form.
        """
        if isinstance(benchmark, ExperimentSpec):
            if scheme is not None or kwargs:
                raise TypeError("run_one(spec) takes no further arguments")
            job = Job.from_spec(benchmark)
        else:
            job = Job(benchmark, scheme, kwargs)
        self.stats.jobs += 1
        started = time.monotonic()
        try:
            key = job.key()
            if key is None:
                self.stats.uncacheable += 1
            result = self._lookup(key)
            if result is None:
                result = self._execute_with_retry(job, key)
        finally:
            self.stats.elapsed += time.monotonic() - started
        self.stats.completed += 1
        return result

    # -- batch path -------------------------------------------------------

    def run(
        self, jobs: Sequence[Job], *, on_error: str = "raise"
    ) -> list[SimulationResult]:
        """Run a batch of jobs, returning results in input order.

        *on_error* controls what happens when a job fails its attempt
        *and* its retries: ``"raise"`` (default) propagates the
        :class:`RunnerError`; ``"return"`` places the error object in
        the result list at the job's position and keeps going — the
        campaign engine uses this so one pathological trial degrades a
        cell instead of aborting the whole campaign.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"on_error must be 'raise' or 'return', got {on_error!r}")
        jobs = list(jobs)
        self.stats.jobs += len(jobs)
        started = time.monotonic()
        results: list[Optional[SimulationResult]] = [None] * len(jobs)
        pending: list[tuple[int, Job, Optional[str]]] = []
        scheduled: set[str] = set()
        duplicates: list[tuple[int, str]] = []
        failed: dict[str, RunnerError] = {}
        try:
            for index, job in enumerate(jobs):
                key = job.key()
                cached = self._lookup(key)
                if cached is not None:
                    results[index] = cached
                    self.stats.completed += 1
                    self._tick()
                elif key is not None and key in scheduled:
                    # Identical job already in this batch: simulate once,
                    # fill the duplicate from the memo afterwards.
                    duplicates.append((index, key))
                else:
                    if key is None:
                        self.stats.uncacheable += 1
                    else:
                        scheduled.add(key)
                    pending.append((index, job, key))

            if pending:
                if self.jobs <= 1 or len(pending) == 1:
                    for index, job, key in pending:
                        try:
                            results[index] = self._execute_with_retry(job, key)
                        except RunnerError as error:
                            if on_error == "raise":
                                raise
                            results[index] = error
                            if key is not None:
                                failed[key] = error
                        self.stats.completed += 1
                        self._tick()
                else:
                    self._run_pool(pending, results, on_error, failed)
            for index, key in duplicates:
                hit = self._memo.get(key)
                if hit is not None:
                    results[index] = hit
                    self.stats.cache_hits += 1
                else:
                    # The job this duplicated failed (on_error="return").
                    results[index] = failed[key]
                self.stats.completed += 1
                self._tick()
        finally:
            self.stats.elapsed += time.monotonic() - started
            self._finish_progress()
        return results  # type: ignore[return-value]

    def run_grid(
        self,
        benchmarks: Sequence[Union[str, WorkloadProfile]],
        schemes: Sequence[Union[str, ICRConfig]],
        **kwargs,
    ) -> dict[tuple[str, str], SimulationResult]:
        """Convenience: the full benchmark × scheme product, keyed by label."""
        grid = [Job(b, s, dict(kwargs)) for b in benchmarks for s in schemes]
        results = self.run(grid)
        return {
            (r.benchmark, r.scheme): r for r in results
        }

    # -- internals --------------------------------------------------------

    def _lookup(self, key: Optional[str]) -> Optional[SimulationResult]:
        if key is None:
            return None
        hit = self._memo.get(key)
        if hit is None and self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self._memo[key] = hit
        if hit is not None:
            self.stats.cache_hits += 1
        return hit

    def _store(self, key: Optional[str], result: SimulationResult) -> None:
        if key is not None:
            self._memo[key] = result
            if self.cache is not None:
                self.cache.put(key, result)

    def _execute_with_retry(self, job: Job, key: Optional[str]) -> SimulationResult:
        """In-process execution with the same retry budget as the pool."""
        attempts = 1 + self.retries
        last_error = "unknown"
        for attempt in range(attempts):
            if attempt:
                self.stats.retries += 1
            try:
                result = _run_with_timeout(job, self.timeout)
            except Exception:
                last_error = traceback.format_exc()
                continue
            self.stats.simulated += 1
            self._store(key, result)
            return result
        self.stats.failures += 1
        raise RunnerError(job, last_error)

    def _run_pool(
        self,
        pending: list[tuple[int, Job, Optional[str]]],
        results: list[Optional[SimulationResult]],
        on_error: str = "raise",
        failed: Optional[dict[str, "RunnerError"]] = None,
    ) -> None:
        workers = min(self.jobs, len(pending))
        needs_retry: list[tuple[int, Job, Optional[str], str]] = []
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_worker, (job, self.timeout)): (index, job, key)
                    for index, job, key in pending
                }
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, job, key = futures[future]
                        try:
                            status, payload = future.result()
                        except Exception as exc:  # worker died, pool broken, ...
                            status, payload = "error", repr(exc)
                        if status == "ok":
                            self.stats.simulated += 1
                            self.stats.completed += 1
                            self._store(key, payload)
                            results[index] = payload
                            self._tick()
                        else:
                            needs_retry.append((index, job, key, str(payload)))
        except Exception as exc:
            # The pool itself failed (fork bomb limits, broken executor
            # mid-shutdown, ...): salvage every unfinished job in-process.
            needs_retry.extend(
                (index, job, key, repr(exc))
                for index, job, key in pending
                if results[index] is None
                and not any(index == i for i, *_ in needs_retry)
            )
        for index, job, key, error in needs_retry:
            self.stats.retries += 1
            try:
                result = _run_with_timeout(job, self.timeout)
            except Exception:
                self.stats.failures += 1
                runner_error = RunnerError(
                    job, f"pool attempt: {error}\nretry: {traceback.format_exc()}"
                )
                if on_error == "raise":
                    raise runner_error from None
                results[index] = runner_error
                if failed is not None and key is not None:
                    failed[key] = runner_error
                self.stats.completed += 1
                self._tick()
                continue
            self.stats.simulated += 1
            self.stats.completed += 1
            self._store(key, result)
            results[index] = result
            self._tick()

    # -- progress ---------------------------------------------------------

    def _tick(self) -> None:
        if not self.progress:
            return
        s = self.stats
        line = (
            f"\r[runner] {s.completed}/{s.jobs} done · "
            f"{s.cache_hits} cache hits · {s.simulated} simulated"
        )
        print(line, end="", file=self.stream, flush=True)

    def _finish_progress(self) -> None:
        if self.progress:
            print(file=self.stream)
