"""Parallel experiment execution with caching, timeouts and retries.

:class:`ParallelRunner` is the one execution engine behind the sweep
utilities, the figure functions and the CLI.  It fans independent
``(benchmark, scheme, kwargs)`` jobs out over a ``multiprocessing``
worker pool, consults the content-addressed result cache
(:mod:`repro.harness.cache`) before simulating anything, and guards
every job with a wall-clock timeout plus one retry — a crashed or hung
worker costs one job attempt, not the whole sweep.

Because every experiment is deterministic (seeded traces, seeded fault
injection), a parallel run returns results *bit-identical* to the serial
path regardless of worker scheduling; ``tests/test_harness_runner.py``
locks that equivalence.  With ``jobs=1`` everything runs in-process —
no fork, no pool — so coverage tools, profilers and ``pdb`` keep
working.
"""

from __future__ import annotations

import os
import signal
import sys
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from repro import recovery
from repro.chaos import runtime as _chaos
from repro.core.config import ICRConfig
from repro.harness.cache import ResultCache, UncacheableJobError, job_key
from repro.harness.experiment import SimulationResult, _run_spec
from repro.harness.spec import ExperimentSpec
from repro.workloads.generator import WorkloadProfile


@dataclass
class Job:
    """One :func:`run_experiment` invocation, ready to ship to a worker."""

    benchmark: Union[str, WorkloadProfile]
    scheme: Union[str, ICRConfig]
    kwargs: dict = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec: ExperimentSpec) -> "Job":
        """A job whose cache key is the spec's content hash."""
        return cls(spec.benchmark, spec.scheme, spec.run_kwargs())

    def spec(self) -> ExperimentSpec:
        """The :class:`ExperimentSpec` this job executes."""
        return ExperimentSpec.from_kwargs(
            self.benchmark, self.scheme, **self.kwargs
        )

    @property
    def label(self) -> str:
        bench = (
            self.benchmark if isinstance(self.benchmark, str) else self.benchmark.name
        )
        scheme = self.scheme if isinstance(self.scheme, str) else self.scheme.name
        return f"{bench}/{scheme}"

    def key(self) -> Optional[str]:
        """Cache key, or None when the job is uncacheable."""
        try:
            return job_key(self.benchmark, self.scheme, self.kwargs)
        except UncacheableJobError:
            return None


class JobTimeoutError(RuntimeError):
    """A job exceeded the runner's per-job wall-clock budget."""


class RunnerError(RuntimeError):
    """A job failed on both its first attempt and its retry."""

    def __init__(self, job: Job, detail: str):
        super().__init__(f"job {job.label} failed twice: {detail}")
        self.job = job
        self.detail = detail


@dataclass
class RunnerStats:
    """Aggregate counters for everything a runner executed."""

    jobs: int = 0
    completed: int = 0
    cache_hits: int = 0
    simulated: int = 0
    retries: int = 0
    failures: int = 0
    uncacheable: int = 0
    cancelled: int = 0
    elapsed: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0

    @property
    def sims_per_sec(self) -> float:
        return self.simulated / self.elapsed if self.elapsed > 0 else 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-data counters (the service's telemetry payload)."""
        return {
            "jobs": self.jobs,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
            "retries": self.retries,
            "failures": self.failures,
            "uncacheable": self.uncacheable,
            "cancelled": self.cancelled,
            "elapsed": self.elapsed,
            "hit_rate": self.hit_rate,
            "sims_per_sec": self.sims_per_sec,
        }

    def summary(self) -> str:
        """The one-line metrics report emitted after a batch."""
        cancelled = f"{self.cancelled} cancelled · " if self.cancelled else ""
        return (
            f"[runner] {self.jobs} jobs · "
            f"{self.cache_hits} cache hits ({self.hit_rate * 100:.1f}%) · "
            f"{self.simulated} simulated · {self.retries} retries · "
            f"{cancelled}"
            f"{self.elapsed:.2f}s · {self.sims_per_sec:.2f} sims/s"
        )


#: Frames a timeout must not raise from: an exception raised inside a
#: GC callback is "unraisable" (it never reaches the caller, and pytest
#: escalates it to a warning), and one raised inside import/warning
#: machinery propagates out of whatever innocent allocation triggered
#: it, skipping the runner's except-and-retry entirely.  The interval
#: re-arm means declining here only defers the raise to the next alarm,
#: which lands in an ordinary frame.
_FRAGILE_FRAME_MARKERS = (
    "importlib",
    "warnings.py",
    "tracemalloc.py",
    "linecache.py",
    "unraisableexception.py",
)


def _frame_safe_to_raise(frame) -> bool:
    depth = 0
    while frame is not None and depth < 16:
        code = frame.f_code
        if code.co_name == "gc_callback":
            return False
        filename = code.co_filename
        if any(marker in filename for marker in _FRAGILE_FRAME_MARKERS):
            return False
        frame = frame.f_back
        depth += 1
    return True


def _inject_trial_fault(job: Job, last_attempt: bool = False) -> None:
    """Fire the chaos fault scheduled for this trial, if any.

    Sits at the top of every execution attempt — pool worker, in-parent
    retry, in-process path — keyed by the job's content hash, so the
    fault fires on exactly one attempt anywhere in the process tree and
    the retry of the *same* spec sails through.  That placement is what
    keeps chaos beneath the runner's retry boundary: the campaign never
    sees the fault, so the report stays byte-identical.

    With *last_attempt* nothing fires: the plan schedules *survivable*
    faults by contract, and an execution with no retry budget left has
    no way to survive one.  This matters for collateral damage — when a
    killed worker breaks the pool, every other in-flight job falls back
    to its single in-parent retry, and a fresh fault firing there would
    escalate into a permanent trial failure the reference run never saw.
    """
    if last_attempt or _chaos.active() is None:
        return
    fault = _chaos.check_trial(job.key() or job.label)
    if fault == "timeout":
        raise JobTimeoutError(f"chaos: job {job.label} forced timeout")
    if fault == "kill":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            # A real worker death: the pool observes a vanished process
            # (BrokenProcessPool), exactly like SIGKILL from outside.
            os._exit(137)
        raise _chaos.ChaosWorkerDeath(f"chaos: worker killed for {job.label}")


def _run_with_timeout(
    job: Job, timeout: Optional[float], last_attempt: bool = False
) -> SimulationResult:
    """Execute *job*, bounded by an interval timer where the OS has one."""
    _inject_trial_fault(job, last_attempt)
    spec = job.spec()
    if not timeout or not hasattr(signal, "SIGALRM"):
        return _run_spec(spec)

    # The armed flag closes the pending-delivery race: a signal that
    # arrived at the C level just before the disarm below can still be
    # delivered to the Python handler a few bytecodes *after* the try
    # block has exited, where a raise would escape the caller's
    # except-and-retry — so the handler only raises while armed.
    armed = True

    def _expired(signum, frame):
        if armed and _frame_safe_to_raise(frame):
            raise JobTimeoutError(f"job {job.label} exceeded {timeout}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    # Re-arm the timer rather than firing once: if the first SIGALRM
    # lands while the interpreter is inside a GC callback (or any other
    # frame that swallows exceptions raised by signal handlers), a
    # one-shot alarm is silently lost and the job runs unbounded.  With
    # a repeat interval the next alarm fires from a normal frame and
    # the timeout still lands.
    signal.setitimer(signal.ITIMER_REAL, timeout, min(timeout, 0.05))
    try:
        return _run_spec(spec)
    finally:
        armed = False
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _worker(payload: tuple[Job, Optional[float]]) -> tuple[str, object]:
    """Pool entry point: never raises, always returns a tagged outcome."""
    job, timeout = payload
    try:
        return "ok", _run_with_timeout(job, timeout)
    except JobTimeoutError as exc:
        return "timeout", str(exc)
    except Exception:
        return "error", traceback.format_exc()


class ParallelRunner:
    """Cache-aware batch executor for experiment jobs.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` means ``os.cpu_count()``.  With
        1 everything runs in the calling process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable persistence.
        An in-memory memo is always kept, so repeated identical jobs
        within one runner never re-simulate even without a disk cache.
    timeout:
        Per-job wall-clock budget in seconds (``None`` = unbounded).
    retries:
        Extra attempts after a crash or timeout (default 1).  Retries
        run *in the parent process*, so a poisoned worker pool cannot
        take the retry down with it.
    progress:
        When true, a compact progress line is written to *stream*
        (default ``sys.stderr``) as jobs complete.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: bool = False,
        stream=None,
    ):
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, retries)
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        self.stats = RunnerStats()
        self._memo: dict[str, SimulationResult] = {}

    # -- single-job path (also the figures execution context) ------------

    def run_one(self, benchmark, scheme=None, **kwargs) -> SimulationResult:
        """Run one experiment in-process, through memo and disk cache.

        Accepts either an :class:`ExperimentSpec` as the sole argument
        or the legacy ``(benchmark, scheme, **kwargs)`` form.
        """
        if isinstance(benchmark, ExperimentSpec):
            if scheme is not None or kwargs:
                raise TypeError("run_one(spec) takes no further arguments")
            job = Job.from_spec(benchmark)
        else:
            job = Job(benchmark, scheme, kwargs)
        self.stats.jobs += 1
        started = time.monotonic()
        try:
            key = job.key()
            if key is None:
                self.stats.uncacheable += 1
            result = self._lookup(key)
            if result is None:
                result = self._execute_with_retry(job, key)
        finally:
            self.stats.elapsed += time.monotonic() - started
        self.stats.completed += 1
        return result

    # -- batch path -------------------------------------------------------

    def run(
        self, jobs: Sequence[Job], *, on_error: str = "raise"
    ) -> list[SimulationResult]:
        """Run a batch of jobs, returning results in input order.

        *on_error* controls what happens when a job fails its attempt
        *and* its retries: ``"raise"`` (default) propagates the
        :class:`RunnerError`; ``"return"`` places the error object in
        the result list at the job's position and keeps going — the
        campaign engine uses this so one pathological trial degrades a
        cell instead of aborting the whole campaign.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"on_error must be 'raise' or 'return', got {on_error!r}")
        jobs = list(jobs)
        self.stats.jobs += len(jobs)
        started = time.monotonic()
        results: list[Optional[SimulationResult]] = [None] * len(jobs)
        pending: list[tuple[int, Job, Optional[str]]] = []
        scheduled: set[str] = set()
        duplicates: list[tuple[int, str]] = []
        failed: dict[str, RunnerError] = {}
        try:
            for index, job in enumerate(jobs):
                key = job.key()
                cached = self._lookup(key)
                if cached is not None:
                    results[index] = cached
                    self.stats.completed += 1
                    self._tick()
                elif key is not None and key in scheduled:
                    # Identical job already in this batch: simulate once,
                    # fill the duplicate from the memo afterwards.
                    duplicates.append((index, key))
                else:
                    if key is None:
                        self.stats.uncacheable += 1
                    else:
                        scheduled.add(key)
                    pending.append((index, job, key))

            if pending:
                if self.jobs <= 1 or len(pending) == 1:
                    for index, job, key in pending:
                        try:
                            results[index] = self._execute_with_retry(job, key)
                        except RunnerError as error:
                            if on_error == "raise":
                                raise
                            results[index] = error
                            if key is not None:
                                failed[key] = error
                        self.stats.completed += 1
                        self._tick()
                else:
                    self._run_pool(pending, results, on_error, failed)
            for index, key in duplicates:
                hit = self._memo.get(key)
                if hit is not None:
                    results[index] = hit
                    self.stats.cache_hits += 1
                else:
                    # The job this duplicated failed (on_error="return").
                    results[index] = failed[key]
                self.stats.completed += 1
                self._tick()
        finally:
            self.stats.elapsed += time.monotonic() - started
            self._finish_progress()
        return results  # type: ignore[return-value]

    def run_grid(
        self,
        benchmarks: Sequence[Union[str, WorkloadProfile]],
        schemes: Sequence[Union[str, ICRConfig]],
        **kwargs,
    ) -> dict[tuple[str, str], SimulationResult]:
        """Convenience: the full benchmark × scheme product, keyed by label."""
        grid = [Job(b, s, dict(kwargs)) for b in benchmarks for s in schemes]
        results = self.run(grid)
        return {
            (r.benchmark, r.scheme): r for r in results
        }

    # -- internals --------------------------------------------------------

    def _lookup(self, key: Optional[str]) -> Optional[SimulationResult]:
        if key is None:
            return None
        hit = self._memo.get(key)
        if hit is None and self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self._memo[key] = hit
        if hit is not None:
            self.stats.cache_hits += 1
        return hit

    def _store(self, key: Optional[str], result: SimulationResult) -> None:
        if key is not None:
            self._memo[key] = result
            if self.cache is not None:
                self.cache.put(key, result)

    def _execute_with_retry(self, job: Job, key: Optional[str]) -> SimulationResult:
        """In-process execution with the same retry budget as the pool."""
        attempts = 1 + self.retries
        last_error = "unknown"
        for attempt in range(attempts):
            if attempt:
                self.stats.retries += 1
            try:
                result = _run_with_timeout(
                    job, self.timeout, attempt == attempts - 1
                )
            except Exception:
                last_error = traceback.format_exc()
                continue
            self.stats.simulated += 1
            self._store(key, result)
            return result
        self.stats.failures += 1
        raise RunnerError(job, last_error)

    def _run_pool(
        self,
        pending: list[tuple[int, Job, Optional[str]]],
        results: list[Optional[SimulationResult]],
        on_error: str = "raise",
        failed: Optional[dict[str, "RunnerError"]] = None,
    ) -> None:
        workers = min(self.jobs, len(pending))
        needs_retry: list[tuple[int, Job, Optional[str], str]] = []
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_worker, (job, self.timeout)): (index, job, key)
                    for index, job, key in pending
                }
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, job, key = futures[future]
                        try:
                            status, payload = future.result()
                        except Exception as exc:  # worker died, pool broken, ...
                            status, payload = "error", repr(exc)
                        if status == "ok":
                            self.stats.simulated += 1
                            self.stats.completed += 1
                            self._store(key, payload)
                            results[index] = payload
                            self._tick()
                        else:
                            needs_retry.append((index, job, key, str(payload)))
        except Exception as exc:
            # The pool itself failed (fork bomb limits, broken executor
            # mid-shutdown, ...): salvage every unfinished job in-process.
            needs_retry.extend(
                (index, job, key, repr(exc))
                for index, job, key in pending
                if results[index] is None
                and not any(index == i for i, *_ in needs_retry)
            )
        for index, job, key, error in needs_retry:
            self.stats.retries += 1
            try:
                result = _run_with_timeout(job, self.timeout, True)
            except Exception:
                self.stats.failures += 1
                runner_error = RunnerError(
                    job, f"pool attempt: {error}\nretry: {traceback.format_exc()}"
                )
                if on_error == "raise":
                    raise runner_error from None
                results[index] = runner_error
                if failed is not None and key is not None:
                    failed[key] = runner_error
                self.stats.completed += 1
                self._tick()
                continue
            self.stats.simulated += 1
            self.stats.completed += 1
            self._store(key, result)
            results[index] = result
            self._tick()

    # -- incremental path (the work-stealing scheduler's substrate) -------

    def session(self, *, workers: Optional[int] = None) -> "RunnerSession":
        """An incremental submit/cancel/as-completed execution session.

        Where :meth:`run` is a batch barrier (every job submitted up
        front, results returned together), a session keeps one worker
        pool alive and lets the caller feed it continuously: ``submit``
        returns immediately, ``next_completed`` harvests results one at
        a time in completion order, and ``cancel`` revokes work that has
        not started.  The campaign scheduler
        (:mod:`repro.harness.scheduler`) is built on this API.
        """
        return RunnerSession(self, workers=workers)

    # -- progress ---------------------------------------------------------

    def _tick(self) -> None:
        if not self.progress:
            return
        s = self.stats
        line = (
            f"\r[runner] {s.completed}/{s.jobs} done · "
            f"{s.cache_hits} cache hits · {s.simulated} simulated"
        )
        print(line, end="", file=self.stream, flush=True)

    def _finish_progress(self) -> None:
        if self.progress:
            print(file=self.stream)


class TrialHandle:
    """One submitted job inside a :class:`RunnerSession`.

    ``result`` is a :class:`SimulationResult` on success or a
    :class:`RunnerError` when the job failed its pool attempt *and* the
    in-parent retry (mirroring ``run(on_error="return")``); it is only
    meaningful once ``done`` is true.  ``tag`` is an opaque caller
    payload carried through untouched (the scheduler stores its
    (cell, index, attempt) bookkeeping there).
    """

    __slots__ = (
        "job", "key", "tag", "done", "result",
        "cached", "cancelled", "_future",
    )

    def __init__(self, job: Job, key: Optional[str], tag: Any = None):
        self.job = job
        self.key = key
        self.tag = tag
        self.done = False
        self.result: Union[SimulationResult, RunnerError, None] = None
        self.cached = False
        self.cancelled = False
        self._future = None

    @property
    def ok(self) -> bool:
        return self.done and not isinstance(self.result, RunnerError)


class RunnerSession:
    """Incremental executor over a persistent worker pool.

    With ``workers > 1`` jobs go to one long-lived
    :class:`ProcessPoolExecutor` (created lazily on the first
    uncached submit); with ``workers <= 1`` submitted jobs queue
    in-process and execute lazily inside :meth:`next_completed`, which
    keeps single-worker sessions deterministic *and* cancellable.

    The session shares the owning runner's memo, result cache, timeout,
    retry budget and stats; a cache hit at submit time completes the
    handle immediately (it is still delivered through
    :meth:`next_completed`, in submit order, ahead of simulated work).
    """

    def __init__(self, runner: ParallelRunner, *, workers: Optional[int] = None):
        self.runner = runner
        self.workers = workers if workers and workers > 0 else runner.jobs
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: dict = {}  # Future -> TrialHandle
        self._queue: deque[TrialHandle] = deque()  # in-process pending
        self._ready: deque[TrialHandle] = deque()  # completed, unharvested
        self._started = time.monotonic()
        self._closed = False

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "RunnerSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down, revoking anything still queued."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.runner.stats.elapsed += time.monotonic() - self._started

    # -- submission -------------------------------------------------------

    def submit(self, job: Job, tag: Any = None) -> TrialHandle:
        """Queue *job* for execution; returns immediately.

        A memo/disk-cache hit completes the handle on the spot (``done``
        and ``cached`` both true) — it still flows through
        :meth:`next_completed` so callers can use one harvest loop.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        key = job.key()
        handle = TrialHandle(job, key, tag)
        self.runner.stats.jobs += 1
        cached = self.runner._lookup(key)
        if cached is not None:
            handle.result = cached
            handle.done = True
            handle.cached = True
            self.runner.stats.completed += 1
            self._ready.append(handle)
            return handle
        if key is None:
            self.runner.stats.uncacheable += 1
        if self.workers <= 1:
            self._queue.append(handle)
        else:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            try:
                future = self._pool.submit(_worker, (job, self.runner.timeout))
            except BrokenExecutor:
                # A worker died hard enough to poison the executor (the
                # already-submitted futures surface their own errors
                # through next_completed's in-parent retry).  Rebuild
                # once and resubmit; a second failure is a real
                # environment problem and propagates.
                self._rebuild_pool()
                future = self._pool.submit(_worker, (job, self.runner.timeout))
            handle._future = future
            self._futures[future] = handle
        return handle

    def _rebuild_pool(self) -> None:
        """Replace a broken executor with a fresh one (session keeps going)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        recovery.count("pool_rebuilds")
        recovery.warn(
            "runner", "worker pool broke (worker died); rebuilt the pool"
        )

    def submit_spec(self, spec: ExperimentSpec, tag: Any = None) -> TrialHandle:
        """:meth:`submit` for an :class:`ExperimentSpec`.

        The convenience entry point of callers that live entirely in
        spec vocabulary — the simulation service feeds its job queue
        through here, one long-lived session per server process, from a
        dedicated execution thread (the session API is not thread-safe;
        confine each session to one thread and hand results off through
        your own queue).
        """
        return self.submit(Job.from_spec(spec), tag)

    def cancel(self, handle: TrialHandle) -> bool:
        """Revoke *handle* if its job has not started; True on success.

        A running or finished job cannot be revoked — the caller is free
        to ignore its result instead (results are side-effect-free
        beyond the shared cache, which only makes future lookups
        cheaper).
        """
        if handle.done or handle.cancelled:
            return False
        if handle._future is not None:
            if not handle._future.cancel():
                return False
            del self._futures[handle._future]
            handle._future = None
        else:
            try:
                self._queue.remove(handle)
            except ValueError:
                return False
        handle.cancelled = True
        handle.done = True
        self.runner.stats.cancelled += 1
        return True

    def outstanding(self) -> int:
        """Submitted handles not yet harvested (queued, running or ready)."""
        return len(self._queue) + len(self._futures) + len(self._ready)

    def in_flight(self) -> int:
        """Submitted handles not yet finished (queued or running)."""
        return len(self._queue) + len(self._futures)

    # -- harvesting -------------------------------------------------------

    def next_completed(
        self, timeout: Optional[float] = None
    ) -> Optional[TrialHandle]:
        """The next finished handle, or None on timeout / empty session.

        Completion order: cache hits first (in submit order), then
        simulated jobs as their workers finish.  Failed jobs get one
        in-parent retry before surfacing a :class:`RunnerError` as the
        handle's result — exactly the batch path's degradation
        contract.
        """
        if self._ready:
            return self._ready.popleft()
        if self._queue:
            handle = self._queue.popleft()
            return self._finish(handle, *self._execute(handle.job, handle.key))
        if not self._futures:
            return None
        done, _ = wait(
            set(self._futures), timeout=timeout, return_when=FIRST_COMPLETED
        )
        if not done:
            return None
        for future in done:
            handle = self._futures.pop(future)
            handle._future = None
            try:
                status, payload = future.result()
            except Exception as exc:  # worker died, pool broken, ...
                status, payload = "error", repr(exc)
            if status == "ok":
                self.runner.stats.simulated += 1
                self.runner._store(handle.key, payload)
                self._ready.append(self._finish(handle, payload, None))
            else:
                # In-parent retry, mirroring the batch pool path: one
                # pool attempt has already failed, so this burns the
                # retry budget directly in the calling process.
                self.runner.stats.retries += 1
                try:
                    result = _run_with_timeout(
                        handle.job, self.runner.timeout, True
                    )
                except Exception:
                    self.runner.stats.failures += 1
                    error = RunnerError(
                        handle.job,
                        f"pool attempt: {payload}\n"
                        f"retry: {traceback.format_exc()}",
                    )
                    self._ready.append(self._finish(handle, None, error))
                else:
                    self.runner.stats.simulated += 1
                    self.runner._store(handle.key, result)
                    self._ready.append(self._finish(handle, result, None))
        return self._ready.popleft()

    # -- internals --------------------------------------------------------

    def _execute(self, job: Job, key: Optional[str]):
        """In-process execution with the runner's full retry budget."""
        try:
            return self.runner._execute_with_retry(job, key), None
        except RunnerError as error:
            return None, error

    def _finish(
        self,
        handle: TrialHandle,
        result: Optional[SimulationResult],
        error: Optional[RunnerError],
    ) -> TrialHandle:
        handle.result = error if error is not None else result
        handle.done = True
        self.runner.stats.completed += 1
        return handle
