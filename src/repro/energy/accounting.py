"""Dynamic-energy accounting over a finished simulation.

"Energy is the total dynamic energy incurred because of accesses to dL1
and L2 caches" (Section 4.1).  The accounting prices the raw activity
counters gathered by the caches:

* every dL1 array read/write — including the extra writes ICR performs to
  install and update replicas, and the extra reads the ``PP`` schemes
  spend comparing replicas in parallel;
* every parity / ECC computation, as a configurable fraction of the L1
  access energy (the paper uses parity:ECC = 15%:30% and 10%:30%,
  after Bertozzi et al.);
* every L2 access — fills, writebacks, and (for the write-through
  comparison of Section 5.8) the store traffic reaching L2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import HierarchyStats
from repro.energy.cacti import access_energy


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (nJ) and check-cost fractions."""

    e_l1_read: float
    e_l1_write: float
    e_l2_access: float
    parity_fraction: float = 0.15  # of one L1 access energy
    ecc_fraction: float = 0.30
    # A failed replica-placement probe costs a tag lookup only.
    tag_probe_fraction: float = 0.08
    # Combined L1+L2 leakage power in nW (0 = dynamic-only accounting,
    # matching the paper's Section 4.1 metric).  At 1 GHz, nW -> nJ/cycle
    # is a division by 1e9.
    leakage_nw: float = 0.0
    clock_hz: float = 1e9

    @classmethod
    def from_geometries(
        cls,
        l1_geometry,
        l2_geometry,
        parity_fraction: float = 0.15,
        ecc_fraction: float = 0.30,
    ) -> "EnergyParams":
        l1 = access_energy(l1_geometry)
        l2 = access_energy(l2_geometry)
        return cls(
            e_l1_read=l1.read_nj,
            e_l1_write=l1.write_nj,
            e_l2_access=(l2.read_nj + l2.write_nj) / 2.0,
            parity_fraction=parity_fraction,
            ecc_fraction=ecc_fraction,
        )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Where the nanojoules went."""

    l1_array_nj: float
    l1_checks_nj: float
    l2_nj: float
    static_nj: float = 0.0

    @property
    def l1_nj(self) -> float:
        return self.l1_array_nj + self.l1_checks_nj

    @property
    def total_nj(self) -> float:
        return self.l1_nj + self.l2_nj + self.static_nj


def energy_of(
    stats: HierarchyStats, params: EnergyParams, cycles: int = 0
) -> EnergyBreakdown:
    """Price a finished run's activity counters.

    *cycles* is only needed when ``params.leakage_nw`` is nonzero: static
    energy accrues per cycle regardless of activity.
    """
    d = stats.l1d
    l1_array = (
        d.array_reads * params.e_l1_read
        + d.array_writes * params.e_l1_write
        + d.tag_probes * params.e_l1_read * params.tag_probe_fraction
    )
    check_unit = params.e_l1_read
    l1_checks = (
        (d.parity_checks + d.parity_generates) * params.parity_fraction * check_unit
        + (d.ecc_checks + d.ecc_generates) * params.ecc_fraction * check_unit
    )
    l2_events = (
        stats.l2.loads
        + stats.l2.stores
        + stats.l1d.load_errors_recovered_l2  # error refetches
    )
    l2 = l2_events * params.e_l2_access
    static = params.leakage_nw * cycles / params.clock_hz
    return EnergyBreakdown(
        l1_array_nj=l1_array, l1_checks_nj=l1_checks, l2_nj=l2, static_nj=static
    )
