"""CACTI-flavoured per-access dynamic-energy model.

The paper prices cache accesses with CACTI 3.0 at the technology node of
the day (~0.18 um).  CACTI itself is a large circuit-level tool; the
figures only need the *relative* energies — L2 access vs. L1 access, and
parity/ECC computation as a fraction of an L1 access — so this module
implements a compact analytic model with the same structure as CACTI's
energy equation:

    E_access = E_decode + E_wordline + E_bitline + E_senseamp + E_tag

with each term scaling with the array geometry (rows, columns, ways).  The
absolute scale is anchored so a 16KB 4-way 64B-block array costs about
0.40 nJ per read access, in the range CACTI 3.0 reports for 0.18 um; a
256KB 4-way array then lands near 2 nJ, giving the ~5x L1:L2 ratio the
Section 5.8 energy comparison turns on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.set_assoc import CacheGeometry

# Technology anchor constants (energy in nJ), chosen so the 16KB/4-way/64B
# reference array costs ~0.4 nJ/read at "0.18 um" and a 256KB array lands
# near 4x that — the regime CACTI 3.0 reports.
_E_DECODE_PER_BIT = 0.004  # per decoded address bit
_E_WORDLINE_PER_KBIT = 0.010  # per kilobit of selected row
_E_BITLINE_PER_MCELL_06 = 0.90  # per (megacell ** 0.6) of precharged array
_BITLINE_EXPONENT = 0.6  # sub-banking makes energy sublinear in size
_E_SENSEAMP_PER_BIT = 0.0001  # per output (block) bit sensed
_E_TAG_PER_WAY = 0.012  # per way of tag match
_WRITE_FACTOR = 1.15  # writes drive full-swing bitlines


@dataclass(frozen=True)
class EnergyEstimate:
    """Per-access dynamic energy (nanojoules) for one array."""

    read_nj: float
    write_nj: float
    decode_nj: float
    wordline_nj: float
    bitline_nj: float
    senseamp_nj: float
    tag_nj: float


def access_energy(geometry: CacheGeometry) -> EnergyEstimate:
    """Estimate per-access dynamic energy for a cache array."""
    rows = geometry.n_sets
    block_bits = geometry.block_size * 8
    row_bits = block_bits * geometry.associativity  # all ways read in parallel

    decode = _E_DECODE_PER_BIT * max(1, int(math.log2(rows)))
    wordline = _E_WORDLINE_PER_KBIT * row_bits / 1024.0
    megacells = rows * row_bits / (1024.0 * 1024.0)
    bitline = _E_BITLINE_PER_MCELL_06 * megacells**_BITLINE_EXPONENT
    senseamp = _E_SENSEAMP_PER_BIT * block_bits
    tag = _E_TAG_PER_WAY * geometry.associativity

    read = decode + wordline + bitline + senseamp + tag
    return EnergyEstimate(
        read_nj=read,
        write_nj=read * _WRITE_FACTOR,
        decode_nj=decode,
        wordline_nj=wordline,
        bitline_nj=bitline,
        senseamp_nj=senseamp,
        tag_nj=tag,
    )


def l1_l2_energies(
    l1_geometry: CacheGeometry, l2_geometry: CacheGeometry
) -> tuple[float, float]:
    """Convenience: mean (read/write) per-access energies for L1 and L2."""
    l1 = access_energy(l1_geometry)
    l2 = access_energy(l2_geometry)
    return (
        (l1.read_nj + l1.write_nj) / 2.0,
        (l2.read_nj + l2.write_nj) / 2.0,
    )
