"""Storage-overhead and leakage model: the paper's area arithmetic.

Section 1 prices the protection options by storage: byte parity adds one
bit per 8 ("12.5% extra overhead"), and an 8-bit SEC-DED per 64-bit word
costs the same 12.5%.  ICR's own additions are tiny: one replica/primary
bit per line (Section 3.1) and the 2-bit decay counter (Section 2,
"0.39% space overhead for a 64 byte line size").  The dedicated
alternatives — an R-Cache or a victim cache — add whole extra arrays,
with their own leakage.

This module computes those overheads exactly so the comparison benches
can report them, and provides a simple leakage-power model (leakage is
proportional to bit count, the first-order truth the cache-decay line of
work is built on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.set_assoc import CacheGeometry

#: Leakage per kilobit of SRAM, normalized units (nW/kbit).  Only ratios
#: between arrays matter for the comparisons.
LEAKAGE_NW_PER_KBIT = 25.0

#: Tag bits per line for a 32-bit address space (rough, size-dependent
#: terms ignored — identical across compared configurations).
TAG_BITS = 20


@dataclass(frozen=True)
class StorageBreakdown:
    """Bit census of one protected cache array."""

    data_bits: int
    tag_bits: int
    protection_bits: int  # parity or SEC-DED check bits
    icr_bits: int  # replica/primary flag + decay counters

    @property
    def total_bits(self) -> int:
        return self.data_bits + self.tag_bits + self.protection_bits + self.icr_bits

    @property
    def protection_overhead(self) -> float:
        """Check bits as a fraction of data bits (the paper's 12.5%)."""
        return self.protection_bits / self.data_bits

    @property
    def icr_overhead(self) -> float:
        """ICR metadata as a fraction of data bits (the paper's ~0.4%)."""
        return self.icr_bits / self.data_bits

    def leakage_nw(self) -> float:
        return LEAKAGE_NW_PER_KBIT * self.total_bits / 1024.0


def storage_breakdown(
    geometry: CacheGeometry,
    *,
    protected: bool = True,
    icr: bool = False,
) -> StorageBreakdown:
    """Bit census for an array of the given geometry.

    *protected* adds the 12.5% parity/SEC-DED check bits (both codes cost
    8 bits per 64 data bits); *icr* adds the per-line replica flag and the
    2-bit decay counter.
    """
    n_lines = geometry.n_sets * geometry.associativity
    data_bits = n_lines * geometry.block_size * 8
    protection_bits = data_bits // 8 if protected else 0
    icr_bits = n_lines * 3 if icr else 0  # 1 flag + 2 counter bits
    return StorageBreakdown(
        data_bits=data_bits,
        tag_bits=n_lines * TAG_BITS,
        protection_bits=protection_bits,
        icr_bits=icr_bits,
    )


@dataclass(frozen=True)
class ReliabilityAreaComparison:
    """Extra storage each reliability option adds over a plain parity dL1."""

    option: str
    extra_bits: int
    extra_leakage_nw: float
    extra_fraction_of_dl1: float


def compare_reliability_areas(
    dl1_geometry: CacheGeometry,
    *,
    rcache_bytes: int = 2 * 1024,
    victim_entries: int = 16,
) -> list[ReliabilityAreaComparison]:
    """Storage each option adds on top of a parity-protected dL1.

    * ICR — the 3 metadata bits per line (check bits are reused);
    * R-Cache — a dedicated duplicate array of *rcache_bytes*;
    * victim cache — a fully-associative array of *victim_entries* lines;
    * dual parity+ECC — the Section 6 strawman that "doubles the space
      needed to store such auxiliary information".
    """
    base = storage_breakdown(dl1_geometry, protected=True, icr=False)
    block = dl1_geometry.block_size

    def extra(option: str, bits: int) -> ReliabilityAreaComparison:
        return ReliabilityAreaComparison(
            option=option,
            extra_bits=bits,
            extra_leakage_nw=LEAKAGE_NW_PER_KBIT * bits / 1024.0,
            extra_fraction_of_dl1=bits / base.total_bits,
        )

    n_lines = dl1_geometry.n_sets * dl1_geometry.associativity
    rcache_lines = rcache_bytes // block
    rcache_bits = rcache_lines * (block * 8 + block + TAG_BITS)  # data+parity+tag
    victim_bits = victim_entries * (block * 8 + block + TAG_BITS + 1)  # + dirty
    return [
        extra("ICR (flag + decay counters)", n_lines * 3),
        extra(f"R-Cache {rcache_bytes}B", rcache_bits),
        extra(f"victim cache {victim_entries} lines", victim_bits),
        extra("dual parity+ECC", base.protection_bits),  # second check array
    ]
