"""Dynamic-energy substrate: CACTI-style array model + run accounting."""

from repro.energy.accounting import EnergyBreakdown, EnergyParams, energy_of
from repro.energy.area import (
    LEAKAGE_NW_PER_KBIT,
    ReliabilityAreaComparison,
    StorageBreakdown,
    compare_reliability_areas,
    storage_breakdown,
)
from repro.energy.cacti import EnergyEstimate, access_energy, l1_l2_energies

__all__ = [
    "LEAKAGE_NW_PER_KBIT",
    "ReliabilityAreaComparison",
    "StorageBreakdown",
    "compare_reliability_areas",
    "storage_breakdown",
    "EnergyBreakdown",
    "EnergyParams",
    "energy_of",
    "EnergyEstimate",
    "access_energy",
    "l1_l2_energies",
]
