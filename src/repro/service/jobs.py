"""The service's persistent job queue: crash-safe, resumable, one file per job.

Load leveling for the job server: every accepted submission becomes a
:class:`JobRecord` persisted under the queue directory *before* the
client hears back, so a server killed mid-burst loses nothing — on
restart, :meth:`PersistentJobQueue.load` returns every record, demoting
jobs that were ``running`` when the process died back to ``queued``
(their execution was interrupted; re-running is safe because trials are
deterministic and results are content-addressed).

Writes are atomic (temp file + ``os.replace``, the same discipline as
the result cache and campaign checkpoints), so a crash mid-write leaves
either the old record or the new one, never a torn file.  A corrupted
record is skipped on load rather than raised — one bad file cannot
brick the queue.

The job id is the spec's canonical content key (campaigns: the campaign
digest), which is exactly what makes the queue a dedup table: an
identical resubmission maps onto the existing record instead of a new
simulation.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro import recovery
from repro.chaos import runtime as _chaos

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States in which a job will not run again without a resubmission.
TERMINAL = (DONE, FAILED)

#: Version tag of the on-disk record format.
JOB_FORMAT = 1


@dataclass
class JobRecord:
    """One submitted job, mirrored between memory and disk.

    ``payload`` is the submission's wire form (``{"spec": ...}`` for
    experiments, ``{"campaign": ...}`` for campaigns) — everything
    needed to re-create the work after a restart.  ``report`` holds a
    finished campaign's report payload; experiment results are *not*
    stored here (they live in the content-addressed result cache under
    ``id``, which is the spec key).
    """

    id: str
    kind: str  # "experiment" | "campaign"
    payload: dict[str, Any]
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    report: Optional[dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": JOB_FORMAT,
            "id": self.id,
            "kind": self.kind,
            "payload": self.payload,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "error": self.error,
            "report": self.report,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRecord":
        if data.get("format") != JOB_FORMAT:
            raise ValueError(f"unsupported job format {data.get('format')!r}")
        return cls(
            id=data["id"],
            kind=data["kind"],
            payload=data["payload"],
            state=data["state"],
            created=data["created"],
            started=data["started"],
            finished=data["finished"],
            attempts=data["attempts"],
            error=data["error"],
            report=data["report"],
        )

    def summary(self) -> dict[str, Any]:
        """The wire view returned by the job endpoints (no payload body)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "error": self.error,
        }


class PersistentJobQueue:
    """One JSON file per job under *root*; atomic writes, tolerant loads."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, job_id: str) -> Path:
        # Job ids are content hashes (hex) or "campaign-<hex>"; keep a
        # belt-and-braces guard against path separators anyway.
        safe = job_id.replace("/", "_").replace("\\", "_")
        return self.root / f"{safe}.json"

    def save(self, record: JobRecord) -> None:
        """Persist *record* atomically (temp file + rename).

        A failed persist (full or read-only disk) degrades to a
        memory-only record instead of raising: the in-flight job keeps
        running and the client keeps its stream — the record just will
        not survive a restart.
        """
        path = self.path_for(record.id)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            _chaos.check_disk_full("queue", record.id)
            tmp.write_text(json.dumps(record.to_dict()))
            os.replace(tmp, path)
        except OSError:
            recovery.count("queue_save_errors")
            recovery.warn(
                "queue",
                f"could not persist job record {record.id}; "
                "continuing memory-only",
            )
            try:
                tmp.unlink()
            except OSError:
                pass

    def load(self) -> list[JobRecord]:
        """Every readable record, with interrupted jobs demoted to queued.

        Records are returned in submission order (``created``, then id
        for stability), so a restarted server drains its backlog in the
        order clients submitted it.  Leftover ``*.tmp.*`` files from a
        writer killed mid-save are swept here — the matching ``.json``
        still holds the previous committed record.
        """
        records = []
        for stale in self.root.glob("*.tmp.*"):
            try:
                stale.unlink()
            except OSError:
                pass
        for path in self.root.glob("*.json"):
            try:
                record = JobRecord.from_dict(json.loads(path.read_text()))
            except (OSError, ValueError, KeyError, TypeError):
                continue  # torn or stale-format file: skip, never raise
            if record.state == RUNNING:
                # The process died mid-run; the work is repeatable.
                record.state = QUEUED
                record.started = None
                self.save(record)
            records.append(record)
        records.sort(key=lambda r: (r.created, r.id))
        return records

    def remove(self, job_id: str) -> None:
        try:
            self.path_for(job_id).unlink()
        except OSError:
            pass
