"""A blocking stdlib client for the simulation service.

:class:`ServiceClient` wraps :mod:`http.client` so scripts, tests and
the CLI can talk to a running :class:`~repro.service.SimulationService`
without any dependency beyond the standard library.  Every call opens
one connection (the server closes per request anyway), decodes JSON,
and raises :class:`ServiceError` with the server's message on any
non-2xx status.

The client is restart-tolerant by default:

* every request retries transient failures (connection refused/reset,
  HTTP 429/502/503/504) with exponential backoff plus jitter — safe for
  POSTs too, because job ids are content-addressed, so a resubmission
  of the same spec dedupes onto the original job instead of duplicating
  work;
* :meth:`events` reconnects a dropped SSE stream with ``?since=<next
  seq>``, resuming exactly where it left off — the server's persisted
  event log makes this work even across a server restart.

Failures that are *not* transient (4xx validation errors, a job that
genuinely failed) surface immediately; :attr:`ServiceError.retryable`
says which side of that line an error fell on.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Iterator, Optional

from repro import recovery
from repro.api import ExperimentSpec, SimulationResult, result_from_dict

#: Statuses worth retrying: overload/backpressure and the gateway-ish
#: band a proxy in front of the service would emit during a restart.
RETRYABLE_STATUSES = frozenset({429, 502, 503, 504})


class ServiceError(Exception):
    """A non-2xx answer from the service.

    ``retryable`` is True when the failure is plausibly transient
    (server overloaded or mid-restart) and a retry of the identical
    request is safe and sensible.
    """

    def __init__(self, status: int, message: str, *, retryable: bool = False):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retryable = retryable


class ServiceClient:
    """Talk to one service instance at ``host:port``.

    *retries* transient-failure re-attempts per request (0 disables);
    *backoff* is the first retry's delay, doubling per attempt up to
    *backoff_cap*, with up to ``jitter`` fraction of random extra so a
    herd of clients does not re-converge on a restarting server.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout: float = 30.0, retries: int = 2,
                 backoff: float = 0.1, backoff_cap: float = 2.0,
                 jitter: float = 0.1):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self._rng = random.Random()

    # -- plumbing ---------------------------------------------------------

    def _once(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read() or b"{}")
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    data.get("error", "unknown error"),
                    retryable=response.status in RETRYABLE_STATUSES,
                )
            return data
        finally:
            conn.close()

    def _sleep_before(self, attempt: int) -> None:
        """Back off before retry *attempt* (1-based), with jitter."""
        base = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        time.sleep(base + self._rng.uniform(0.0, self.jitter * base))

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict[str, Any]:
        last: Exception = ServiceError(599, "no attempt made")
        for attempt in range(self.retries + 1):
            if attempt:
                recovery.count("client_retries")
                self._sleep_before(attempt)
            try:
                return self._once(method, path, payload)
            except ServiceError as exc:
                if not exc.retryable:
                    raise
                last = exc
            except (OSError, http.client.HTTPException) as exc:
                # Connection refused/reset mid-restart, torn response:
                # all transient by nature.
                last = exc
        raise last

    # -- submission -------------------------------------------------------

    def submit(self, spec: ExperimentSpec) -> dict[str, Any]:
        """Submit one experiment; returns the job summary payload.

        The response's ``submission`` field says how it was satisfied:
        ``queued``, ``deduped`` (an identical spec is already in
        flight) or ``cached`` (answered from the result store without
        running anything).
        """
        return self._request("POST", "/v1/jobs", {"spec": spec.to_dict()})

    def submit_campaign(self, campaign: dict[str, Any]) -> dict[str, Any]:
        """Submit a campaign config (plain keyword dict)."""
        return self._request("POST", "/v1/campaigns", {"campaign": campaign})

    # -- inspection -------------------------------------------------------

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def result(self, key: str) -> SimulationResult:
        """The cached result for a spec key (raises 404 on a miss)."""
        payload = self._request("GET", f"/v1/results/{key}")
        return result_from_dict(payload["result"])

    def telemetry(self) -> dict[str, Any]:
        return self._request("GET", "/v1/telemetry")

    def schemes(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/schemes")["schemes"]

    def health(self) -> bool:
        try:
            return bool(self._once("GET", "/healthz").get("ok"))
        except (OSError, ServiceError, http.client.HTTPException):
            return False

    # -- waiting ----------------------------------------------------------

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.05
    ) -> dict[str, Any]:
        """Poll until *job_id* reaches a terminal state; the job payload.

        Raises :class:`TimeoutError` if the deadline passes and
        :class:`ServiceError` never (a failed job is returned with
        ``state == "failed"``; inspect ``job["job"]["error"]``).
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["job"]["state"] in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {payload['job']['state']!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def run(self, spec: ExperimentSpec, *, timeout: float = 300.0
            ) -> SimulationResult:
        """Submit, wait, and return the result — the one-call path."""
        submitted = self.submit(spec)
        if "result" in submitted:  # answered from cache at submission
            return result_from_dict(submitted["result"])
        payload = self.wait(submitted["job"]["id"], timeout=timeout)
        job = payload["job"]
        if job["state"] != "done":
            raise ServiceError(500, job.get("error") or "job failed")
        if payload.get("result") is None:
            raise ServiceError(
                404,
                f"job {job['id']!r} is done but its result is no longer "
                "cached on the server; resubmit the spec to re-run it",
            )
        return result_from_dict(payload["result"])

    # -- progress streaming ------------------------------------------------

    def _stream_once(
        self, job_id: str, since: int, timeout: float
    ) -> Iterator[dict[str, Any]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = conn.getresponse()
            if response.status >= 400:
                data = json.loads(response.read() or b"{}")
                raise ServiceError(
                    response.status,
                    data.get("error", "unknown error"),
                    retryable=response.status in RETRYABLE_STATUSES,
                )
            for raw in response:
                line = raw.decode().rstrip("\n")
                if line.startswith("data: "):
                    yield json.loads(line[len("data: "):])
        finally:
            conn.close()

    def events(
        self, job_id: str, *, since: int = 0, timeout: float = 300.0,
        reconnect: bool = True,
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's SSE progress events until it turns terminal.

        Each yielded dict is one decoded ``data:`` payload (``seq``,
        ``ts``, ``event``, plus event-specific fields).  With
        *reconnect* (the default), a dropped stream — connection reset,
        server restarted mid-campaign — is re-established with
        ``?since=<next seq>`` until the job finishes or *timeout*
        (a deadline over the whole stream) passes, so the caller sees
        one gapless, duplicate-free sequence across server restarts.
        """
        deadline = time.monotonic() + timeout
        seq = max(0, since)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"event stream for {job_id!r} incomplete after "
                    f"{timeout:.0f}s"
                )
            try:
                for event in self._stream_once(job_id, seq, remaining):
                    if event.get("seq", seq) >= seq:
                        seq = event.get("seq", seq) + 1
                        yield event
                        if event.get("event") in ("done", "failed"):
                            return
                # Clean EOF without a terminal event: the server shut
                # down mid-stream; fall through to reconnect.
                if not reconnect:
                    return
            except ServiceError as exc:
                # A restarted server reloads its backlog before its
                # socket binds, so 404 here is a real unknown job, not
                # a race — only gateway-band errors are worth retrying.
                if not reconnect or not exc.retryable:
                    raise
            except (OSError, http.client.HTTPException):
                if not reconnect:
                    raise
            recovery.count("sse_reconnects")
            time.sleep(min(0.2, max(0.0, deadline - time.monotonic())))
