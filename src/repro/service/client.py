"""A blocking stdlib client for the simulation service.

:class:`ServiceClient` wraps :mod:`http.client` so scripts, tests and
the CLI can talk to a running :class:`~repro.service.SimulationService`
without any dependency beyond the standard library.  Every call opens
one connection (the server closes per request anyway), decodes JSON,
and raises :class:`ServiceError` with the server's message on any
non-2xx status.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator, Optional

from repro.api import ExperimentSpec, SimulationResult, result_from_dict


class ServiceError(Exception):
    """A non-2xx answer from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one service instance at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read() or b"{}")
            if response.status >= 400:
                raise ServiceError(
                    response.status, data.get("error", "unknown error")
                )
            return data
        finally:
            conn.close()

    # -- submission -------------------------------------------------------

    def submit(self, spec: ExperimentSpec) -> dict[str, Any]:
        """Submit one experiment; returns the job summary payload.

        The response's ``submission`` field says how it was satisfied:
        ``queued``, ``deduped`` (an identical spec is already in
        flight) or ``cached`` (answered from the result store without
        running anything).
        """
        return self._request("POST", "/v1/jobs", {"spec": spec.to_dict()})

    def submit_campaign(self, campaign: dict[str, Any]) -> dict[str, Any]:
        """Submit a campaign config (plain keyword dict)."""
        return self._request("POST", "/v1/campaigns", {"campaign": campaign})

    # -- inspection -------------------------------------------------------

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def result(self, key: str) -> SimulationResult:
        """The cached result for a spec key (raises 404 on a miss)."""
        payload = self._request("GET", f"/v1/results/{key}")
        return result_from_dict(payload["result"])

    def telemetry(self) -> dict[str, Any]:
        return self._request("GET", "/v1/telemetry")

    def schemes(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/schemes")["schemes"]

    def health(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (OSError, ServiceError):
            return False

    # -- waiting ----------------------------------------------------------

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.05
    ) -> dict[str, Any]:
        """Poll until *job_id* reaches a terminal state; the job payload.

        Raises :class:`TimeoutError` if the deadline passes and
        :class:`ServiceError` never (a failed job is returned with
        ``state == "failed"``; inspect ``job["job"]["error"]``).
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["job"]["state"] in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {payload['job']['state']!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def run(self, spec: ExperimentSpec, *, timeout: float = 300.0
            ) -> SimulationResult:
        """Submit, wait, and return the result — the one-call path."""
        submitted = self.submit(spec)
        if "result" in submitted:  # answered from cache at submission
            return result_from_dict(submitted["result"])
        payload = self.wait(submitted["job"]["id"], timeout=timeout)
        job = payload["job"]
        if job["state"] != "done":
            raise ServiceError(500, job.get("error") or "job failed")
        if payload.get("result") is None:
            raise ServiceError(
                404,
                f"job {job['id']!r} is done but its result is no longer "
                "cached on the server; resubmit the spec to re-run it",
            )
        return result_from_dict(payload["result"])

    # -- progress streaming ------------------------------------------------

    def events(
        self, job_id: str, *, since: int = 0, timeout: float = 300.0
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's SSE progress events until it turns terminal.

        Each yielded dict is one decoded ``data:`` payload (``seq``,
        ``ts``, ``event``, plus event-specific fields).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = conn.getresponse()
            if response.status >= 400:
                data = json.loads(response.read() or b"{}")
                raise ServiceError(
                    response.status, data.get("error", "unknown error")
                )
            for raw in response:
                line = raw.decode().rstrip("\n")
                if line.startswith("data: "):
                    event = json.loads(line[len("data: "):])
                    yield event
                    if event.get("event") in ("done", "failed"):
                        return
        finally:
            conn.close()
