"""Simulation-as-a-service: the job server over the reproduction runner.

``repro.service`` turns the batch harness into a long-running server:
many clients submit :class:`~repro.api.ExperimentSpec` and campaign
payloads over HTTP+JSON; the service persists them to a crash-safe job
queue, dedupes identical work in flight, executes on the existing
runner/engine substrate, and answers hot keys from a sharded in-memory
read-through cache.  Results are byte-identical to calling
:func:`repro.api.run_experiment` directly — the service adds transport,
load leveling and sharing, never semantics.

The package consumes the simulator exclusively through the frozen
:mod:`repro.api` facade.  See ``DESIGN.md`` §13 for the architecture
and the threading model.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobRecord, PersistentJobQueue
from repro.service.server import (
    ServiceConfig,
    ServiceThread,
    SimulationService,
    serve,
)

__all__ = [
    "JobRecord",
    "PersistentJobQueue",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "SimulationService",
    "serve",
]
