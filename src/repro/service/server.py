"""The simulation job server: many clients, one simulator, one cache.

:class:`SimulationService` turns the batch reproduction into a
long-running service.  Clients POST :class:`~repro.api.ExperimentSpec`
wire payloads (and campaign configs) over HTTP+JSON; the service levels
the load through a persistent on-disk job queue
(:mod:`repro.service.jobs`), dedupes identical specs in flight (the
spec's canonical ``key()`` is the job id, so N concurrent submissions
of one spec cost one simulation and N waiters), executes on the
existing runner substrate, and serves results from a sharded in-memory
read-through tier (:class:`~repro.api.ReadThroughCache`) so hot keys
never touch the simulator — or even the disk.

Threading model (three lanes, one owner each):

* the **asyncio event loop** owns every job record, the progress-event
  log and all HTTP handling; nothing else mutates them;
* one **execution thread** owns a single long-lived
  :meth:`~repro.api.ParallelRunner.session` (the work-stealing
  scheduler's substrate) and feeds it experiment jobs from a
  thread-safe queue, marshalling completions back to the loop with
  ``call_soon_threadsafe``;
* **campaign threads** (a small pool) each run one campaign to
  completion through :func:`~repro.api.create_engine` with its own
  runner — sharing the same disk cache, so campaign trials and ad-hoc
  jobs warm each other.

Because execution delegates to the same runner/cache/engine machinery
as local calls, a result served over HTTP is byte-identical to
``run_experiment(spec)`` run in-process — the concurrency test in
``tests/test_service.py`` pins exactly that.

The service imports the simulator exclusively through
:mod:`repro.api` — it is the facade's first consumer and the reason the
facade is frozen.
"""

from __future__ import annotations

import asyncio
import json
import queue as _thread_queue
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro import recovery
from repro.api import (
    CampaignConfig,
    ExperimentSpec,
    ParallelRunner,
    ReadThroughCache,
    ResultCache,
    UnknownSchemeError,
    create_engine,
    get_scheme,
    list_schemes,
)
from repro.service import jobs as _jobs
from repro.service.http import (
    HttpError,
    Request,
    json_response,
    read_request,
    response_bytes,
    sse_event,
    sse_preamble,
)
from repro.service.jobs import JobRecord, PersistentJobQueue

#: Sentinel shutting the execution thread down.
_STOP = object()

#: Log-spaced latency histogram edges (seconds).
_LATENCY_EDGES = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)


@dataclass
class ServiceConfig:
    """Everything one server process needs to know."""

    host: str = "127.0.0.1"
    port: int = 8642
    #: Worker processes for the runner session (1 = in-process, which
    #: keeps tests deterministic); ``None`` means all cores.
    workers: Optional[int] = 1
    #: Result cache directory (``None`` = $REPRO_CACHE_DIR / default).
    cache_dir: Union[str, Path, None] = None
    #: Job queue directory (records + campaign checkpoints).
    queue_dir: Union[str, Path] = ".repro-service"
    store_shards: int = 16
    store_capacity_per_shard: int = 256
    #: Campaign execution discipline and concurrent-campaign cap.
    campaign_scheduler: str = "stealing"
    max_campaigns: int = 2
    #: Campaign checkpoint cadence (records-dirty / seconds-elapsed).
    #: Deliberately tighter than the library defaults: a service exists
    #: to be killed and restarted, and the checkpoint bounds how much
    #: work a restart repeats.
    checkpoint_every_trials: int = 8
    checkpoint_interval: float = 2.0
    #: Per-job wall-clock budget forwarded to the runner.
    timeout: Optional[float] = None
    #: In-memory retention bounds, so a long-running server does not
    #: grow linearly with every job ever submitted: latency samples per
    #: backend, and terminal job records (+ their event logs) kept as
    #: the dedup index.
    max_latency_samples: int = 512
    max_terminal_jobs: int = 4096


def _latency_summary(values: list[float]) -> dict[str, Any]:
    """Order statistics plus a log-bucket histogram (telemetry payload)."""
    vals = sorted(values)
    n = len(vals)
    counts = [0] * (len(_LATENCY_EDGES) + 1)
    for v in vals:
        i = 0
        while i < len(_LATENCY_EDGES) and v >= _LATENCY_EDGES[i]:
            i += 1
        counts[i] += 1
    return {
        "count": n,
        "mean": sum(vals) / n if n else 0.0,
        "p50": vals[n // 2] if n else 0.0,
        "p90": vals[min(n - 1, (9 * n) // 10)] if n else 0.0,
        "max": vals[-1] if n else 0.0,
        "histogram": {"edges": list(_LATENCY_EDGES), "counts": counts},
    }


class SimulationService:
    """The asyncio job server (see the module docstring for the design).

    Construct, then ``await start()`` inside a running event loop; the
    bound port is :attr:`port` (useful with ``port=0``).  ``await
    stop()`` drains cleanly.  ``start_execution=False`` boots the HTTP
    and queue layers without the execution thread — submissions persist
    and queue but never run, which is how the tests model a server
    killed before its backlog drains.
    """

    def __init__(self, config: ServiceConfig, *, start_execution: bool = True):
        self.config = config
        self.queue = PersistentJobQueue(config.queue_dir)
        cache = ResultCache(cache_dir=config.cache_dir)
        self.runner = ParallelRunner(
            jobs=config.workers, cache=cache, timeout=config.timeout
        )
        self.store = ReadThroughCache(
            cache,
            shards=config.store_shards,
            capacity_per_shard=config.store_capacity_per_shard,
        )
        self._start_execution = start_execution
        self._jobs: dict[str, JobRecord] = {}
        self._events: dict[str, list[dict[str, Any]]] = {}
        self._pending: _thread_queue.Queue = _thread_queue.Queue()
        self._latency: dict[str, deque] = {}
        self._campaign_telemetry: dict[str, dict[str, Any]] = {}
        self._campaign_tasks: set[asyncio.Task] = set()
        self._campaign_pool: Optional[ThreadPoolExecutor] = None
        self._execution_thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._changed: Optional[asyncio.Condition] = None
        self._stopping = False
        self._started_at = time.time()
        # -- telemetry counters (loop thread only) -----------------------
        self.submissions = 0
        self.dedup_hits = 0
        self.cache_served = 0
        self.jobs_done = 0
        self.jobs_failed = 0

    # -- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound TCP port (after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._changed = asyncio.Condition()
        self._started_at = time.time()
        self._resume_backlog()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self._start_execution:
            self._execution_thread = threading.Thread(
                target=self._execution_loop,
                name="repro-service-execution",
                daemon=True,
            )
            self._execution_thread.start()

    async def stop(self) -> None:
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._campaign_tasks):
            task.cancel()
        if self._campaign_pool is not None:
            self._campaign_pool.shutdown(wait=False, cancel_futures=True)
        if self._execution_thread is not None:
            self._pending.put(_STOP)
            self._execution_thread.join(timeout=10.0)
        async with self._changed:
            self._changed.notify_all()

    async def serve_forever(self) -> None:
        """``start()`` and block until cancelled (the CLI entry point)."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    def _resume_backlog(self) -> None:
        """Reload persisted jobs; re-dispatch everything non-terminal.

        Three recovery mechanisms compose here:

        * the queue's crash-safe records bring every accepted job back;
        * each job's persisted event log is reloaded, so an SSE client
          reconnecting with ``?since=`` after the restart replays from
          its last committed event instead of a truncated stream;
        * a resumed *campaign* job finds its checkpoint beside the
          queue (the engine re-adopts it), so the restart re-runs only
          the uncheckpointed tail — the ``resumed`` event carries the
          committed trial count as proof.

        Dispatch is fault-isolated per record: a persisted payload that
        no longer validates (scheme removed, field renamed, spec format
        bump) marks that one record failed instead of raising out of
        :meth:`start` — the jobs-module contract that one bad file
        cannot brick the queue.
        """
        for record in self.queue.load():
            self._jobs[record.id] = record
            self._events[record.id] = self._load_event_log(record.id)
            if record.terminal:
                continue
            recovery.count("jobs_resumed")
            self._emit(record.id, "queued", resumed=True)
            if record.kind == "campaign":
                committed = self._checkpoint_trials(record.id)
                if committed:
                    recovery.count("campaigns_resumed")
                    recovery.warn(
                        "service",
                        f"resuming campaign {record.id} from checkpoint "
                        f"({committed} trials committed)",
                    )
                self._emit(record.id, "resumed", trials_committed=committed)
            try:
                self._dispatch(record)
            except Exception as exc:
                record.state = _jobs.FAILED
                record.finished = time.time()
                record.error = f"failed to resume: {exc}"[:4000]
                self.jobs_failed += 1
                self.queue.save(record)
                self._emit(record.id, "failed", error=record.error)
        self._prune_terminal()

    def _checkpoint_trials(self, job_id: str) -> int:
        """Committed trial records in a campaign job's checkpoint (0 if
        none/corrupt — the engine's own loader decides what to adopt;
        this is only the resume event's evidence)."""
        path = self.queue.root / f"{job_id}.ckpt.json"
        try:
            payload = json.loads(path.read_text())
            cells = payload.get("cells", {})
            return sum(len(v) for v in cells.values() if isinstance(v, list))
        except (OSError, ValueError, AttributeError, TypeError):
            return 0

    # -- submission and dispatch (loop thread) ----------------------------

    def _dispatch(self, record: JobRecord) -> None:
        """Hand a queued record to its execution lane."""
        if record.kind == "experiment":
            spec = ExperimentSpec.from_dict(record.payload["spec"])
            self._pending.put((record.id, spec))
        else:
            config = self._campaign_config(dict(record.payload["campaign"]))
            task = asyncio.ensure_future(self._campaign_job(record.id, config))
            self._campaign_tasks.add(task)
            task.add_done_callback(self._campaign_tasks.discard)

    def submit_experiment(self, payload: dict[str, Any]) -> tuple[JobRecord, str]:
        """Create (or dedup onto) the job for one spec submission.

        Returns the record plus how the submission was satisfied:
        ``"queued"`` (new work), ``"deduped"`` (identical spec already
        in flight — one simulation, N waiters) or ``"cached"`` (the
        read-through store already holds the result; the runner is
        never touched).
        """
        if not isinstance(payload, dict) or "spec" not in payload:
            raise HttpError(400, 'body must be {"spec": {...}}')
        try:
            spec = ExperimentSpec.from_dict(payload["spec"])
        except UnknownSchemeError as exc:
            raise HttpError(400, str(exc)) from None
        except (ValueError, TypeError, KeyError) as exc:
            raise HttpError(400, f"malformed spec: {exc}") from None
        self.submissions += 1
        job_id = spec.key()
        record = self._jobs.get(job_id)
        if record is not None and not record.terminal:
            self.dedup_hits += 1
            return record, "deduped"
        if record is not None and record.state == _jobs.DONE:
            if self.store.get(job_id) is not None:
                self.cache_served += 1
                return record, "cached"
            # The record says done but the result was evicted from
            # every tier: fall through and re-run the spec.
        # Fresh key (or a failed record being retried): a warm disk
        # cache can still answer without the runner.
        result = self.store.get(job_id)
        if result is not None:
            record = JobRecord(
                id=job_id,
                kind="experiment",
                payload={"spec": spec.to_dict()},
                state=_jobs.DONE,
                finished=time.time(),
            )
            self._jobs[job_id] = record
            self.queue.save(record)
            self._emit(job_id, "done", cached=True)
            self.cache_served += 1
            self._prune_terminal()
            return record, "cached"
        record = JobRecord(
            id=job_id, kind="experiment", payload={"spec": spec.to_dict()}
        )
        self._jobs[job_id] = record
        self.queue.save(record)
        self._emit(job_id, "queued")
        self._pending.put((job_id, spec))
        return record, "queued"

    def submit_campaign(self, payload: dict[str, Any]) -> tuple[JobRecord, str]:
        """Create (or dedup onto) a campaign job."""
        if not isinstance(payload, dict) or "campaign" not in payload:
            raise HttpError(400, 'body must be {"campaign": {...}}')
        config = self._campaign_config(dict(payload["campaign"]))
        self.submissions += 1
        job_id = f"campaign-{config.digest()}"
        record = self._jobs.get(job_id)
        if record is not None and not record.terminal:
            self.dedup_hits += 1
            return record, "deduped"
        if record is not None and record.state == _jobs.DONE:
            self.cache_served += 1
            return record, "cached"
        record = JobRecord(
            id=job_id, kind="campaign", payload={"campaign": payload["campaign"]}
        )
        self._jobs[job_id] = record
        self.queue.save(record)
        self._emit(job_id, "queued")
        task = asyncio.ensure_future(self._campaign_job(job_id, config))
        self._campaign_tasks.add(task)
        task.add_done_callback(self._campaign_tasks.discard)
        return record, "queued"

    def _campaign_config(self, payload: dict[str, Any]) -> CampaignConfig:
        if not isinstance(payload, dict):
            raise HttpError(400, "campaign config must be a JSON object")
        allowed = set(CampaignConfig.__dataclass_fields__)
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise HttpError(
                400, f"unknown campaign field(s): {', '.join(unknown)}"
            )
        if payload.get("machine") is not None:
            raise HttpError(400, "custom machines are not wire-serializable")
        # The service's default kernel policy: backend-aware dispatch.
        payload.setdefault("backend", "auto")
        try:
            return CampaignConfig(**payload)
        except UnknownSchemeError as exc:
            raise HttpError(400, str(exc)) from None
        except (ValueError, TypeError) as exc:
            raise HttpError(400, f"malformed campaign config: {exc}") from None

    # -- experiment execution (execution thread <-> loop) -----------------

    def _execution_loop(self) -> None:
        """The execution thread: one long-lived runner session."""
        stop = False
        with self.runner.session(workers=self.config.workers) as session:
            while not stop or session.outstanding():
                try:
                    item = self._pending.get(timeout=0.05)
                except _thread_queue.Empty:
                    item = None
                if item is _STOP:
                    stop = True
                elif item is not None:
                    job_id, spec = item
                    self._post(self._mark_running, job_id)
                    session.submit_spec(spec, tag=job_id)
                while session.outstanding():
                    handle = session.next_completed(timeout=0.05)
                    if handle is None:
                        break
                    self._post(self._finish_experiment, handle.tag, handle)

    def _post(self, fn, *args) -> None:
        """Run *fn* on the event loop (execution thread -> loop lane)."""
        assert self._loop is not None
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def _mark_running(self, job_id: str) -> None:
        record = self._jobs.get(job_id)
        if record is None or record.terminal:
            return
        record.state = _jobs.RUNNING
        record.started = time.time()
        record.attempts += 1
        self.queue.save(record)
        self._emit(job_id, "started")

    def _finish_experiment(self, job_id: str, handle) -> None:
        record = self._jobs.get(job_id)
        if record is None:
            return
        record.finished = time.time()
        if handle.ok:
            record.state = _jobs.DONE
            record.error = None
            self.store.warm(job_id, handle.result)
            self.jobs_done += 1
            backend = record.payload["spec"].get("backend", "object")
            if record.started is not None:
                self._latency.setdefault(
                    backend, deque(maxlen=self.config.max_latency_samples)
                ).append(record.finished - record.started)
            self._emit(job_id, "done", cached=handle.cached)
        else:
            record.state = _jobs.FAILED
            record.error = str(handle.result)[:4000]
            self.jobs_failed += 1
            self._emit(job_id, "failed", error=record.error)
        self.queue.save(record)
        self._prune_terminal()

    # -- campaign execution (loop task + worker thread) --------------------

    async def _campaign_job(self, job_id: str, config: CampaignConfig) -> None:
        if self._campaign_pool is None:
            self._campaign_pool = ThreadPoolExecutor(
                max_workers=self.config.max_campaigns,
                thread_name_prefix="repro-service-campaign",
            )
        record = self._jobs[job_id]
        record.state = _jobs.RUNNING
        record.started = time.time()
        record.attempts += 1
        self.queue.save(record)
        self._emit(job_id, "started")
        assert self._loop is not None
        try:
            report, telemetry = await self._loop.run_in_executor(
                self._campaign_pool, self._run_campaign, job_id, config
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            record.state = _jobs.FAILED
            record.error = f"{type(exc).__name__}: {exc}"[:4000]
            record.finished = time.time()
            self.jobs_failed += 1
            self.queue.save(record)
            self._emit(job_id, "failed", error=record.error)
            self._prune_terminal()
            return
        record.state = _jobs.DONE
        record.finished = time.time()
        record.report = report
        self._campaign_telemetry[job_id] = telemetry
        self.jobs_done += 1
        self.queue.save(record)
        self._emit(job_id, "done")
        self._prune_terminal()

    def _run_campaign(
        self, job_id: str, config: CampaignConfig
    ) -> tuple[dict[str, Any], dict[str, Any]]:
        """Blocking campaign execution (campaign thread).

        Each campaign gets its own runner over the *same* disk cache —
        trials it simulates warm the service's read-through store for
        later single-spec submissions, and vice versa.  The checkpoint
        lives beside the job queue, so a killed server resumes the
        campaign instead of restarting it.
        """
        runner = ParallelRunner(
            jobs=self.config.workers,
            cache=ResultCache(cache_dir=self.config.cache_dir),
            timeout=self.config.timeout,
        )
        engine = create_engine(
            config,
            runner,
            scheduler=self.config.campaign_scheduler,
            checkpoint_path=self.queue.root / f"{job_id}.ckpt.json",
            checkpoint_every_trials=self.config.checkpoint_every_trials,
            checkpoint_interval=self.config.checkpoint_interval,
        )
        report = engine.run()
        telemetry = engine.telemetry()
        telemetry["runner"] = runner.stats.snapshot()
        return json.loads(report.to_json()), telemetry

    def _prune_terminal(self) -> None:
        """Bound retention of finished jobs (memory *and* queue files).

        The job table doubles as the dedup index, so terminal records
        stick around — but only the newest ``max_terminal_jobs`` of
        them.  Evicting an old done job is safe: its result still lives
        in the content-addressed cache, so a resubmission of the same
        spec is answered read-through without touching the runner.
        """
        cap = self.config.max_terminal_jobs
        terminal = [r for r in self._jobs.values() if r.terminal]
        if len(terminal) <= cap:
            return
        terminal.sort(key=lambda r: (r.finished or r.created, r.id))
        for record in terminal[: len(terminal) - cap]:
            del self._jobs[record.id]
            self._events.pop(record.id, None)
            self._campaign_telemetry.pop(record.id, None)
            self.queue.remove(record.id)
            for path in (
                self._events_path(record.id),
                self.queue.root / f"{record.id}.ckpt.json",
            ):
                try:
                    path.unlink()
                except OSError:
                    pass

    # -- progress events ---------------------------------------------------

    def _events_path(self, job_id: str) -> Path:
        safe = job_id.replace("/", "_").replace("\\", "_")
        return self.queue.root / f"{safe}.events.jsonl"

    def _load_event_log(self, job_id: str) -> list[dict[str, Any]]:
        """Reload a job's persisted progress events (restart survival).

        Tolerant line-by-line parse: a line torn by the kill that took
        the server down is dropped, everything before it survives, and
        ``seq`` keeps counting from what was kept.
        """
        events: list[dict[str, Any]] = []
        try:
            text = self._events_path(job_id).read_text()
        except OSError:
            return events
        for line in text.splitlines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and entry.get("seq") == len(events):
                events.append(entry)
        return events

    def _emit(self, job_id: str, event: str, **data: Any) -> None:
        log = self._events.setdefault(job_id, [])
        entry = {
            "seq": len(log),
            "ts": time.time(),
            "job": job_id,
            "event": event,
            **data,
        }
        log.append(entry)
        try:
            with self._events_path(job_id).open("a") as fh:
                fh.write(json.dumps(entry) + "\n")
        except OSError:
            # The in-memory log keeps streaming; only restart replay
            # degrades.
            recovery.count("event_log_errors")
            recovery.warn("service", "event log append failed; continuing")
        if self._changed is not None:
            asyncio.ensure_future(self._notify())

    async def _notify(self) -> None:
        assert self._changed is not None
        async with self._changed:
            self._changed.notify_all()

    # -- telemetry ---------------------------------------------------------

    def telemetry(self) -> dict[str, Any]:
        states: dict[str, int] = {}
        for record in self._jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "uptime": time.time() - self._started_at,
            "queue_depth": states.get(_jobs.QUEUED, 0)
            + states.get(_jobs.RUNNING, 0),
            "jobs": states,
            "submissions": self.submissions,
            "dedup_hits": self.dedup_hits,
            "cache_served": self.cache_served,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "store": self.store.stats(),
            "runner": self.runner.stats.snapshot(),
            "backend_latency": {
                backend: _latency_summary(list(vals))
                for backend, vals in sorted(self._latency.items())
            },
            "campaigns": self._campaign_telemetry,
            "recovery": recovery.snapshot(),
        }

    # -- HTTP --------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self._route(request, writer)
            except HttpError as exc:
                writer.write(
                    json_response(exc.status, {"error": exc.message})
                )
            except (ConnectionError, asyncio.CancelledError):
                return
            except Exception as exc:  # never take the server down
                writer.write(
                    json_response(500, {"error": f"{type(exc).__name__}: {exc}"})
                )
            try:
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                return
        finally:
            # Close the transport fully so no socket outlives the
            # handler (a GC-time ResourceWarning elsewhere in the
            # process is not harmless noise — warning emission can run
            # arbitrary import machinery at a delicate moment).
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, req: Request, writer: asyncio.StreamWriter) -> None:
        parts = [p for p in req.path.split("/") if p]
        if req.path == "/healthz" and req.method == "GET":
            writer.write(json_response(200, {"ok": True}))
            return
        if parts[:1] != ["v1"]:
            raise HttpError(404, f"no such endpoint {req.path!r}")
        rest = parts[1:]
        if rest == ["schemes"] and req.method == "GET":
            writer.write(json_response(200, self._schemes_payload()))
        elif rest == ["telemetry"] and req.method == "GET":
            writer.write(json_response(200, self.telemetry()))
        elif rest == ["jobs"] and req.method == "POST":
            record, how = self.submit_experiment(req.json())
            writer.write(self._submission_response(record, how))
        elif rest == ["campaigns"] and req.method == "POST":
            record, how = self.submit_campaign(req.json())
            writer.write(self._submission_response(record, how))
        elif rest == ["jobs"] and req.method == "GET":
            writer.write(
                json_response(
                    200,
                    {
                        "jobs": [
                            r.summary()
                            for r in sorted(
                                self._jobs.values(),
                                key=lambda r: (r.created, r.id),
                            )
                        ]
                    },
                )
            )
        elif len(rest) == 2 and rest[0] == "jobs" and req.method == "GET":
            writer.write(self._job_response(rest[1]))
        elif (
            len(rest) == 3
            and rest[0] == "jobs"
            and rest[2] == "events"
            and req.method == "GET"
        ):
            try:
                since = int(req.query.get("since", 0))
            except ValueError:
                raise HttpError(400, "since must be an integer") from None
            await self._stream_events(writer, rest[1], since)
        elif len(rest) == 2 and rest[0] == "results" and req.method == "GET":
            result = self.store.get(rest[1])
            if result is None:
                raise HttpError(404, f"no cached result for key {rest[1]!r}")
            writer.write(json_response(200, {"result": result.to_dict()}))
        else:
            raise HttpError(404, f"no such endpoint {req.method} {req.path!r}")

    def _schemes_payload(self) -> dict[str, Any]:
        out = []
        for name in list_schemes():
            info = get_scheme(name)
            out.append(
                {
                    "name": info.name,
                    "kind": info.kind,
                    "description": info.description,
                    "protection": info.protection.name,
                    "replicates": info.replicates,
                    "accepts_icr_knobs": info.accepts_icr_knobs,
                    "aliases": list(info.aliases),
                }
            )
        return {"schemes": out}

    def _submission_response(self, record: JobRecord, how: str) -> bytes:
        payload: dict[str, Any] = {"job": record.summary(), "submission": how}
        if record.state == _jobs.DONE and record.kind == "experiment":
            result = self.store.get(record.id)
            if result is not None:
                payload["result"] = result.to_dict()
        status = 200 if record.terminal else 202
        return json_response(status, payload)

    def _job_response(self, job_id: str) -> bytes:
        record = self._jobs.get(job_id)
        if record is None:
            raise HttpError(404, f"no such job {job_id!r}")
        payload: dict[str, Any] = {"job": record.summary()}
        if record.state == _jobs.DONE:
            if record.kind == "experiment":
                result = self.store.get(record.id)
                payload["result"] = (
                    result.to_dict() if result is not None else None
                )
            else:
                payload["report"] = record.report
        return json_response(200, payload)

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str, since: int
    ) -> None:
        if job_id not in self._jobs:
            raise HttpError(404, f"no such job {job_id!r}")
        writer.write(sse_preamble())
        await writer.drain()
        seq = max(0, since)
        assert self._changed is not None
        while True:
            log = self._events.get(job_id, ())
            while seq < len(log):
                entry = log[seq]
                seq += 1
                writer.write(
                    sse_event(entry["event"], entry, event_id=entry["seq"])
                )
            await writer.drain()
            record = self._jobs.get(job_id)
            done = record is None or record.terminal
            if (done and seq >= len(self._events.get(job_id, ()))) or (
                self._stopping
            ):
                return
            async with self._changed:
                try:
                    await asyncio.wait_for(self._changed.wait(), timeout=15.0)
                except asyncio.TimeoutError:
                    writer.write(b": keep-alive\n\n")  # SSE comment frame


class ServiceThread:
    """A :class:`SimulationService` on a background thread (tests, CLI).

    Owns a private event loop: ``start()`` returns once the server
    socket is bound (read :attr:`port`), ``stop()`` drains and joins.
    """

    def __init__(self, config: ServiceConfig, *, start_execution: bool = True):
        self.config = config
        self._start_execution = start_execution
        self.service: Optional[SimulationService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.service = SimulationService(
            self.config, start_execution=self._start_execution
        )
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.service.stop())
            # Drain whatever is still scheduled (SSE streams cut off
            # mid-wait, notify tasks) so closing the loop destroys no
            # pending task and leaks no transport.
            remaining = [
                t for t in asyncio.all_tasks(loop) if not t.done()
            ]
            for task in remaining:
                task.cancel()
            if remaining:
                loop.run_until_complete(
                    asyncio.gather(*remaining, return_exceptions=True)
                )
        finally:
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(config: ServiceConfig) -> None:
    """Run a service in the foreground until interrupted (CLI entry)."""
    service = SimulationService(config)

    async def _run() -> None:
        await service.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
