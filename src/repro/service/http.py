"""A minimal HTTP/1.1 layer over raw asyncio streams.

The simulation service deliberately runs on the stdlib alone — no
aiohttp, no framework — so this module implements just enough of
HTTP/1.1 for a JSON job API: request-line + header parsing with size
limits, ``Content-Length`` bodies, JSON responses, and server-sent
events (SSE) for progress streaming.  Every connection serves one
request and closes (``Connection: close``), which keeps the parser
state-machine-free; SSE responses stream until the job ends.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

#: Parser bounds: a request line / header block / body larger than this
#: is rejected with 431/413 instead of buffering unboundedly.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """An error the handler wants rendered as an HTTP status + message."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (raises :class:`HttpError` 400)."""
        if not self.body:
            raise HttpError(400, "request body must be JSON")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from None


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from *reader*; ``None`` on a clean EOF."""
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed without sending anything
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request headers too large") from None
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(431, "request headers too large")

    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if n < 0:
            raise HttpError(400, "malformed Content-Length")
        if n > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """A full one-shot response (headers + body, connection closing)."""
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: Any) -> bytes:
    """A JSON one-shot response."""
    return response_bytes(
        status, json.dumps(payload).encode() + b"\n"
    )


def sse_preamble() -> bytes:
    """Response head opening a server-sent-events stream."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-store\r\n"
        b"Connection: close\r\n\r\n"
    )


def sse_event(event: str, data: Any, *, event_id: Optional[int] = None) -> bytes:
    """One SSE frame (``id``/``event``/``data`` lines + blank line)."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event}")
    lines.append(f"data: {json.dumps(data)}")
    return ("\n".join(lines) + "\n\n").encode()
