"""repro — a full reproduction of *ICR: In-Cache Replication for Enhancing
Data Cache Reliability* (Zhang, Gurumurthi, Kandemir, Sivasubramaniam;
DSN 2003).

The package implements the paper's contribution — an L1 data cache that
recycles dead lines to hold replicas of live data — together with every
substrate its evaluation needs: a set-associative cache hierarchy, parity
and SEC-DED codes, a dead-block predictor, transient-fault injection, an
out-of-order CPU timing model, synthetic SPEC2000-like workloads, a
CACTI-style energy model, and a per-figure experiment harness.

Quick start::

    from repro import ExperimentSpec, run_experiment

    spec = ExperimentSpec("gzip", "ICR-P-PS(S)", n_instructions=100_000)
    result = run_experiment(spec)
    print(result.loads_with_replica, result.cpi)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every figure.
"""

from repro import api
from repro.core import (
    ALL_SCHEMES,
    HEADLINE_SCHEMES,
    ICRCache,
    ICRConfig,
    LookupMode,
    ReplicationTrigger,
    VictimPolicy,
    make_cache,
    make_config,
)
from repro.harness import (
    ExperimentSpec,
    MachineConfig,
    SimulationResult,
    normalized_cycles,
    run_experiment,
    run_schemes,
)
from repro.workloads import BENCHMARKS, PROFILES, WorkloadProfile

__version__ = "1.0.0"

__all__ = [
    "api",
    "ALL_SCHEMES",
    "HEADLINE_SCHEMES",
    "ICRCache",
    "ICRConfig",
    "LookupMode",
    "ReplicationTrigger",
    "VictimPolicy",
    "make_cache",
    "make_config",
    "ExperimentSpec",
    "MachineConfig",
    "SimulationResult",
    "normalized_cycles",
    "run_experiment",
    "run_schemes",
    "BENCHMARKS",
    "PROFILES",
    "WorkloadProfile",
    "__version__",
]
