"""Profiles of the eight SPEC2000 applications used by the paper.

The paper names gcc, gzip, mcf, mesa, vortex and vpr in its figures and
uses "eight applications from the Spec2000 suite"; we complete the set
with parser and equake (both standard picks of that era).  Each profile is
tuned so the synthetic trace lands near the published characteristics of
the benchmark on a 16KB 4-way dL1 — miss rate, load/store mix, branch
predictability, and the locality skew that drives ICR's behaviour:

==========  ====  ==========================================================
benchmark   type  character modeled
==========  ====  ==========================================================
gzip        INT   small hot dictionaries + sequential buffer streaming
vpr         INT   moderate working set, data-dependent branches
gcc         INT   large, irregular working set; big code footprint
mesa        FP    regular rendering loops, small hot state, very low misses
mcf         INT   pointer-chasing over a huge graph; very poor locality
parser      INT   dictionary lookups: hot core + wide cold tail
vortex      INT   object database: hot metadata, store-heavy transactions
equake      FP    sparse-matrix streaming with a hot index core
==========  ====  ==========================================================

These are *behavioural stand-ins*, not cycle-accurate clones — Section 2 of
DESIGN.md records this substitution and why it preserves the paper's
effects.  The profiles were calibrated against published 16KB-dL1 miss
rates and the paper's per-benchmark replication figures (Figures 6-8).
"""

from __future__ import annotations

from repro.workloads.generator import WorkloadProfile

#: Benchmark order used throughout the figures.
BENCHMARKS: tuple[str, ...] = (
    "gzip",
    "vpr",
    "gcc",
    "mesa",
    "mcf",
    "parser",
    "vortex",
    "equake",
)

PROFILES: dict[str, WorkloadProfile] = {
    "gzip": WorkloadProfile(
        name="gzip",
        body_size=768,
        segment_length=128,
        segment_switch_prob=0.05,
        mem_fraction=0.34,
        store_ratio=0.32,
        branch_fraction=0.17,
        p_hot=0.62,
        p_stream=0.08,
        p_chase=0.0,
        p_stack=0.30,
        hot_blocks=112,
        zipf_s=0.95,
        hot_set_fraction=0.50,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=1,
        hot_readonly_fraction=0.35,
        n_streams=3,
        stream_region_blocks=4096,
        stack_blocks=8,
        phase_instructions=60_000,
        branch_predictability=0.90,
        dep_geometric_p=0.50,
        seed=11,
    ),
    "vpr": WorkloadProfile(
        name="vpr",
        body_size=1024,
        segment_length=128,
        segment_switch_prob=0.07,
        mem_fraction=0.36,
        store_ratio=0.30,
        branch_fraction=0.16,
        p_hot=0.62,
        p_stream=0.08,
        p_chase=0.02,
        p_stack=0.28,
        hot_blocks=100,
        zipf_s=0.95,
        hot_set_fraction=0.50,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=2,
        hot_readonly_fraction=0.30,
        n_streams=2,
        stream_region_blocks=4096,
        chase_region_blocks=16384,
        stack_blocks=8,
        phase_instructions=50_000,
        branch_predictability=0.80,
        dep_geometric_p=0.42,
        seed=23,
    ),
    "gcc": WorkloadProfile(
        name="gcc",
        body_size=3072,
        segment_length=192,
        segment_switch_prob=0.10,
        mem_fraction=0.40,
        store_ratio=0.36,
        branch_fraction=0.19,
        p_hot=0.575,
        p_stream=0.10,
        p_chase=0.03,
        p_stack=0.295,
        hot_blocks=116,
        zipf_s=0.90,
        hot_set_fraction=0.55,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=2,
        hot_readonly_fraction=0.35,
        n_streams=4,
        stream_region_blocks=8192,
        chase_region_blocks=32768,
        stack_blocks=8,
        phase_instructions=40_000,
        branch_predictability=0.86,
        dep_geometric_p=0.45,
        seed=37,
    ),
    "mesa": WorkloadProfile(
        name="mesa",
        body_size=640,
        segment_length=160,
        segment_switch_prob=0.04,
        mem_fraction=0.33,
        store_ratio=0.28,
        branch_fraction=0.10,
        fp_fraction=0.55,
        p_hot=0.64,
        p_stream=0.05,
        p_chase=0.0,
        p_stack=0.31,
        hot_blocks=96,
        zipf_s=1.05,
        hot_set_fraction=0.50,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=1,
        hot_readonly_fraction=0.30,
        n_streams=4,
        stream_region_blocks=2048,
        stack_blocks=8,
        phase_instructions=80_000,
        branch_predictability=0.97,
        dep_geometric_p=0.55,
        seed=41,
    ),
    "mcf": WorkloadProfile(
        name="mcf",
        body_size=896,
        segment_length=128,
        segment_switch_prob=0.06,
        mem_fraction=0.42,
        store_ratio=0.25,
        branch_fraction=0.18,
        p_hot=0.67,
        p_stream=0.04,
        p_chase=0.07,
        p_stack=0.22,
        hot_blocks=140,
        zipf_s=0.80,
        hot_set_fraction=0.25,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=3,
        hot_readonly_fraction=0.08,
        n_streams=1,
        stream_region_blocks=16384,
        chase_region_blocks=131072,
        stack_blocks=8,
        phase_instructions=60_000,
        branch_predictability=0.86,
        dep_geometric_p=0.35,
        seed=53,
    ),
    "parser": WorkloadProfile(
        name="parser",
        body_size=1536,
        segment_length=128,
        segment_switch_prob=0.08,
        mem_fraction=0.37,
        store_ratio=0.30,
        branch_fraction=0.18,
        p_hot=0.605,
        p_stream=0.08,
        p_chase=0.035,
        p_stack=0.28,
        hot_blocks=108,
        zipf_s=0.95,
        hot_set_fraction=0.55,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=2,
        hot_readonly_fraction=0.30,
        n_streams=2,
        stream_region_blocks=4096,
        chase_region_blocks=24576,
        stack_blocks=8,
        phase_instructions=50_000,
        branch_predictability=0.85,
        dep_geometric_p=0.45,
        seed=61,
    ),
    "vortex": WorkloadProfile(
        name="vortex",
        body_size=2048,
        segment_length=160,
        segment_switch_prob=0.08,
        mem_fraction=0.41,
        store_ratio=0.40,
        branch_fraction=0.17,
        p_hot=0.625,
        p_stream=0.08,
        p_chase=0.015,
        p_stack=0.28,
        hot_blocks=104,
        zipf_s=1.0,
        hot_set_fraction=0.50,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=2,
        hot_readonly_fraction=0.25,
        n_streams=3,
        stream_region_blocks=6144,
        chase_region_blocks=16384,
        stack_blocks=8,
        phase_instructions=60_000,
        branch_predictability=0.95,
        dep_geometric_p=0.48,
        seed=71,
    ),
    "equake": WorkloadProfile(
        name="equake",
        body_size=768,
        segment_length=192,
        segment_switch_prob=0.04,
        mem_fraction=0.40,
        store_ratio=0.25,
        branch_fraction=0.11,
        fp_fraction=0.60,
        p_hot=0.425,
        p_stream=0.45,
        p_chase=0.015,
        p_stack=0.11,
        hot_blocks=96,
        zipf_s=0.95,
        hot_set_fraction=0.50,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=1,
        hot_readonly_fraction=0.30,
        n_streams=6,
        stream_region_blocks=16384,
        chase_region_blocks=32768,
        stack_blocks=8,
        phase_instructions=80_000,
        branch_predictability=0.96,
        dep_geometric_p=0.52,
        seed=83,
    ),
}


def profile_for(benchmark: str) -> WorkloadProfile:
    """Look up a benchmark profile by name (paper suite + extended)."""
    try:
        return ALL_PROFILES[benchmark]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {benchmark!r}; choose from "
            f"{list(BENCHMARKS) + sorted(EXTRA_PROFILES)}"
        ) from None


#: Extended suite: two more SPEC2000 profiles beyond the paper's eight,
#: for users who want additional coverage points (not used by the paper
#: figures).  art = tiny hot kernel over streamed neural weights; swim =
#: almost pure stencil streaming.
EXTRA_PROFILES: dict[str, WorkloadProfile] = {
    "art": WorkloadProfile(
        name="art",
        body_size=512,
        segment_length=128,
        segment_switch_prob=0.03,
        mem_fraction=0.42,
        store_ratio=0.20,
        branch_fraction=0.10,
        fp_fraction=0.65,
        p_hot=0.30,
        p_stream=0.58,
        p_chase=0.0,
        p_stack=0.12,
        hot_blocks=48,
        zipf_s=1.2,
        hot_set_fraction=0.40,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=1,
        hot_readonly_fraction=0.20,
        n_streams=4,
        stream_region_blocks=24576,
        stack_blocks=8,
        phase_instructions=100_000,
        branch_predictability=0.97,
        dep_geometric_p=0.50,
        seed=97,
    ),
    "swim": WorkloadProfile(
        name="swim",
        body_size=640,
        segment_length=160,
        segment_switch_prob=0.02,
        mem_fraction=0.45,
        store_ratio=0.30,
        branch_fraction=0.08,
        fp_fraction=0.70,
        p_hot=0.18,
        p_stream=0.72,
        p_chase=0.0,
        p_stack=0.10,
        hot_blocks=40,
        zipf_s=1.0,
        hot_set_fraction=0.40,
        hot_heavy_fraction=0.40,
        hot_heavy_weight=1,
        hot_readonly_fraction=0.25,
        n_streams=8,
        stream_region_blocks=32768,
        stack_blocks=8,
        phase_instructions=120_000,
        branch_predictability=0.98,
        dep_geometric_p=0.55,
        seed=101,
    ),
}

#: The paper's eight plus the extended profiles, addressable by name.
ALL_PROFILES: dict[str, WorkloadProfile] = {**PROFILES, **EXTRA_PROFILES}
