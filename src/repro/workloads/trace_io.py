"""Trace persistence: save/load dynamic traces in a compact binary format.

Long sweeps regenerate the same synthetic traces repeatedly; persisting
them lets a cluster of runs (or an external tool) share one trace file.
The format is deliberately simple and self-describing:

    magic  b"ICRT"      4 bytes
    version u32         currently 1
    name_len u16 + utf-8 name
    count  u64          dynamic instructions
    8 zlib-compressed column blocks (op/dest/src1/src2/pc/addr/taken/target),
    each prefixed with its compressed byte length (u64)

Columns are stored as little-endian i64 (bool for ``taken``), matching the
in-memory structure-of-arrays layout of :class:`repro.cpu.isa.Trace`.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Union

from repro.cpu.isa import Trace

_MAGIC = b"ICRT"
_VERSION = 1
_COLUMNS = ("op", "dest", "src1", "src2", "pc", "addr", "taken", "target")


def _write_column(fh: BinaryIO, values, as_bool: bool) -> None:
    if as_bool:
        raw = bytes(1 if v else 0 for v in values)
    else:
        raw = struct.pack(f"<{len(values)}q", *values)
    compressed = zlib.compress(raw, level=6)
    fh.write(struct.pack("<Q", len(compressed)))
    fh.write(compressed)


def _read_column(fh: BinaryIO, count: int, as_bool: bool):
    (length,) = struct.unpack("<Q", fh.read(8))
    raw = zlib.decompress(fh.read(length))
    if as_bool:
        if len(raw) != count:
            raise ValueError("corrupt trace file: bool column size mismatch")
        return [b != 0 for b in raw]
    if len(raw) != count * 8:
        raise ValueError("corrupt trace file: column size mismatch")
    return list(struct.unpack(f"<{count}q", raw))


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* to *path* in the ICRT binary format."""
    trace.validate()
    name_bytes = trace.name.encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<I", _VERSION))
        fh.write(struct.pack("<H", len(name_bytes)))
        fh.write(name_bytes)
        fh.write(struct.pack("<Q", len(trace)))
        for column in _COLUMNS:
            _write_column(fh, getattr(trace, column), as_bool=column == "taken")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with open(path, "rb") as fh:
        if fh.read(4) != _MAGIC:
            raise ValueError(f"{path}: not an ICRT trace file")
        (version,) = struct.unpack("<I", fh.read(4))
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported trace version {version}")
        (name_len,) = struct.unpack("<H", fh.read(2))
        name = fh.read(name_len).decode("utf-8")
        (count,) = struct.unpack("<Q", fh.read(8))
        trace = Trace(name=name)
        for column in _COLUMNS:
            setattr(
                trace, column, _read_column(fh, count, as_bool=column == "taken")
            )
    trace.validate()
    return trace
