"""Synthetic SPEC2000-like workloads driving the evaluation."""

from repro.workloads.generator import (
    BLOCK,
    CHASE_BASE,
    CODE_BASE,
    HOT_BASE,
    STACK_BASE,
    STREAM_BASE,
    WorkloadGenerator,
    WorkloadProfile,
    trace_for,
)
from repro.workloads.spec2000 import BENCHMARKS, PROFILES, profile_for

__all__ = [
    "BLOCK",
    "CHASE_BASE",
    "CODE_BASE",
    "HOT_BASE",
    "STACK_BASE",
    "STREAM_BASE",
    "WorkloadGenerator",
    "WorkloadProfile",
    "trace_for",
    "BENCHMARKS",
    "PROFILES",
    "profile_for",
]
