"""Synthetic workload generation.

The paper drives its evaluation with eight SPEC2000 applications on
SimpleScalar.  Neither the binaries nor the simulator's EIO traces are
available here, so the reproduction generates *synthetic* dynamic traces
whose first-order properties — the ones every ICR result depends on — are
controlled per benchmark:

* **locality skew**: a Zipf-distributed hot working set ("hot data items
  are getting automatically replicated", Section 5.2), plus streaming,
  uniform pointer-chasing and stack components;
* **dL1 miss rate** (via working-set sizes and the region mix);
* **instruction mix** (loads/stores/ALU/FP/branches) and register-
  dependence distances (ILP available to hide latencies);
* **branch predictability** (fraction of strongly-biased branch sites);
* **set-pressure imbalance**: hot blocks are concentrated into a fraction
  of the dL1 sets, so their distance-N/2 replicas compete for the
  remaining sets — the effect behind the paper's observation that
  dead-only victim positions "may become less with high replication
  rates" (Section 5.1).

Code is laid out as *segments* (inner loops): execution iterates one
segment many times, then falls through to the next, like real hot loops.
Static sites keep their role across iterations — memory op + region,
branch + bias, filler class — which is what makes the branch predictor,
the BTB and the dead-block predictor behave sensibly.

Everything is seeded and deterministic: the same (profile, length, seed)
always yields the identical trace, so scheme comparisons are paired.
"""

from __future__ import annotations

import hashlib
import os
import random
from dataclasses import dataclass, fields
from functools import lru_cache
from pathlib import Path
from typing import Optional

from repro.cpu.isa import (
    OP_BRANCH,
    OP_FP_ALU,
    OP_FP_MUL,
    OP_INT_ALU,
    OP_INT_MUL,
    OP_LOAD,
    OP_STORE,
    Trace,
)

#: Virtual-address layout of the synthetic process image.
CODE_BASE = 0x0040_0000
# Stack lands in the upper dL1 sets (block index ≡ 48 mod 64), away from
# the hot region's home sets.
STACK_BASE = 0x7FFF_0C00
HOT_BASE = 0x1000_0000
STREAM_BASE = 0x2000_0000
CHASE_BASE = 0x4000_0000

BLOCK = 64  # bytes per cache line
_ZIPF_TABLE = 4096  # size of the precomputed Zipf alias table
_DL1_SETS = 64  # set count of the default 16KB/4-way/64B dL1 layout


@dataclass(frozen=True)
class WorkloadProfile:
    """Tunable characteristics of one synthetic benchmark."""

    name: str
    # Static code shape.
    body_size: int = 1024  # instructions of static code (4*body bytes)
    segment_length: int = 160  # instructions per inner loop
    segment_switch_prob: float = 0.06  # P(leave the loop) per iteration
    mem_fraction: float = 0.38
    store_ratio: float = 0.33  # stores / memory ops
    branch_fraction: float = 0.16
    fp_fraction: float = 0.0  # of the ALU filler, how much is FP
    mul_fraction: float = 0.04  # of the ALU filler, how much is mul/div
    # Data regions: probabilities that a memory site belongs to each.
    p_hot: float = 0.55
    p_stream: float = 0.25
    p_chase: float = 0.0
    p_stack: float = 0.20
    # Region shapes.
    hot_blocks: int = 160
    zipf_s: float = 0.9
    # Hot blocks are concentrated into this fraction of the (64) dL1 sets,
    # modeling the set-pressure imbalance of real data layouts.
    hot_set_fraction: float = 0.6
    # Within the hot span, a fraction of "heavy" sets receives this many
    # times the block density of the others.  Heavy sets overcommit their
    # associativity, so their distance-N/2 replica targets saturate — the
    # paper's "the number of such positions may become less with high
    # replication rates" effect that makes single attempts fail.
    hot_heavy_fraction: float = 0.4
    hot_heavy_weight: int = 3
    # Fraction of hot blocks that are never stored to.  Under the S trigger
    # these can never gain replicas, which is exactly the gap between the
    # S and LS curves of Figures 2 and 7.
    hot_readonly_fraction: float = 0.25
    n_streams: int = 4
    stream_region_blocks: int = 8192
    chase_region_blocks: int = 65536
    stack_blocks: int = 16
    # Program phases: every phase_instructions the hot region shifts to a
    # fresh (set-aligned) copy of itself, forcing refills — the mechanism
    # by which LS re-replicates read-only data that S never can (the
    # Figure 7 gap), and by which dead old-phase lines become replica homes.
    phase_instructions: int = 40_000
    # Branch behaviour: fraction of sites that are strongly biased.
    branch_predictability: float = 0.92
    # Register-dependence distance (geometric parameter; higher = more ILP).
    dep_geometric_p: float = 0.45
    # Probability that the instruction right after a load consumes the
    # loaded value (load-use dependence).  This is what exposes the 1- vs
    # 2-cycle load-hit latency difference between the schemes — with no
    # load-use chains an out-of-order core hides the ECC check entirely.
    load_use_prob: float = 0.65
    # Probability that a load's address depends on the previous load
    # (pointer-style chains).  Chains serialize loads at their hit latency,
    # which is what makes BaseECC's 2-cycle loads cost ~30% (Section 5.2)
    # instead of disappearing into the out-of-order window.
    load_chain_prob: float = 0.75
    seed: int = 0

    def __post_init__(self) -> None:
        total = self.p_hot + self.p_stream + self.p_chase + self.p_stack
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: region probabilities sum to {total}")
        if not 0.0 < self.mem_fraction < 1.0:
            raise ValueError("mem_fraction must be in (0, 1)")
        if self.body_size < 16 or self.segment_length < 8:
            raise ValueError("body/segment sizes too small")


@dataclass
class _Site:
    """Static properties of one instruction slot in the code."""

    op: int
    region: str = ""
    stream_id: int = 0
    branch_bias: float = 1.0
    is_loopback: bool = False


def _zipf_alias(n: int, s: float, rng: random.Random) -> list[int]:
    """A table of block ranks sampled from Zipf(s) over ``n`` items."""
    weights = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(weights)
    table: list[int] = []
    acc = 0.0
    rank = 0
    for i in range(_ZIPF_TABLE):
        threshold = (i + 0.5) / _ZIPF_TABLE * total
        while acc + weights[rank] < threshold and rank < n - 1:
            acc += weights[rank]
            rank += 1
        table.append(rank)
    rng.shuffle(table)
    return table


class WorkloadGenerator:
    """Generates :class:`~repro.cpu.isa.Trace` objects from a profile."""

    def __init__(self, profile: WorkloadProfile):
        self.profile = profile
        if profile.body_size % profile.segment_length:
            self.n_segments = profile.body_size // profile.segment_length + 1
        else:
            self.n_segments = profile.body_size // profile.segment_length

    def _build_sites(self, rng: random.Random) -> list[_Site]:
        """Lay out the static code: segments of sites, loopback at each end."""
        p = self.profile
        sites: list[_Site] = []
        for position in range(p.body_size):
            if (position + 1) % p.segment_length == 0 or position == p.body_size - 1:
                # Segment-closing branch: taken = iterate the loop again.
                sites.append(_Site(op=OP_BRANCH, is_loopback=True))
                continue
            roll = rng.random()
            if roll < p.mem_fraction:
                region_roll = rng.random()
                if region_roll < p.p_hot:
                    region = "hot"
                elif region_roll < p.p_hot + p.p_stream:
                    region = "stream"
                elif region_roll < p.p_hot + p.p_stream + p.p_chase:
                    region = "chase"
                else:
                    region = "stack"
                is_store = rng.random() < p.store_ratio
                sites.append(
                    _Site(
                        op=OP_STORE if is_store else OP_LOAD,
                        region=region,
                        stream_id=rng.randrange(p.n_streams),
                    )
                )
            elif roll < p.mem_fraction + p.branch_fraction:
                if rng.random() < p.branch_predictability:
                    bias = 0.97 if rng.random() < 0.8 else 0.03
                else:
                    bias = rng.uniform(0.35, 0.65)
                sites.append(_Site(op=OP_BRANCH, branch_bias=bias))
            else:
                fp = rng.random() < p.fp_fraction
                mul = rng.random() < p.mul_fraction
                if fp:
                    sites.append(_Site(op=OP_FP_MUL if mul else OP_FP_ALU))
                else:
                    sites.append(_Site(op=OP_INT_MUL if mul else OP_INT_ALU))
        return sites

    def generate(self, n_instructions: int, seed_offset: int = 0) -> Trace:
        """Produce a deterministic dynamic trace of *n_instructions*."""
        p = self.profile
        rng = random.Random((p.seed << 16) ^ 0xC0FFEE ^ seed_offset)
        sites = self._build_sites(rng)
        zipf = _zipf_alias(p.hot_blocks, p.zipf_s, rng)
        trace = Trace(name=p.name)

        # Hot-region layout: rank -> block number concentrated into the
        # first hot_set_fraction of dL1 sets, with heavy sets receiving
        # hot_heavy_weight times the density; plus the read-only block map.
        span = max(1, round(_DL1_SETS * p.hot_set_fraction))
        n_heavy = max(0, round(span * p.hot_heavy_fraction))
        set_cycle: list[int] = []
        for s in range(span):
            copies = p.hot_heavy_weight if s < n_heavy else 1
            set_cycle.extend([s] * copies)
        used: dict[int, int] = {}  # set -> blocks assigned so far
        hot_block_of = []
        for rank in range(p.hot_blocks):
            s = set_cycle[rank % len(set_cycle)]
            hot_block_of.append(used.get(s, 0) * _DL1_SETS + s)
            used[s] = used.get(s, 0) + 1
        # Set-aligned stride between phase copies of the hot region.
        phase_stride = (max(hot_block_of) // _DL1_SETS + 2) * _DL1_SETS
        # The hottest few blocks are always read-write (real hot data is);
        # read-only blocks — lookup tables, constants — live in the tail.
        readonly = [
            rank >= 8
            and ((rank * 0x9E3779B1) % (1 << 32)) % 1000
            < p.hot_readonly_fraction * 1000
            for rank in range(p.hot_blocks)
        ]
        writable_ranks = [r for r in range(p.hot_blocks) if not readonly[r]] or [0]
        store_rank_of = [
            min(writable_ranks, key=lambda w: abs(w - rank)) if readonly[rank] else rank
            for rank in range(p.hot_blocks)
        ]

        stream_cursors = [
            rng.randrange(p.stream_region_blocks) * BLOCK for _ in range(p.n_streams)
        ]
        stream_span = p.stream_region_blocks * BLOCK
        recent_dests = [0] * 32
        dest_head = 0
        body = len(sites)
        seg_len = p.segment_length
        switch_prob = p.segment_switch_prob
        randrange = rng.randrange
        rand = rng.random
        dep_p = p.dep_geometric_p

        position = 0  # current static position within the body
        segment_start = 0
        phase_offset = 0
        last_load_dest = 0
        phase_len = max(1, p.phase_instructions)
        for instr_index in range(n_instructions):
            if instr_index % phase_len == 0:
                phase_offset = (instr_index // phase_len) * phase_stride * BLOCK
            site = sites[position]
            pc = CODE_BASE + 4 * position
            op = site.op
            # Register dependences: sources reach back geometrically.
            dist1 = 1
            while rand() > dep_p and dist1 < 24:
                dist1 += 1
            dist2 = 1
            while rand() > dep_p and dist2 < 24:
                dist2 += 1
            src1 = recent_dests[(dest_head - dist1) % 32]
            src2 = recent_dests[(dest_head - dist2) % 32]
            if last_load_dest and rand() < p.load_use_prob:
                src1 = last_load_dest  # load-use dependence
            dest = 1 + randrange(31)

            if op == OP_LOAD or op == OP_STORE:
                region = site.region
                if region == "hot":
                    rank = zipf[randrange(_ZIPF_TABLE)]
                    if op == OP_STORE:
                        rank = store_rank_of[rank]
                    addr = (
                        HOT_BASE
                        + phase_offset
                        + hot_block_of[rank] * BLOCK
                        + randrange(8) * 8
                    )
                elif region == "stream":
                    sid = site.stream_id
                    cursor = stream_cursors[sid]
                    stream_cursors[sid] = (cursor + 8) % stream_span
                    addr = STREAM_BASE + sid * stream_span + cursor
                elif region == "chase":
                    addr = CHASE_BASE + randrange(p.chase_region_blocks) * BLOCK
                    addr += randrange(8) * 8
                else:  # stack
                    addr = STACK_BASE + randrange(p.stack_blocks * 8) * 8
                if op == OP_STORE:
                    trace.append(op, 0, src1, src2, pc, addr)
                else:
                    if last_load_dest and rand() < p.load_chain_prob:
                        src1 = last_load_dest  # address chains off prior load
                    trace.append(op, dest, src1, 0, pc, addr)
                position += 1
            elif op == OP_BRANCH:
                if site.is_loopback:
                    # Taken = iterate this segment again; fall through to
                    # the next segment when the loop "exits".
                    taken = rand() >= switch_prob
                    if taken:
                        target = CODE_BASE + 4 * segment_start
                        trace.append(op, 0, src1, 0, pc, 0, True, target)
                        position = segment_start
                    else:
                        trace.append(op, 0, src1, 0, pc, 0, False, 0)
                        position += 1
                        segment_start = position if position < body else 0
                else:
                    taken = rand() < site.branch_bias
                    trace.append(op, 0, src1, 0, pc, 0, taken, pc + 16)
                    # Direction is modeled for the predictor; control flow
                    # stays on the fall-through path of the segment.
                    position += 1
            else:
                trace.append(op, dest, src1, src2, pc)
                position += 1

            if position >= body:
                position = 0
                segment_start = 0
            recent_dests[dest_head % 32] = dest
            dest_head += 1
            if op == OP_LOAD:
                last_load_dest = dest
            elif dest == last_load_dest:
                last_load_dest = 0  # the loaded value was overwritten
        return trace


@lru_cache(maxsize=1)
def _generator_version() -> str:
    """Digest of the trace-producing sources (this file and the ISA).

    Part of every trace-cache key: editing the generator or the trace
    format invalidates all persisted traces, never serves stale ones.
    """
    from repro.cpu import isa

    digest = hashlib.blake2b(digest_size=8)
    for module_file in (__file__, isa.__file__):
        digest.update(Path(module_file).read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def trace_key(
    profile: WorkloadProfile, n_instructions: int, seed_offset: int = 0
) -> str:
    """Stable content hash for one generated trace.

    Keyed on the full profile parameter set (a digest — renaming a
    profile field or changing any value changes the key), the requested
    length and the seed offset, plus the generator code version.
    """
    payload = repr(
        (
            _generator_version(),
            tuple(
                (f.name, repr(getattr(profile, f.name)))
                for f in fields(profile)
            ),
            n_instructions,
            seed_offset,
        )
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def trace_cache_dir() -> Optional[Path]:
    """Directory for persisted traces, or ``None`` when disabled.

    ``REPRO_TRACE_CACHE=0`` disables persistence; ``REPRO_TRACE_CACHE_DIR``
    relocates it; otherwise traces live beside the result cache
    (``$REPRO_CACHE_DIR/traces`` or ``~/.cache/repro/traces``).
    """
    if os.environ.get("REPRO_TRACE_CACHE", "") == "0":
        return None
    explicit = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if explicit:
        return Path(explicit).expanduser()
    base = os.environ.get("REPRO_CACHE_DIR")
    if base:
        return Path(base).expanduser() / "traces"
    return Path.home() / ".cache" / "repro" / "traces"


def _load_persisted(path: Path) -> Optional[Trace]:
    from repro.workloads.trace_io import load_trace

    try:
        return load_trace(path)
    except FileNotFoundError:
        return None
    except (OSError, ValueError):
        # Corrupt or truncated: drop it and regenerate.
        try:
            path.unlink()
        except OSError:
            pass
        return None


def _persist(trace: Trace, path: Path) -> None:
    from repro.workloads.trace_io import save_trace

    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        save_trace(trace, tmp)
        os.replace(tmp, path)
    except OSError:
        return  # a read-only or full cache dir never fails the run


@lru_cache(maxsize=64)
def trace_for(
    profile: WorkloadProfile, n_instructions: int, seed_offset: int = 0
) -> Trace:
    """Memoized trace generation — scheme sweeps reuse the identical trace.

    Two layers: an in-process LRU (the profile is a frozen dataclass, so
    it is hashable) makes scheme comparisons *paired* within one process,
    and an on-disk store (ICRT files under :func:`trace_cache_dir`, keyed
    by :func:`trace_key`) shares each generated trace across the worker
    processes of a sweep and across runs.  The binary round-trip is exact,
    so a loaded trace is equal-by-value to a freshly generated one.
    """
    directory = trace_cache_dir()
    if directory is None:
        return WorkloadGenerator(profile).generate(n_instructions, seed_offset)
    path = directory / f"{trace_key(profile, n_instructions, seed_offset)}.icrt"
    trace = _load_persisted(path)
    if trace is None:
        trace = WorkloadGenerator(profile).generate(n_instructions, seed_offset)
        _persist(trace, path)
    return trace
