"""Cycle-stepped reference pipeline for validating the fast model.

:mod:`repro.cpu.pipeline` schedules each instruction with O(1) work using
a greedy scoreboard — fast, but an approximation.  This module implements
the same machine as an explicit cycle-by-cycle simulation with real
structures (a dispatch queue, an RUU window with per-entry state, an LSQ
occupancy counter, functional-unit busy lists, an in-order commit stage).
It is 1-2 orders of magnitude slower and exists for one purpose: the
cross-validation tests assert that the fast model's cycle counts stay
within a small band of this reference on identical traces, so the
figure-level *relative* results cannot be artifacts of the scheduling
approximation.

Both models share the branch predictor and the memory hierarchy, so any
divergence is purely in instruction scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import MemoryHierarchy
from repro.cpu.branch import CombinedPredictor
from repro.cpu.funits import DEFAULT_SPECS, FUSpec
from repro.cpu.isa import OP_BRANCH, OP_LOAD, OP_STORE, Trace
from repro.cpu.pipeline import PipelineConfig, PipelineResult

_OP_TO_POOL = {
    0: "int_alu",  # OP_INT_ALU
    1: "int_mul",
    2: "fp_alu",
    3: "fp_mul",
    4: "mem_port",  # OP_LOAD
    5: "mem_port",  # OP_STORE
    6: "int_alu",  # OP_BRANCH resolves on an integer ALU
}


@dataclass
class _Entry:
    """One RUU entry."""

    index: int
    op: int
    dest: int
    src1: int
    src2: int
    pc: int
    addr: int
    taken: bool
    target: int
    issued: bool = False
    complete_at: int = -1  # cycle the result is available; -1 = not issued
    done: bool = False
    # Renaming: the entries producing this entry's source values (None =
    # the value comes from architectural state and is always ready).
    wait1: "object" = None
    wait2: "object" = None


class ReferencePipeline:
    """Explicit cycle-stepped out-of-order core (validation only)."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        config: PipelineConfig | None = None,
        predictor: CombinedPredictor | None = None,
    ):
        self.hierarchy = hierarchy
        self.config = config or PipelineConfig()
        self.predictor = predictor or CombinedPredictor()
        specs = dict(DEFAULT_SPECS)
        if self.config.fu_specs:
            specs.update(self.config.fu_specs)
        self.specs: dict[str, FUSpec] = specs

    def run(self, trace: Trace) -> PipelineResult:
        cfg = self.config
        hierarchy = self.hierarchy
        predictor = self.predictor
        n = len(trace)

        window: list[_Entry] = []  # RUU in program order
        next_fetch = 0  # next trace index to dispatch
        fetch_stalled_until = 0  # redirect / icache stall
        writers: dict[int, _Entry] = {}  # register -> youngest in-flight writer
        unit_free: dict[str, list[int]] = {
            name: [0] * spec.count for name, spec in self.specs.items()
        }
        lsq_used = 0
        committed = 0
        loads = stores = branches = mispredicts = 0
        cycle = 0
        max_cycles_guard = 200 * n + 10_000

        while committed < n:
            # ---- commit stage: retire completed entries in order --------
            commits_left = cfg.issue_width
            while window and commits_left:
                head = window[0]
                if not head.done or head.complete_at > cycle:
                    break
                window.pop(0)
                if head.op == OP_LOAD or head.op == OP_STORE:
                    lsq_used -= 1
                committed += 1
                commits_left -= 1

            # ---- issue stage: wake up ready entries ---------------------
            for entry in window:
                if entry.issued:
                    if not entry.done and entry.complete_at <= cycle:
                        entry.done = True
                    continue
                ready = all(
                    wait is None or (0 <= wait.complete_at <= cycle)
                    for wait in (entry.wait1, entry.wait2)
                )
                if not ready:
                    continue
                pool = _OP_TO_POOL[entry.op]
                frees = unit_free[pool]
                best = min(range(len(frees)), key=frees.__getitem__)
                if frees[best] > cycle:
                    continue  # structural hazard
                frees[best] = cycle + self.specs[pool].interval
                entry.issued = True
                if entry.op == OP_LOAD:
                    latency = hierarchy.load(entry.addr, cycle)
                elif entry.op == OP_STORE:
                    latency = hierarchy.store(entry.addr, cycle)
                elif entry.op == OP_BRANCH:
                    latency = self.specs[pool].latency
                    if predictor.access(entry.pc, entry.taken, entry.target):
                        mispredicts += 1
                        redirect = cycle + latency + cfg.mispredict_penalty
                        if redirect > fetch_stalled_until:
                            fetch_stalled_until = redirect
                else:
                    latency = self.specs[pool].latency
                entry.complete_at = cycle + latency

            # Mark freshly completed results.
            for entry in window:
                if entry.issued and not entry.done and entry.complete_at <= cycle:
                    entry.done = True

            # ---- dispatch stage -----------------------------------------
            dispatched = 0
            while (
                next_fetch < n
                and dispatched < cfg.issue_width
                and len(window) < cfg.ruu_size
                and cycle >= fetch_stalled_until
            ):
                op = trace.op[next_fetch]
                is_mem = op == OP_LOAD or op == OP_STORE
                if is_mem and lsq_used >= cfg.lsq_size:
                    break
                fetch_latency = hierarchy.fetch(trace.pc[next_fetch], cycle)
                if fetch_latency > 1:
                    fetch_stalled_until = cycle + fetch_latency - 1
                entry = _Entry(
                    index=next_fetch,
                    op=op,
                    dest=trace.dest[next_fetch],
                    src1=trace.src1[next_fetch],
                    src2=trace.src2[next_fetch],
                    pc=trace.pc[next_fetch],
                    addr=trace.addr[next_fetch],
                    taken=trace.taken[next_fetch],
                    target=trace.target[next_fetch],
                )
                # Rename sources to their youngest prior in-flight writer.
                if entry.src1:
                    entry.wait1 = writers.get(entry.src1)
                if entry.src2:
                    entry.wait2 = writers.get(entry.src2)
                window.append(entry)
                if is_mem:
                    lsq_used += 1
                    if op == OP_LOAD:
                        loads += 1
                    else:
                        stores += 1
                elif op == OP_BRANCH:
                    branches += 1
                if entry.dest:
                    writers[entry.dest] = entry
                dispatched += 1
                next_fetch += 1
                if fetch_latency > 1:
                    break  # front end frozen by the iL1 miss

            cycle += 1
            if cycle > max_cycles_guard:  # pragma: no cover - safety net
                raise RuntimeError("reference pipeline wedged")

        return PipelineResult(
            cycles=cycle,
            instructions=n,
            loads=loads,
            stores=stores,
            branches=branches,
            mispredicts=mispredicts,
            predictor_stats=predictor.stats,
        )
