"""Branch prediction: the combined predictor + BTB of Table 1.

SimpleScalar's ``comb`` predictor: a bimodal table and a two-level global
predictor run in parallel, and a chooser (meta) table of 2-bit counters
picks which one to believe per branch.  Table 1's sizes: bimodal 2K-entry,
two-level with 1K-entry pattern table and 8 bits of global history, and a
512-entry 4-way BTB.  A conditional branch mispredicts when the chosen
direction is wrong, or when it is (correctly) predicted taken but the BTB
cannot supply the target.  Misprediction costs 3 cycles (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass


def _counter_update(counter: int, taken: bool) -> int:
    """2-bit saturating counter step."""
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


@dataclass
class PredictorStats:
    branches: int = 0
    direction_mispredicts: int = 0
    btb_misses: int = 0

    @property
    def mispredicts(self) -> int:
        return self.direction_mispredicts + self.btb_misses

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0


class CombinedPredictor:
    """Bimodal + gshare-style two-level, arbitrated by a chooser table."""

    def __init__(
        self,
        bimodal_entries: int = 2048,
        l2_entries: int = 1024,
        history_bits: int = 8,
        chooser_entries: int = 2048,
        btb_sets: int = 128,
        btb_ways: int = 4,
    ):
        for n, what in (
            (bimodal_entries, "bimodal_entries"),
            (l2_entries, "l2_entries"),
            (chooser_entries, "chooser_entries"),
            (btb_sets, "btb_sets"),
        ):
            if n <= 0 or n & (n - 1):
                raise ValueError(f"{what} must be a power of two")
        self.bimodal = [2] * bimodal_entries  # weakly taken
        self.l2_table = [2] * l2_entries
        self.chooser = [2] * chooser_entries  # weakly prefer two-level
        self.history = 0
        self.history_mask = (1 << history_bits) - 1
        self._bi_mask = bimodal_entries - 1
        self._l2_mask = l2_entries - 1
        self._ch_mask = chooser_entries - 1
        self.btb_sets = btb_sets
        self.btb_ways = btb_ways
        # BTB ways store (tag, target, stamp) tuples.
        self.btb: list[list[tuple[int, int, int]]] = [[] for _ in range(btb_sets)]
        self._btb_clock = 0
        self.stats = PredictorStats()

    # -- index helpers ------------------------------------------------------

    def _bi_index(self, pc: int) -> int:
        return (pc >> 2) & self._bi_mask

    def _l2_index(self, pc: int) -> int:
        return ((pc >> 2) ^ (self.history << 2)) & self._l2_mask

    def _ch_index(self, pc: int) -> int:
        return (pc >> 2) & self._ch_mask

    # -- BTB ----------------------------------------------------------------

    def _btb_lookup(self, pc: int) -> int | None:
        entry_set = self.btb[(pc >> 2) & (self.btb_sets - 1)]
        tag = pc >> 2
        for stored_tag, target, _ in entry_set:
            if stored_tag == tag:
                return target
        return None

    def _btb_insert(self, pc: int, target: int) -> None:
        index = (pc >> 2) & (self.btb_sets - 1)
        entry_set = self.btb[index]
        tag = pc >> 2
        self._btb_clock += 1
        for i, (stored_tag, _, _) in enumerate(entry_set):
            if stored_tag == tag:
                entry_set[i] = (tag, target, self._btb_clock)
                return
        if len(entry_set) >= self.btb_ways:
            victim = min(range(len(entry_set)), key=lambda i: entry_set[i][2])
            entry_set.pop(victim)
        entry_set.append((tag, target, self._btb_clock))

    # -- predict / update ----------------------------------------------------

    def predict(self, pc: int) -> tuple[bool, int | None]:
        """Predicted (direction, target-or-None) for the branch at *pc*."""
        bimodal_taken = self.bimodal[self._bi_index(pc)] >= 2
        l2_taken = self.l2_table[self._l2_index(pc)] >= 2
        use_l2 = self.chooser[self._ch_index(pc)] >= 2
        taken = l2_taken if use_l2 else bimodal_taken
        target = self._btb_lookup(pc) if taken else None
        return taken, target

    def access(self, pc: int, taken: bool, target: int) -> bool:
        """Predict, then update with the resolved outcome.

        Returns ``True`` when the branch *mispredicted* (direction wrong,
        or predicted taken without a BTB-supplied correct target).
        """
        self.stats.branches += 1
        bi_index = self._bi_index(pc)
        l2_index = self._l2_index(pc)
        ch_index = self._ch_index(pc)
        bimodal_taken = self.bimodal[bi_index] >= 2
        l2_taken = self.l2_table[l2_index] >= 2
        use_l2 = self.chooser[ch_index] >= 2
        predicted_taken = l2_taken if use_l2 else bimodal_taken

        mispredict = predicted_taken != taken
        if mispredict:
            self.stats.direction_mispredicts += 1
        elif taken:
            known_target = self._btb_lookup(pc)
            if known_target != target:
                self.stats.btb_misses += 1
                mispredict = True

        # Update component tables with the true outcome (2-bit saturating
        # counters, inlined — this runs once per branch instruction).
        bimodal = self.bimodal
        l2_table = self.l2_table
        if taken:
            if bimodal[bi_index] < 3:
                bimodal[bi_index] += 1
            if l2_table[l2_index] < 3:
                l2_table[l2_index] += 1
        else:
            if bimodal[bi_index] > 0:
                bimodal[bi_index] -= 1
            if l2_table[l2_index] > 0:
                l2_table[l2_index] -= 1
        if bimodal_taken != l2_taken:
            # Reward whichever component was right.
            chooser = self.chooser
            if l2_taken == taken:
                if chooser[ch_index] < 3:
                    chooser[ch_index] += 1
            elif chooser[ch_index] > 0:
                chooser[ch_index] -= 1
        self.history = ((self.history << 1) | int(taken)) & self.history_mask
        if taken:
            self._btb_insert(pc, target)
        return mispredict
