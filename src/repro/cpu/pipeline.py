"""Out-of-order timing model in the spirit of SimpleScalar's sim-outorder.

A scoreboard scheduler walks the dynamic trace once (O(1) work per
instruction) and computes, for every instruction, when it could dispatch,
issue, complete and retire on the Table 1 machine:

* **dispatch** is limited by the 4-wide issue width, by RUU occupancy
  (an instruction cannot enter until the one 16 slots earlier retired),
  by LSQ occupancy for memory ops, by instruction fetch (iL1 misses), and
  by branch-misprediction redirects (resolve + 3 cycles);
* **issue** waits for source operands (register scoreboard) and for a free
  functional unit of the right class;
* **completion** adds the unit or cache latency — loads ask the memory
  hierarchy, which is where the per-scheme 1- vs 2-cycle hit costs and the
  miss costs enter the model;
* **retirement** is in order, up to ``issue_width`` per cycle.

This greedy schedule is the standard fast approximation of an out-of-order
core: it captures what matters for the paper — load-latency sensitivity,
miss overlap within the RUU window, store buffering, and write-buffer
stalls — while staying fast enough to sweep ten schemes over eight
workloads in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.hierarchy import MemoryHierarchy
from repro.cpu.branch import CombinedPredictor, PredictorStats
from repro.cpu.funits import FunctionalUnits, FUSpec
from repro.cpu.isa import OP_BRANCH, OP_LOAD, OP_STORE, Trace


@dataclass(frozen=True)
class PipelineConfig:
    """Core parameters (defaults = Table 1)."""

    issue_width: int = 4
    ruu_size: int = 16
    lsq_size: int = 8
    mispredict_penalty: int = 3
    fu_specs: dict[str, FUSpec] | None = None

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.ruu_size <= 0 or self.lsq_size <= 0:
            raise ValueError("pipeline parameters must be positive")


@dataclass
class PipelineResult:
    """Outcome of one timed run."""

    cycles: int
    instructions: int
    loads: int
    stores: int
    branches: int
    mispredicts: int
    predictor_stats: PredictorStats = field(default_factory=PredictorStats)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0


class OutOfOrderPipeline:
    """Scoreboard-scheduled superscalar core bound to a memory hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        config: PipelineConfig | None = None,
        predictor: CombinedPredictor | None = None,
    ):
        self.hierarchy = hierarchy
        self.config = config or PipelineConfig()
        self.predictor = predictor or CombinedPredictor()
        self.funits = FunctionalUnits(self.config.fu_specs)

    def run(self, trace: Trace, reset_stats_at: int = 0) -> PipelineResult:
        """Schedule the whole trace; returns timing and branch statistics.

        *reset_stats_at* > 0 zeroes the hierarchy's counters after that
        many instructions have been scheduled — warm-up exclusion for
        short traces (cycle counts still cover the whole run; the cache
        and predictor state stays warm).
        """
        cfg = self.config
        hierarchy = self.hierarchy
        predictor = self.predictor
        issue = self.funits.issue
        width = cfg.issue_width
        ruu_size = cfg.ruu_size
        lsq_size = cfg.lsq_size
        penalty = cfg.mispredict_penalty

        reg_ready = [0] * 64  # generous: src/dest indices are < 32
        # Ring buffers of retirement times for RUU/LSQ occupancy limits.
        ruu_ring = [0] * ruu_size
        lsq_ring = [0] * lsq_size

        dispatch_cycle = 0  # cycle currently accepting dispatches
        dispatched_in_cycle = 0
        redirect_floor = 0  # no dispatch before this (mispredict redirect)
        retire_cycle = 0
        retired_in_cycle = 0
        last_retire = 0
        mem_index = 0
        loads = stores = branches = mispredicts = 0

        ops = trace.op
        dests = trace.dest
        src1s = trace.src1
        src2s = trace.src2
        pcs = trace.pc
        addrs = trace.addr
        takens = trace.taken
        targets = trace.target

        for i in range(len(ops)):
            if i == reset_stats_at and i > 0:
                hierarchy.stats.reset()
            op = ops[i]
            # --- dispatch constraints ---
            earliest = redirect_floor
            ruu_free = ruu_ring[i % ruu_size]
            if ruu_free > earliest:
                earliest = ruu_free
            is_mem = op == OP_LOAD or op == OP_STORE
            if is_mem:
                lsq_free = lsq_ring[mem_index % lsq_size]
                if lsq_free > earliest:
                    earliest = lsq_free
            if earliest > dispatch_cycle:
                dispatch_cycle = earliest
                dispatched_in_cycle = 1
            else:
                dispatched_in_cycle += 1
                if dispatched_in_cycle > width:
                    dispatch_cycle += 1
                    dispatched_in_cycle = 1
            dispatch = dispatch_cycle

            # --- instruction fetch (charged on new fetch blocks) ---
            fetch_latency = hierarchy.fetch(pcs[i], dispatch)
            if fetch_latency > 1:
                # An iL1 miss freezes the front end.
                dispatch += fetch_latency - 1
                dispatch_cycle = dispatch
                dispatched_in_cycle = 1

            # --- operand readiness and functional-unit issue ---
            ready = dispatch
            t = reg_ready[src1s[i]]
            if t > ready:
                ready = t
            t = reg_ready[src2s[i]]
            if t > ready:
                ready = t
            start, unit_latency = issue(op, ready)

            # --- execution ---
            if op == OP_LOAD:
                loads += 1
                complete = start + hierarchy.load(addrs[i], start)
            elif op == OP_STORE:
                stores += 1
                complete = start + hierarchy.store(addrs[i], start)
            elif op == OP_BRANCH:
                branches += 1
                complete = start + unit_latency
                if predictor.access(pcs[i], takens[i], targets[i]):
                    mispredicts += 1
                    floor = complete + penalty
                    if floor > redirect_floor:
                        redirect_floor = floor
            else:
                complete = start + unit_latency

            dest = dests[i]
            if dest:
                reg_ready[dest] = complete

            # --- in-order retirement, up to `width` per cycle ---
            retire = complete if complete > last_retire else last_retire
            if retire > retire_cycle:
                retire_cycle = retire
                retired_in_cycle = 1
            else:
                retired_in_cycle += 1
                if retired_in_cycle > width:
                    retire_cycle += 1
                    retired_in_cycle = 1
                retire = retire_cycle
            last_retire = retire
            ruu_ring[i % ruu_size] = retire
            if is_mem:
                lsq_ring[mem_index % lsq_size] = retire
                mem_index += 1

        return PipelineResult(
            cycles=last_retire,
            instructions=len(ops),
            loads=loads,
            stores=stores,
            branches=branches,
            mispredicts=mispredicts,
            predictor_stats=predictor.stats,
        )
