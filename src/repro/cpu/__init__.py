"""sim-outorder-like CPU timing substrate."""

from repro.cpu.branch import CombinedPredictor, PredictorStats
from repro.cpu.funits import DEFAULT_SPECS, FunctionalUnits, FUSpec
from repro.cpu.isa import (
    MEMORY_OPS,
    N_REGS,
    OP_BRANCH,
    OP_FP_ALU,
    OP_FP_MUL,
    OP_INT_ALU,
    OP_INT_MUL,
    OP_LOAD,
    OP_NAMES,
    OP_STORE,
    Trace,
)
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineConfig, PipelineResult

__all__ = [
    "CombinedPredictor",
    "PredictorStats",
    "DEFAULT_SPECS",
    "FunctionalUnits",
    "FUSpec",
    "MEMORY_OPS",
    "N_REGS",
    "OP_BRANCH",
    "OP_FP_ALU",
    "OP_FP_MUL",
    "OP_INT_ALU",
    "OP_INT_MUL",
    "OP_LOAD",
    "OP_NAMES",
    "OP_STORE",
    "Trace",
    "OutOfOrderPipeline",
    "PipelineConfig",
    "PipelineResult",
]
