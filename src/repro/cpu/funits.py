"""Functional-unit pools (Table 1).

Each pool models *n* identical units with an operation latency and an issue
interval (how long one operation occupies the unit before the next can
start; 1 = fully pipelined).  Reservation is greedy: an operation takes the
unit that frees earliest, starting no earlier than its operands are ready.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import (
    OP_BRANCH,
    OP_FP_ALU,
    OP_FP_MUL,
    OP_INT_ALU,
    OP_INT_MUL,
    OP_LOAD,
    OP_STORE,
)


@dataclass(frozen=True)
class FUSpec:
    """One pool: unit count, result latency, issue interval."""

    count: int
    latency: int
    interval: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0 or self.latency <= 0 or self.interval <= 0:
            raise ValueError("functional-unit parameters must be positive")


#: SimpleScalar-flavoured defaults for the Table 1 machine.
DEFAULT_SPECS: dict[str, FUSpec] = {
    "int_alu": FUSpec(count=4, latency=1),
    "int_mul": FUSpec(count=1, latency=3, interval=1),
    "fp_alu": FUSpec(count=4, latency=2),
    "fp_mul": FUSpec(count=1, latency=4, interval=1),
    # Cache ports for loads/stores (address generation + access issue).
    "mem_port": FUSpec(count=2, latency=1),
}

_OP_TO_POOL = {
    OP_INT_ALU: "int_alu",
    OP_INT_MUL: "int_mul",
    OP_FP_ALU: "fp_alu",
    OP_FP_MUL: "fp_mul",
    OP_LOAD: "mem_port",
    OP_STORE: "mem_port",
    OP_BRANCH: "int_alu",  # branches resolve on an integer ALU
}


class _Pool:
    __slots__ = ("spec", "free_at")

    def __init__(self, spec: FUSpec):
        self.spec = spec
        self.free_at = [0] * spec.count

    def reserve(self, ready: int) -> int:
        """Claim a unit; returns the operation's start cycle."""
        free = self.free_at
        best = 0
        best_time = free[0]
        for i in range(1, len(free)):
            if free[i] < best_time:
                best_time = free[i]
                best = i
        start = ready if ready >= best_time else best_time
        free[best] = start + self.spec.interval
        return start


class FunctionalUnits:
    """All pools of the machine, addressed by operation class."""

    def __init__(self, specs: dict[str, FUSpec] | None = None):
        self.specs = dict(DEFAULT_SPECS)
        if specs:
            self.specs.update(specs)
        self._pools = {name: _Pool(spec) for name, spec in self.specs.items()}
        # op -> (shared free_at list, latency, interval): one lookup per
        # issue on the per-instruction hot path.  Pools shared by several
        # ops (mem_port, int_alu) share the same free_at list object.
        self._by_op: dict[int, tuple[list[int], int, int]] = {
            op: (
                self._pools[name].free_at,
                self._pools[name].spec.latency,
                self._pools[name].spec.interval,
            )
            for op, name in _OP_TO_POOL.items()
        }

    def issue(self, op: int, ready: int) -> tuple[int, int]:
        """Reserve the right pool for *op*; returns (start, unit latency)."""
        free, latency, interval = self._by_op[op]
        best = 0
        best_time = free[0]
        for i in range(1, len(free)):
            t = free[i]
            if t < best_time:
                best_time = t
                best = i
        start = ready if ready >= best_time else best_time
        free[best] = start + interval
        return start, latency

    def latency_of(self, op: int) -> int:
        return self.specs[_OP_TO_POOL[op]].latency
