"""Micro-op trace format consumed by the timing pipeline.

The reproduction is trace-driven: a workload is a sequence of dynamic
instructions, each carrying exactly the fields the timing model needs —
operation class, register dependences, PC, and (for memory ops) the
effective address, (for branches) the resolved direction and target.

Operation classes mirror SimpleScalar's functional-unit classes
(Table 1: 4 integer ALUs, 1 integer mul/div, 4 FP ALUs, 1 FP mul/div,
plus loads, stores and branches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Operation classes (kept as plain ints for speed in the pipeline loop).
OP_INT_ALU = 0
OP_INT_MUL = 1
OP_FP_ALU = 2
OP_FP_MUL = 3
OP_LOAD = 4
OP_STORE = 5
OP_BRANCH = 6

OP_NAMES = {
    OP_INT_ALU: "int_alu",
    OP_INT_MUL: "int_mul",
    OP_FP_ALU: "fp_alu",
    OP_FP_MUL: "fp_mul",
    OP_LOAD: "load",
    OP_STORE: "store",
    OP_BRANCH: "branch",
}

MEMORY_OPS = (OP_LOAD, OP_STORE)

#: Architectural register count (register 0 reads as always-ready).
N_REGS = 32


@dataclass
class Trace:
    """A dynamic instruction trace in structure-of-arrays form.

    Parallel lists (one entry per dynamic instruction):

    * ``op``     — operation class (``OP_*`` constant);
    * ``dest``   — destination register (0 = none);
    * ``src1``/``src2`` — source registers (0 = no dependence);
    * ``pc``     — instruction address;
    * ``addr``   — effective address for loads/stores, else 0;
    * ``taken``  — resolved direction for branches, else False;
    * ``target`` — resolved target for branches, else 0.
    """

    op: list[int] = field(default_factory=list)
    dest: list[int] = field(default_factory=list)
    src1: list[int] = field(default_factory=list)
    src2: list[int] = field(default_factory=list)
    pc: list[int] = field(default_factory=list)
    addr: list[int] = field(default_factory=list)
    taken: list[bool] = field(default_factory=list)
    target: list[int] = field(default_factory=list)
    name: str = "trace"

    def __len__(self) -> int:
        return len(self.op)

    def append(
        self,
        op: int,
        dest: int = 0,
        src1: int = 0,
        src2: int = 0,
        pc: int = 0,
        addr: int = 0,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        self.op.append(op)
        self.dest.append(dest)
        self.src1.append(src1)
        self.src2.append(src2)
        self.pc.append(pc)
        self.addr.append(addr)
        self.taken.append(taken)
        self.target.append(target)

    def mix(self) -> dict[str, float]:
        """Fraction of each operation class (diagnostics and tests)."""
        total = len(self)
        if not total:
            return {}
        counts: dict[int, int] = {}
        for op in self.op:
            counts[op] = counts.get(op, 0) + 1
        return {OP_NAMES[k]: v / total for k, v in sorted(counts.items())}

    def memory_fraction(self) -> float:
        total = len(self)
        if not total:
            return 0.0
        return sum(1 for op in self.op if op in MEMORY_OPS) / total

    def validate(self) -> None:
        """Sanity-check structural invariants; raises on violation."""
        n = len(self.op)
        for column_name in ("dest", "src1", "src2", "pc", "addr", "taken", "target"):
            column = getattr(self, column_name)
            if len(column) != n:
                raise ValueError(f"column {column_name} has {len(column)} != {n} rows")
        for i, op in enumerate(self.op):
            if op not in OP_NAMES:
                raise ValueError(f"instruction {i} has unknown op {op}")
            if op in MEMORY_OPS and self.addr[i] < 0:
                raise ValueError(f"memory op {i} has negative address")
            if not 0 <= self.dest[i] < N_REGS:
                raise ValueError(f"instruction {i} writes bad register")
