"""Process-wide recovery telemetry: counters plus rate-limited warnings.

Every layer of the execution stack degrades gracefully instead of
failing — corrupt cache entries are quarantined and recomputed, broken
worker pools are rebuilt, torn checkpoints are retired, dead lease
holders are taken over, full disks stop persistence but never stop the
run.  Each of those recoveries is deliberately quiet at the call site
(the caller sees a miss, a retry, a fresh start — never an exception),
which makes a central ledger essential: operators must be able to see
that the system *is* degrading, and how often.

This module is that ledger.  It is import-light (stdlib only), safe to
call from any thread, and deliberately process-global: the CLI prints
its snapshot on the stderr metrics line, the service exposes it under
``/v1/telemetry`` as the ``recovery`` section, and the chaos suite
asserts its counters moved when faults were injected.

Counters (all monotonic within a process):

``cache_quarantined``
    Corrupt/truncated result-cache entries renamed to ``*.corrupt`` and
    recomputed.
``cache_write_errors``
    Result-cache persists that failed (read-only or full disk) and were
    dropped without failing the run.
``checkpoint_quarantined``
    Campaign checkpoints that failed to load and were renamed to
    ``*.corrupt`` so the campaign restarts its cells cleanly.
``checkpoint_write_errors``
    Campaign checkpoint writes that failed and were skipped (the
    campaign continues, minus durability).
``breaker_trips``
    Campaign cells failed by the per-cell circuit breaker after
    repeated exhausted trials.
``trial_log_errors``
    Trial-log appends that failed (observability only; the trial's
    record is unaffected).
``pool_rebuilds``
    Worker pools recreated after the previous pool broke (a worker
    died hard enough to poison the executor).
``native_fallbacks``
    Compiled phase-2 kernels that failed to build/load, silently
    replaced by the bit-identical pure-Python loop.
``lease_takeovers``
    Stale file leases broken and re-acquired after their holder died.
``queue_save_errors``
    Service job-queue persists that failed and degraded to
    memory-only records.
``event_log_errors``
    Service progress-event appends that failed (the stream continues
    from memory).
``jobs_resumed``
    Non-terminal service jobs re-dispatched from the persistent queue
    at boot.
``campaigns_resumed``
    Campaign engines that re-attached to an existing checkpoint instead
    of starting from scratch.
``client_retries``
    :class:`~repro.service.client.ServiceClient` requests retried after
    a retryable failure.
``sse_reconnects``
    Client SSE streams re-established mid-job via ``?since=``.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional, TextIO

_lock = threading.Lock()
_counters: dict[str, int] = {}
_last_warn: dict[str, float] = {}

#: Minimum seconds between repeated warnings for the same component —
#: a cache with a thousand corrupt entries produces one line, not a
#: thousand.
WARN_INTERVAL = 5.0


def count(name: str, n: int = 1) -> int:
    """Increment counter *name* by *n*; returns the new value."""
    with _lock:
        value = _counters.get(name, 0) + n
        _counters[name] = value
        return value


def counter(name: str) -> int:
    """The current value of counter *name* (0 if never incremented)."""
    with _lock:
        return _counters.get(name, 0)


def snapshot() -> dict[str, int]:
    """A copy of every counter (the telemetry payload)."""
    with _lock:
        return dict(sorted(_counters.items()))


def reset() -> None:
    """Zero every counter (tests only)."""
    with _lock:
        _counters.clear()
        _last_warn.clear()


def warn(component: str, message: str, *, stream: Optional[TextIO] = None) -> bool:
    """Emit one ``[recover]`` line to stderr, rate-limited per component.

    Returns True when the line was actually printed (the chaos suite
    asserts on the counters, never on the lines, so suppression is
    always safe).
    """
    now = time.monotonic()
    with _lock:
        last = _last_warn.get(component, -WARN_INTERVAL)
        if now - last < WARN_INTERVAL:
            return False
        _last_warn[component] = now
    out = stream if stream is not None else sys.stderr
    try:
        print(f"[recover] {component}: {message}", file=out)
    except Exception:
        return False  # a broken stderr must never break recovery itself
    return True


def summary() -> str:
    """One compact line of the nonzero counters (CLI stderr metrics)."""
    snap = {k: v for k, v in snapshot().items() if v}
    if not snap:
        return ""
    parts = [f"{v} {k.replace('_', ' ')}" for k, v in snap.items()]
    return "[recover] " + " · ".join(parts)
