"""The one blessed public surface of the ``repro`` package.

Everything an external consumer — a script, a plugin package, the
bundled simulation service (:mod:`repro.service`), or a remote client —
should import lives here, and ``__all__`` *is* the compatibility
contract: names in it are frozen (pinned by
``tests/test_public_api_surface.py``); everything else in the package
is internal and may move without notice.  The service deliberately
imports the simulator only through this module, so the facade staying
frozen is what keeps the wire protocol stable.

The surface, by role:

* **Specs** — :class:`ExperimentSpec` (the frozen value that *is* one
  simulation; its canonical :meth:`~ExperimentSpec.key` doubles as the
  cache key and the service's idempotency token), :class:`MachineConfig`
  and the spec's JSON wire form (``spec.to_dict()`` /
  ``ExperimentSpec.from_dict``).
* **Results** — :class:`SimulationResult` plus its lossless plain-data
  round-trip :func:`result_to_dict` / :func:`result_from_dict`.
* **Execution** — :func:`run_experiment` (one spec, one result),
  :class:`ParallelRunner` (batch/incremental execution with caching,
  timeouts, retries), :class:`ResultCache` (the content-addressed disk
  store) and :class:`ReadThroughCache` (the sharded in-memory LRU tier
  the service serves hot results from).
* **Campaigns** — :class:`CampaignConfig`, :func:`run_campaign`,
  :func:`create_engine`, :class:`CampaignReport`.
* **Scheme catalog & plugins** — :func:`list_schemes` /
  :func:`get_scheme` over the registry, :class:`SchemeInfo` /
  :class:`SchemeEntry`, :func:`register_scheme` for external scheme
  packages, the :class:`DataL1` / :class:`InjectionTarget` plugin
  protocols with :class:`DL1Outcome`, :func:`check_scheme` (a
  behavioural conformance check external packages run in their own
  test suites), and :class:`UnknownSchemeError` — the uniform
  unknown-scheme failure (CLI exit 2, HTTP 400).
"""

from __future__ import annotations

from repro.core.protocol import (
    DataL1,
    DL1Outcome,
    InjectionTarget,
    check_scheme,
)
from repro.core.registry import (
    SchemeEntry,
    SchemeInfo,
    UnknownSchemeError,
    get_scheme,
    list_schemes,
)
from repro.core.registry import (
    register as register_scheme,
)
from repro.harness.cache import (
    ReadThroughCache,
    ResultCache,
    result_from_dict,
    result_to_dict,
)
from repro.harness.campaign import (
    CampaignConfig,
    CampaignReport,
    create_engine,
    run_campaign,
)
from repro.harness.experiment import SimulationResult, run_experiment
from repro.harness.runner import ParallelRunner
from repro.harness.spec import DEFAULT_INSTRUCTIONS, ExperimentSpec, MachineConfig

__all__ = [
    # specs
    "DEFAULT_INSTRUCTIONS",
    "ExperimentSpec",
    "MachineConfig",
    # results
    "SimulationResult",
    "result_from_dict",
    "result_to_dict",
    # execution
    "ParallelRunner",
    "ReadThroughCache",
    "ResultCache",
    "run_experiment",
    # campaigns
    "CampaignConfig",
    "CampaignReport",
    "create_engine",
    "run_campaign",
    # scheme catalog & plugins
    "DL1Outcome",
    "DataL1",
    "InjectionTarget",
    "SchemeEntry",
    "SchemeInfo",
    "UnknownSchemeError",
    "check_scheme",
    "get_scheme",
    "list_schemes",
    "register_scheme",
]
