"""Process-wide chaos runtime: plan activation, hooks, exactly-once firing.

The production code paths (runner, cache, campaign) call the tiny hook
functions in this module at their fault sites.  With no plan installed
every hook is a near-free no-op — one global ``is None`` check — so the
chaos layer costs nothing outside chaos runs.

Two mechanisms make the injected faults deterministic across an
arbitrary process tree:

* **Env-var transport.**  :func:`install` publishes the plan (JSON) and
  the scratch directory through ``REPRO_CHAOS_PLAN`` /
  ``REPRO_CHAOS_SCRATCH``; :func:`active` lazily re-reads them, so pool
  workers — whether forked or spawned — observe the same plan as the
  parent without any plumbing through the runner API.
* **Marker files.**  Each scheduled fault fires *exactly once per run*,
  claimed by an ``O_CREAT | O_EXCL`` marker file in the scratch
  directory keyed by ``(kind, site)``.  This is the crux of the
  byte-identical-report contract: the runner retries a crashed trial
  with the *same* spec, so the retry must sail through where the first
  attempt died — a per-process counter would fault again on the retry,
  escalate to the campaign's fresh-seed retry, and change the report.
  The filesystem marker is shared by every process, so the retry (in
  the parent, or in a rebuilt pool) finds the fault already spent.

Only the standard library is imported here (plus the plain-data plan),
so the runner, cache and campaign can import this module without any
circularity.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.chaos.plan import FAULT_KINDS, FaultPlan

#: Environment transport (read by every process of the run).
ENV_PLAN = "REPRO_CHAOS_PLAN"
ENV_SCRATCH = "REPRO_CHAOS_SCRATCH"

#: Process-local cache of the installed plan: unset / (plan, scratch) /
#: (None, None) when the env says chaos is off.
_STATE: list = []


class ChaosWorkerDeath(RuntimeError):
    """An injected worker death (the in-process flavor of SIGKILL)."""


def install(plan: FaultPlan, scratch_dir) -> None:
    """Activate *plan* for this process and everything it spawns.

    *scratch_dir* holds the exactly-once marker files; point every
    participating process of one chaos run at the same directory.
    """
    scratch = Path(scratch_dir)
    scratch.mkdir(parents=True, exist_ok=True)
    os.environ[ENV_PLAN] = plan.to_json()
    os.environ[ENV_SCRATCH] = str(scratch)
    _STATE.clear()
    _STATE.append((plan, scratch))


def uninstall() -> None:
    """Deactivate chaos for this process and future children."""
    os.environ.pop(ENV_PLAN, None)
    os.environ.pop(ENV_SCRATCH, None)
    _STATE.clear()
    _STATE.append((None, None))


def active() -> Optional[FaultPlan]:
    """The installed plan, or None; lazily adopted from the environment."""
    if not _STATE:
        text = os.environ.get(ENV_PLAN)
        if not text:
            _STATE.append((None, None))
        else:
            try:
                plan = FaultPlan.from_json(text)
            except (ValueError, TypeError):
                _STATE.append((None, None))
            else:
                scratch = Path(
                    os.environ.get(ENV_SCRATCH)
                    or Path(tempfile.gettempdir()) / "repro-chaos"
                )
                _STATE.append((plan, scratch))
    return _STATE[0][0]


def _scratch() -> Path:
    active()
    return _STATE[0][1]


def _claim(kind: str, key: str) -> bool:
    """Claim the one firing of (kind, key); True for the first claimer.

    The marker is a zero-byte ``O_EXCL`` file shared by all processes
    of the run — at most one attempt anywhere ever sees True, so a
    retry of the same site passes clean.
    """
    digest = hashlib.blake2b(key.encode(), digest_size=12).hexdigest()
    path = _scratch() / f"{kind}.{digest}"
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    except OSError:
        return True  # unwritable scratch: fire anyway, dedup is best-effort
    os.close(fd)
    return True


def _fire(kind: str, key: str) -> bool:
    """Decide + claim in one step (the shape every hook uses)."""
    plan = active()
    if plan is None or not plan.decide(kind, key):
        return False
    return _claim(kind, key)


def fired() -> dict[str, int]:
    """How many faults of each kind have fired so far (marker census)."""
    counts = dict.fromkeys(FAULT_KINDS, 0)
    plan = active()
    if plan is None:
        return counts
    try:
        names = os.listdir(_scratch())
    except OSError:
        return counts
    for name in names:
        kind = name.split(".", 1)[0]
        if kind in counts:
            counts[kind] += 1
    return counts


# -- hooks (called from the production fault sites) -----------------------


def check_trial(key: str) -> Optional[str]:
    """The fault scheduled for this trial execution: "kill", "timeout"
    or None.  Kill wins when both are scheduled (it is the harsher
    failure)."""
    if active() is None:
        return None
    if _fire("kill", key):
        return "kill"
    if _fire("timeout", key):
        return "timeout"
    return None


def damage_cache_entry(key: str, path) -> bool:
    """Corrupt or truncate the just-written cache entry at *path*.

    Models a torn write / bit rot landing between a store and the next
    read; the reader's quarantine-and-recompute path is what the chaos
    suite is really testing.  Returns True when damage was done.
    """
    if active() is None:
        return False
    path = Path(path)
    try:
        if _fire("truncate", key):
            path.write_text("")
            return True
        if _fire("corrupt", key):
            data = path.read_bytes()
            path.write_bytes(b"\x00garbage\x00" + data[: len(data) // 2])
            return True
    except OSError:
        return False
    return False


def check_disk_full(site: str, key: str) -> None:
    """Raise ``ENOSPC`` once for this persistence write, if scheduled.

    Call *inside* the caller's existing OSError-degradation block — the
    injected error must travel the same path a real full disk would.
    """
    if active() is None:
        return
    if _fire("disk_full", f"{site}\x00{key}"):
        raise OSError(28, "No space left on device (chaos)")


def tear_checkpoint(key: str) -> bool:
    """Whether this checkpoint write should be persisted half-written."""
    if active() is None:
        return False
    return _fire("torn_checkpoint", key)


def summary() -> Optional[dict]:
    """Plan + firing census (scenario reports); None when inactive."""
    plan = active()
    if plan is None:
        return None
    return {"plan": json.loads(plan.to_json()), "fired": fired()}
