"""End-to-end chaos scenarios: inject faults, demand byte-identical reports.

Each scenario stages one failure mode from the fault model (DESIGN.md
§15) against the *real* execution stack — no mocks — and then checks the
recovery contract from the outside:

* the final campaign report must be **byte-identical** to an
  undisturbed reference run of the same config (faults may cost time,
  never results);
* the :mod:`repro.recovery` ledger must show that the degradation
  actually happened (a chaos run where nothing fired proves nothing).

Scenarios are deterministic: every fault decision is a pure hash of
``(plan seed, fault kind, site key)`` and fires exactly once per run
(see :mod:`repro.chaos.runtime`), so a failing scenario replays
identically under the same ``--seed``.

This module imports the whole harness and the service — keep it out of
``repro.chaos.__init__`` (the runtime hooks must stay import-light).
Run via ``repro-icr chaos`` or ``tests/chaos/``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro import recovery
from repro.chaos import runtime
from repro.chaos.plan import FaultPlan
from repro.harness.cache import FileLease, ResultCache
from repro.harness.campaign import CampaignConfig, create_engine
from repro.harness.runner import ParallelRunner


class ScenarioError(AssertionError):
    """A scenario's recovery contract was violated."""


@dataclass
class ScenarioContext:
    """Per-scenario sandbox: a private workdir plus the plan seed."""

    workdir: Path
    seed: int


@dataclass
class ScenarioResult:
    name: str
    passed: bool
    detail: str
    duration: float


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


def _config(seed: int, **overrides) -> CampaignConfig:
    """The small two-cell campaign every scenario runs (seconds, not
    minutes — the point is the fault path, not statistical power)."""
    base = dict(
        benchmarks=("gzip",),
        schemes=("BaseP", "ICR-P-PS(S)"),
        error_rates=(1e-2,),
        trials=4,
        batch_size=2,
        min_trials=2,
        n_instructions=2500,
        seed0=seed,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def _run_report(
    config: CampaignConfig,
    cache_dir: Path,
    *,
    jobs: int = 1,
    scheduler: str = "round",
    **engine_kwargs,
) -> tuple[str, dict]:
    """One full campaign run; (report JSON, engine telemetry)."""
    runner = ParallelRunner(jobs=jobs, cache=ResultCache(cache_dir=cache_dir))
    engine = create_engine(config, runner, scheduler=scheduler, **engine_kwargs)
    report = engine.run()
    return report.to_json(), engine.telemetry()


def _normalize(report_obj) -> str:
    """Canonical byte form for report comparison across the wire."""
    return json.dumps(report_obj, sort_keys=True, separators=(",", ":"))


# -- scenarios -------------------------------------------------------------


def scenario_cache_corruption(ctx: ScenarioContext) -> str:
    """Every cache entry is damaged post-write; a later run must
    quarantine and recompute, landing on the identical report."""
    config = _config(ctx.seed)
    ref, _ = _run_report(config, ctx.workdir / "ref-cache")
    cache_dir = ctx.workdir / "chaos-cache"
    plan = FaultPlan(seed=ctx.seed, corrupt_rate=1.0, truncate_rate=0.5)
    runtime.install(plan, ctx.workdir / "scratch")
    try:
        first, _ = _run_report(config, cache_dir)
        fired = runtime.fired()
    finally:
        runtime.uninstall()
    damaged = fired["corrupt"] + fired["truncate"]
    _check(damaged >= 1, "no cache entries were damaged")
    _check(first == ref, "report diverged during the damaging run")
    before = recovery.counter("cache_quarantined")
    second, _ = _run_report(config, cache_dir)
    quarantined = recovery.counter("cache_quarantined") - before
    _check(second == ref, "report diverged after quarantine + recompute")
    _check(quarantined >= 1, "no corrupt entries were quarantined")
    return f"{damaged} entries damaged, {quarantined} quarantined, report identical"


def scenario_worker_crash(ctx: ScenarioContext) -> str:
    """Every trial's first pool attempt dies by SIGKILL; the rebuilt
    pools and in-parent retries must land on the identical report."""
    config = _config(ctx.seed)
    ref, _ = _run_report(config, ctx.workdir / "ref-cache")
    plan = FaultPlan(seed=ctx.seed, kill_rate=1.0)
    before = recovery.counter("pool_rebuilds")
    runtime.install(plan, ctx.workdir / "scratch")
    try:
        chaotic, telemetry = _run_report(
            config,
            ctx.workdir / "chaos-cache",
            jobs=2,
            scheduler="stealing",
            workers=2,
        )
        kills = runtime.fired()["kill"]
    finally:
        runtime.uninstall()
    rebuilds = recovery.counter("pool_rebuilds") - before
    _check(kills >= 1, "no workers were killed")
    _check(chaotic == ref, "report diverged under worker kills")
    _check(telemetry["runner"]["retries"] >= 1, "kills never forced a retry")
    return f"{kills} workers killed, {rebuilds} pool rebuilds, report identical"


def scenario_forced_timeout(ctx: ScenarioContext) -> str:
    """Every trial's first attempt hits the job timeout; retries of the
    same spec must land on the identical report."""
    config = _config(ctx.seed)
    ref, _ = _run_report(config, ctx.workdir / "ref-cache")
    plan = FaultPlan(seed=ctx.seed, timeout_rate=1.0)
    runtime.install(plan, ctx.workdir / "scratch")
    try:
        chaotic, telemetry = _run_report(config, ctx.workdir / "chaos-cache")
        timeouts = runtime.fired()["timeout"]
    finally:
        runtime.uninstall()
    _check(timeouts >= 1, "no timeouts fired")
    _check(chaotic == ref, "report diverged under forced timeouts")
    _check(telemetry["runner"]["retries"] >= 1, "timeouts never forced a retry")
    return f"{timeouts} forced timeouts retried, report identical"


def scenario_torn_checkpoint(ctx: ScenarioContext) -> str:
    """A writer dies mid-checkpoint (half the payload persisted); the
    next engine must quarantine it and still produce the identical
    report from the result cache."""
    config = _config(ctx.seed)
    ref, _ = _run_report(config, ctx.workdir / "ref-cache")
    cache_dir = ctx.workdir / "chaos-cache"
    ckpt = ctx.workdir / "ckpt.json"
    plan = FaultPlan(seed=ctx.seed, torn_checkpoint_rate=1.0)
    runtime.install(plan, ctx.workdir / "scratch")
    try:
        runner = ParallelRunner(
            jobs=1, cache=ResultCache(cache_dir=cache_dir)
        )
        engine = create_engine(config, runner, checkpoint_path=ckpt)
        engine.run(max_rounds=1)  # the exit flush is the (torn) write
        torn = runtime.fired()["torn_checkpoint"]
    finally:
        runtime.uninstall()
    _check(torn >= 1, "the checkpoint write was never torn")
    _check(ckpt.exists(), "no checkpoint file was left behind")
    before = recovery.counter("checkpoint_quarantined")
    second, _ = _run_report(config, cache_dir, checkpoint_path=ckpt)
    quarantined = recovery.counter("checkpoint_quarantined") - before
    _check(quarantined >= 1, "the torn checkpoint was not quarantined")
    _check(
        ckpt.with_suffix(".corrupt").exists(),
        "the torn checkpoint was not preserved for diagnosis",
    )
    _check(second == ref, "report diverged after checkpoint quarantine")
    return "torn checkpoint quarantined, campaign restarted, report identical"


def scenario_disk_full(ctx: ScenarioContext) -> str:
    """Every persistence site hits ENOSPC once; the run must finish
    from memory with the identical report."""
    config = _config(ctx.seed)
    ref, _ = _run_report(config, ctx.workdir / "ref-cache")
    plan = FaultPlan(seed=ctx.seed, disk_full_rate=1.0)
    cache_before = recovery.counter("cache_write_errors")
    ckpt_before = recovery.counter("checkpoint_write_errors")
    runtime.install(plan, ctx.workdir / "scratch")
    try:
        chaotic, _ = _run_report(
            config,
            ctx.workdir / "chaos-cache",
            checkpoint_path=ctx.workdir / "ckpt.json",
        )
        enospc = runtime.fired()["disk_full"]
    finally:
        runtime.uninstall()
    cache_errors = recovery.counter("cache_write_errors") - cache_before
    ckpt_errors = recovery.counter("checkpoint_write_errors") - ckpt_before
    _check(enospc >= 2, "too few ENOSPC faults fired")
    _check(chaotic == ref, "report diverged under a full disk")
    _check(cache_errors >= 1, "cache writes never degraded")
    _check(ckpt_errors >= 1, "checkpoint writes never degraded")
    return (
        f"{enospc} ENOSPC faults absorbed "
        f"({cache_errors} cache, {ckpt_errors} checkpoint), report identical"
    )


def scenario_lease_takeover(ctx: ScenarioContext) -> str:
    """A dead engine's stale lease blocks a cell; the scheduler must
    break it, take the cell over, and produce the identical report."""
    config = _config(ctx.seed)
    ref, _ = _run_report(config, ctx.workdir / "ref-cache")
    share = ctx.workdir / "share"
    (share / "leases").mkdir(parents=True, exist_ok=True)
    runner = ParallelRunner(
        jobs=1, cache=ResultCache(cache_dir=ctx.workdir / "chaos-cache")
    )
    engine = create_engine(
        config,
        runner,
        scheduler="stealing",
        share_dir=share,
        lease_ttl=5.0,
    )
    cell = config.cells()[0]
    lease_path = share / "leases" / f"{engine._cell_hash(cell)}.lease"
    ghost = FileLease(lease_path, "ghost:dead:0", ttl=5.0)
    _check(ghost.acquire(), "could not stage the ghost lease")
    stale = time.time() - 120.0
    os.utime(lease_path, times=(stale, stale))
    before = recovery.counter("lease_takeovers")
    report = engine.run().to_json()
    takeovers = recovery.counter("lease_takeovers") - before
    _check(takeovers >= 1, "the stale lease was never broken")
    _check(report == ref, "report diverged after the lease takeover")
    return f"{takeovers} stale lease(s) taken over, report identical"


_SERVER_SCRIPT = """\
import asyncio
import sys

from repro.service import ServiceConfig, SimulationService


async def main():
    config = ServiceConfig(
        host="127.0.0.1",
        port=0,
        workers=1,
        cache_dir=sys.argv[1],
        queue_dir=sys.argv[2],
        campaign_scheduler="round",
        checkpoint_every_trials=1,
        checkpoint_interval=0.05,
    )
    service = SimulationService(config)
    await service.start()
    print(f"PORT {service.port}", flush=True)
    await service._server.serve_forever()


asyncio.run(main())
"""


def _start_server(
    script: Path, cache_dir: Path, queue_dir: Path, log: Path
) -> tuple[subprocess.Popen, int]:
    with log.open("a") as err:
        proc = subprocess.Popen(
            [sys.executable, str(script), str(cache_dir), str(queue_dir)],
            stdout=subprocess.PIPE,
            stderr=err,
            text=True,
        )
    assert proc.stdout is not None
    line = proc.stdout.readline().strip()
    if not line.startswith("PORT "):
        proc.kill()
        proc.wait(timeout=10)
        raise ScenarioError(
            f"server never announced its port (got {line!r}); see {log}"
        )
    return proc, int(line.split()[1])


def _checkpoint_records(path: Path) -> int:
    try:
        payload = json.loads(path.read_text())
        return sum(
            len(v) for v in payload.get("cells", {}).values()
            if isinstance(v, list)
        )
    except (OSError, ValueError, AttributeError):
        return 0


def scenario_service_restart(ctx: ScenarioContext) -> str:
    """SIGKILL the job server mid-campaign; the restarted server must
    resume from the checkpoint (no full re-run) and finish with the
    identical report."""
    from repro.service import ServiceClient

    campaign = dict(
        benchmarks=["gzip"],
        schemes=["BaseP", "ICR-P-PS(S)"],
        error_rates=[1e-2],
        trials=12,
        batch_size=2,
        min_trials=2,
        n_instructions=8000,
        seed0=ctx.seed,
        backend="object",
    )
    local_config = CampaignConfig(**campaign)
    total_trials = local_config.trials * len(local_config.cells())
    ref, _ = _run_report(local_config, ctx.workdir / "ref-cache")
    script = ctx.workdir / "server.py"
    script.write_text(_SERVER_SCRIPT)
    svc_cache = ctx.workdir / "svc-cache"
    queue_dir = ctx.workdir / "queue"
    log = ctx.workdir / "server.log"

    proc, port = _start_server(script, svc_cache, queue_dir, log)
    try:
        client = ServiceClient(port=port, timeout=30.0)
        job_id = client.submit_campaign(campaign)["job"]["id"]
        ckpt = queue_dir / f"{job_id}.ckpt.json"
        deadline = time.monotonic() + 60.0
        committed = 0
        while time.monotonic() < deadline:
            committed = _checkpoint_records(ckpt)
            if committed >= 1:
                break
            time.sleep(0.005)
        _check(committed >= 1, "no checkpoint appeared before the kill window")
        state = client.job(job_id)["job"]["state"]
        _check(
            state != "done",
            "campaign finished before the kill — enlarge its budget",
        )
    finally:
        proc.kill()
        proc.wait(timeout=10)

    proc2, port2 = _start_server(script, svc_cache, queue_dir, log)
    try:
        client2 = ServiceClient(port=port2, timeout=30.0)
        payload = client2.wait(job_id, timeout=180.0)
        _check(
            payload["job"]["state"] == "done",
            f"resumed campaign failed: {payload['job'].get('error')}",
        )
        events = list(client2.events(job_id, timeout=30.0))
        telemetry = client2.telemetry()
    finally:
        proc2.kill()
        proc2.wait(timeout=10)

    resumed = [e for e in events if e["event"] == "resumed"]
    _check(bool(resumed), "the restarted server never emitted a resumed event")
    resumed_trials = resumed[-1].get("trials_committed", 0)
    _check(
        resumed_trials >= 1,
        "the resumed event shows no trials recovered from the checkpoint",
    )
    _check(
        _normalize(payload["report"]) == _normalize(json.loads(ref)),
        "service report diverged from the local reference after restart",
    )
    second_life_jobs = telemetry["campaigns"][job_id]["runner"]["jobs"]
    _check(
        second_life_jobs <= total_trials - resumed_trials,
        f"restart re-ran checkpointed work: {second_life_jobs} jobs submitted "
        f"with {resumed_trials}/{total_trials} trials already committed",
    )
    return (
        f"resumed {resumed_trials}/{total_trials} trials from checkpoint, "
        f"{second_life_jobs} submitted after restart, report identical"
    )


#: Registry: scenario name -> callable(ctx) -> success detail line.
SCENARIOS: dict[str, Callable[[ScenarioContext], str]] = {
    "cache-corruption": scenario_cache_corruption,
    "worker-crash": scenario_worker_crash,
    "forced-timeout": scenario_forced_timeout,
    "torn-checkpoint": scenario_torn_checkpoint,
    "disk-full": scenario_disk_full,
    "lease-takeover": scenario_lease_takeover,
    "service-restart": scenario_service_restart,
}


def run_scenario(name: str, *, workdir, seed: int = 0) -> ScenarioResult:
    """Run one scenario in its own subdirectory of *workdir*."""
    fn = SCENARIOS[name]
    ctx = ScenarioContext(workdir=Path(workdir) / name, seed=seed)
    ctx.workdir.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    try:
        detail = fn(ctx)
        passed = True
    except ScenarioError as exc:
        detail, passed = str(exc), False
    except Exception:
        tail = traceback.format_exc().strip().splitlines()[-1]
        detail, passed = f"crashed: {tail}", False
    finally:
        runtime.uninstall()
    return ScenarioResult(name, passed, detail, time.monotonic() - started)


def run_suite(
    names: Optional[list[str]] = None, *, workdir, seed: int = 0
) -> list[ScenarioResult]:
    """Run the named scenarios (default: all) and collect the results."""
    unknown = sorted(set(names or ()) - set(SCENARIOS))
    if unknown:
        raise ValueError(
            f"unknown scenario(s): {', '.join(unknown)} "
            f"(choose from {', '.join(SCENARIOS)})"
        )
    return [
        run_scenario(name, workdir=workdir, seed=seed)
        for name in (names or list(SCENARIOS))
    ]
