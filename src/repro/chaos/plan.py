"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is the *entire* description of a chaos run: a seed
plus per-fault-kind probabilities.  Whether a particular fault fires at
a particular site is a pure function of ``(seed, kind, site key)`` — a
blake2b hash mapped onto the unit interval and compared against the
kind's rate — so a chaos run is exactly as reproducible as the
simulations it disturbs: same seed, same faults, same recoveries, and
(because every fault lands beneath a retry or quarantine boundary) the
same final report, byte for byte.

The plan is plain data on purpose.  It serializes to one JSON object so
:mod:`repro.chaos.runtime` can ship it to pool workers through an
environment variable, and it contains no callables or state — all
"fire at most once" bookkeeping lives in the runtime's marker files,
shared by every process of the run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

#: Everything the runtime knows how to inject, with the plan field
#: carrying each kind's probability.
FAULT_KINDS = (
    "kill",  # worker death (os._exit in pool workers, raise in-process)
    "timeout",  # forced per-job timeout
    "corrupt",  # garble a result-cache entry after it lands on disk
    "truncate",  # truncate a result-cache entry after it lands on disk
    "torn_checkpoint",  # campaign checkpoint persisted half-written
    "disk_full",  # ENOSPC from a persistence write
)


@dataclass(frozen=True)
class FaultPlan:
    """One seeded schedule of faults (rates in [0, 1] per site)."""

    seed: int = 0
    kill_rate: float = 0.0
    timeout_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    torn_checkpoint_rate: float = 0.0
    disk_full_rate: float = 0.0

    def __post_init__(self):
        for kind in FAULT_KINDS:
            rate = self.rate(kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate {rate!r} outside [0, 1]")

    def rate(self, kind: str) -> float:
        """The configured probability for *kind* (raises on unknown)."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return getattr(self, f"{kind}_rate")

    def decide(self, kind: str, key: str) -> bool:
        """Whether *kind* is scheduled at site *key* (pure, seeded).

        The same (plan, kind, key) triple always answers the same way,
        in every process of the run — that is what makes a chaos run
        reproducible and its marker-file dedup race-free.
        """
        rate = self.rate(kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.blake2b(
            f"{self.seed}\x00{kind}\x00{key}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") < rate * 2.0**64

    def any_faults(self) -> bool:
        """True when at least one kind has a nonzero rate."""
        return any(self.rate(kind) > 0.0 for kind in FAULT_KINDS)

    def to_json(self) -> str:
        """Compact JSON wire form (the env-var transport payload)."""
        return json.dumps(
            dataclasses.asdict(self), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json` (raises on malformed input)."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        allowed = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ValueError(f"unknown fault plan field(s): {', '.join(unknown)}")
        return cls(**data)
