"""Deterministic fault injection for the execution stack.

``repro.chaos`` turns the harness's own failure modes — killed workers,
corrupted cache entries, torn checkpoints, dead lease holders, full
disks, a server restarted mid-campaign — into scheduled, seeded,
reproducible events, and the chaos suite then pins the recovery
contract: a campaign run under a :class:`FaultPlan` must produce a
final report **byte-identical** to the undisturbed run.

Layout:

* :mod:`repro.chaos.plan` — the frozen :class:`FaultPlan` (seed +
  per-kind rates; every decision a pure hash).
* :mod:`repro.chaos.runtime` — process-wide activation (env-var
  transport to pool workers), exactly-once marker files, and the hook
  functions the runner/cache/campaign call at their fault sites.
* :mod:`repro.chaos.scenarios` — the end-to-end scenario suite behind
  ``repro-icr chaos`` and ``tests/chaos/``.  Imported lazily (it pulls
  in the whole harness); keep it out of this namespace.
"""

from repro.chaos.plan import FAULT_KINDS, FaultPlan
from repro.chaos.runtime import active, fired, install, uninstall

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "active",
    "fired",
    "install",
    "uninstall",
]
