"""Victim-cache baseline (Jouppi-style) for the Section 5.6 comparison.

When ICR leaves replicas in place after a primary eviction, a later miss
can be served from the replica in 2 cycles — "mak[ing] the cache appear
to have higher associativity sometimes [18]".  The classical way to buy
that effect is a dedicated fully-associative *victim cache* that captures
evicted lines.  This module implements it so the two can be compared:
how many dL1 misses does each structure catch, and at what area cost?

* The victim cache holds whole evicted lines (dirty state preserved).
* A dL1 miss probes it; a hit swaps the line back in 2 cycles (same cost
  we charge ICR's replica fills).
* ICR's "victim cache" is free — it lives in the dL1's dead space —
  but only holds lines that were replicated before eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.cache.set_assoc import CacheGeometry
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.workloads.generator import trace_for
from repro.workloads.spec2000 import profile_for


@dataclass
class VictimCacheStats:
    insertions: int = 0
    probes: int = 0
    hits: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0


class VictimCache:
    """Small fully-associative buffer of recently evicted lines."""

    def __init__(self, entries: int = 16):
        if entries <= 0:
            raise ValueError("victim cache needs at least one entry")
        self.entries = entries
        self.stats = VictimCacheStats()
        self._lines: dict[int, tuple[int, bool]] = {}  # addr -> (stamp, dirty)
        self._clock = 0

    def insert(self, block_addr: int, dirty: bool) -> None:
        self._clock += 1
        if block_addr not in self._lines and len(self._lines) >= self.entries:
            victim = min(self._lines, key=lambda a: self._lines[a][0])
            del self._lines[victim]
            self.stats.evictions += 1
        self._lines[block_addr] = (self._clock, dirty)
        self.stats.insertions += 1

    def extract(self, block_addr: int) -> tuple[bool, bool]:
        """Probe for a line; returns (hit, dirty) and removes it on hit."""
        self.stats.probes += 1
        entry = self._lines.pop(block_addr, None)
        if entry is None:
            return False, False
        self.stats.hits += 1
        return True, entry[1]


class VictimCacheDL1:
    """A plain parity dL1 with a victim cache bolted onto its miss path.

    Implements the hierarchy's DataL1 protocol so the full Table 1
    machine — and therefore :class:`~repro.harness.spec.ExperimentSpec`,
    the sweeps and the fault-injection campaigns — can drive the Jouppi
    baseline like any other scheme (registered as ``victim-cache``).

    Metric mapping onto the standard ``SimulationResult`` fields: a dL1
    miss served by a victim-cache swap-back bumps ``replica_fills``,
    the same counter ICR's Section 5.6 leftover-replica fills use (both
    cost the same 2 cycles).

    Fault injection, scrubbing and vulnerability monitoring attach to
    the inner parity dL1 (``injection_target``); the victim cache
    itself is modeled error-free, so a swapped-back line returns with
    golden contents.
    """

    def __init__(
        self,
        entries: int = 16,
        *,
        geometry: Optional[CacheGeometry] = None,
        track_data: bool = False,
    ):
        from repro.core.config import variant
        from repro.core.icr_cache import ICRCache
        from repro.core.schemes import make_config

        inner_config = make_config(
            "BaseP", geometry=geometry, track_data=track_data
        )
        self._dl1 = ICRCache(inner_config)
        self.config = variant(inner_config, name="victim-cache")
        self.victim_cache = VictimCache(entries)
        self.geometry = self._dl1.geometry
        self.stats = self._dl1.stats
        self.write_policy = "writeback"
        self.injection_target = self._dl1
        self._dl1.set_evict_hook(self._on_evict)
        self._outer_hook = None
        self._swap_fill = False

    def set_evict_hook(self, hook) -> None:
        self._outer_hook = hook

    def _on_evict(self, eviction) -> None:
        if self._swap_fill:
            # The line displaced by a victim-cache swap-back also goes to
            # the victim cache, like a real swap.
            self.victim_cache.insert(eviction.block_addr, eviction.dirty)
            return
        self.victim_cache.insert(eviction.block_addr, eviction.dirty)

    def access(self, addr: int, is_write: bool, now: int):
        from repro.cache.hierarchy import DL1Outcome

        outcome = self._dl1.access(addr, is_write, now)
        if outcome.hit or outcome.latency is not None:
            return outcome
        block_addr = self.geometry.block_addr(addr)
        hit, dirty = self.victim_cache.extract(block_addr)
        if not hit:
            return outcome
        # Swap the line back into the dL1: re-access to allocate, restore
        # its dirty state, and charge the 2-cycle victim-cache latency.
        self._swap_fill = True
        self._dl1.access(addr, is_write, now)
        self._swap_fill = False
        block = self._dl1.probe(block_addr)
        if block is not None and dirty:
            block.dirty = True
        self.stats.replica_fills += 1
        return DL1Outcome(hit=False, latency=2, replica_fill=True)


#: Backwards-compatible private alias (pre-registry name).
_VictimCacheDL1 = VictimCacheDL1


@dataclass
class VictimCacheResult:
    benchmark: str
    entries: int
    cycles: int
    miss_rate: float
    victim_hits: int
    victim_hit_rate: float


def run_victim_cache_baseline(
    benchmark,
    *,
    entries: int = 16,
    n_instructions: int = 100_000,
) -> VictimCacheResult:
    """BaseP + victim cache on the Table 1 machine."""
    profile = profile_for(benchmark) if isinstance(benchmark, str) else benchmark
    dl1 = VictimCacheDL1(entries)
    hierarchy = MemoryHierarchy(dl1, HierarchyConfig())
    pipeline = OutOfOrderPipeline(hierarchy)
    result = pipeline.run(trace_for(profile, n_instructions))
    return VictimCacheResult(
        benchmark=profile.name,
        entries=entries,
        cycles=result.cycles,
        miss_rate=dl1.stats.miss_rate,
        victim_hits=dl1.victim_cache.stats.hits,
        victim_hit_rate=dl1.victim_cache.stats.hit_rate,
    )
