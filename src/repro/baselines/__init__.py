"""Baselines the paper compares against conceptually or directly."""

from repro.baselines.rcache import (
    RCache,
    RCacheResult,
    RCacheStats,
    run_rcache_baseline,
)
from repro.baselines.victim_cache import (
    VictimCache,
    VictimCacheResult,
    VictimCacheStats,
    run_victim_cache_baseline,
)

__all__ = [
    "RCache",
    "RCacheResult",
    "RCacheStats",
    "run_rcache_baseline",
    "VictimCache",
    "VictimCacheResult",
    "VictimCacheStats",
    "run_victim_cache_baseline",
]
