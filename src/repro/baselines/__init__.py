"""Baselines the paper compares against conceptually or directly."""

from repro.baselines.rcache import (
    RCache,
    RCacheDL1,
    RCacheResult,
    RCacheStats,
    run_rcache_baseline,
)
from repro.baselines.victim_cache import (
    VictimCache,
    VictimCacheDL1,
    VictimCacheResult,
    VictimCacheStats,
    run_victim_cache_baseline,
)

__all__ = [
    "RCache",
    "RCacheDL1",
    "RCacheResult",
    "RCacheStats",
    "run_rcache_baseline",
    "VictimCache",
    "VictimCacheDL1",
    "VictimCacheResult",
    "VictimCacheStats",
    "run_victim_cache_baseline",
]
