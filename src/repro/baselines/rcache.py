"""R-Cache baseline: a dedicated small replication cache (Kim & Somani).

The paper's introduction contrasts ICR with the area-efficient integrity
architecture of Kim & Somani [ISCA 1999], which adds a *separate* small
cache that "duplicate[s] recently used data" next to the dL1: stores
write a second copy into the side cache, and a load whose parity check
fails recovers from there.  ICR's claim is that the same duplicate
coverage can be had for free inside the dL1's dead space — "we do not
need a separate cache for achieving this compared to that needed by
[11]" (Section 5.2).

This module implements the comparator so the claim can be measured: a
fully-associative, LRU, write-allocating duplicate store of configurable
size attached to a plain parity dL1.  Metrics mirror ICR's:

* ``loads_with_duplicate``  — fraction of dL1 read hits whose word had a
  live copy in the R-Cache (the analogue of loads-with-replica);
* extra energy — every covered store writes the side cache too, and the
  array adds its own leakage/area that ICR avoids.

See ``benchmarks/bench_comparison_rcache.py`` for the head-to-head.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.set_assoc import CacheGeometry


@dataclass
class RCacheStats:
    store_insertions: int = 0
    store_updates: int = 0
    lookups: int = 0
    duplicate_hits: int = 0
    evictions: int = 0

    @property
    def duplicate_hit_rate(self) -> float:
        return self.duplicate_hits / self.lookups if self.lookups else 0.0


class RCache:
    """Fully-associative duplicate store, LRU-replaced, block granularity."""

    def __init__(self, size_bytes: int = 2 * 1024, block_size: int = 64):
        if size_bytes <= 0 or size_bytes % block_size:
            raise ValueError("R-Cache size must be a positive block multiple")
        self.entries = size_bytes // block_size
        self.block_size = block_size
        self.stats = RCacheStats()
        # block_addr -> lru stamp; dict preserves no order semantics needed.
        self._store: dict[int, int] = {}
        self._clock = 0

    def insert(self, block_addr: int) -> None:
        """Duplicate the (stored-to) block into the side cache."""
        self._clock += 1
        if block_addr in self._store:
            self._store[block_addr] = self._clock
            self.stats.store_updates += 1
            return
        if len(self._store) >= self.entries:
            victim = min(self._store, key=self._store.get)
            del self._store[victim]
            self.stats.evictions += 1
        self._store[block_addr] = self._clock
        self.stats.store_insertions += 1

    def holds(self, block_addr: int) -> bool:
        """Whether a duplicate of *block_addr* is currently live."""
        self.stats.lookups += 1
        if block_addr in self._store:
            self.stats.duplicate_hits += 1
            return True
        return False

    def invalidate(self, block_addr: int) -> None:
        self._store.pop(block_addr, None)

    def occupancy(self) -> int:
        return len(self._store)


class RCacheDL1:
    """A plain parity dL1 with an R-Cache beside it, as a registry scheme.

    Implements the hierarchy's DataL1 protocol so the full Table 1
    machine — and therefore :class:`~repro.harness.spec.ExperimentSpec`,
    the sweeps and the fault-injection campaigns — can drive the Kim &
    Somani baseline like any other scheme (registered as ``rcache``).

    Metric mapping onto the standard ``SimulationResult`` fields:

    * a dL1 load hit whose block has a live duplicate bumps
      ``load_hits_with_replica``, so ``loads_with_replica`` *is* the
      duplicate coverage (the analogue of ICR's loads-with-replica);
    * every duplicate-store write is charged as an extra dL1
      ``array_writes`` event, so the energy totals carry the side
      array's write traffic (its leakage/area is the cost ICR avoids).

    Fault injection, scrubbing and vulnerability monitoring attach to
    the inner parity dL1 (``injection_target``); the duplicate store
    itself is modeled error-free.
    """

    def __init__(
        self,
        rcache_bytes: int = 2 * 1024,
        *,
        geometry: Optional[CacheGeometry] = None,
        track_data: bool = False,
    ):
        from repro.core.config import variant
        from repro.core.icr_cache import ICRCache
        from repro.core.schemes import make_config

        inner_config = make_config(
            "BaseP", geometry=geometry, track_data=track_data
        )
        self._dl1 = ICRCache(inner_config)
        self.config = variant(inner_config, name="rcache")
        self.rcache = RCache(rcache_bytes, self._dl1.geometry.block_size)
        self.geometry = self._dl1.geometry
        self.stats = self._dl1.stats
        self.write_policy = self._dl1.write_policy
        self.injection_target = self._dl1
        self._block_shift = self.geometry.block_offset_bits

    def set_evict_hook(self, hook) -> None:
        self._dl1.set_evict_hook(hook)

    def access(self, addr: int, is_write: bool, now: int):
        outcome = self._dl1.access(addr, is_write, now)
        block_addr = addr >> self._block_shift
        if is_write:
            # Covered stores write the duplicate store too.
            self.rcache.insert(block_addr)
            self.stats.array_writes += 1
        elif outcome.hit and self.rcache.holds(block_addr):
            self.stats.load_hits_with_replica += 1
        return outcome


@dataclass
class RCacheResult:
    """Coverage/overhead summary of one R-Cache run."""

    benchmark: str
    rcache_bytes: int
    loads_with_duplicate: float
    duplicate_store_writes: int
    dl1_loads: int
    dl1_stores: int
    rcache_stats: RCacheStats = field(repr=False, default=None)


def run_rcache_baseline(
    benchmark,
    *,
    rcache_bytes: int = 2 * 1024,
    n_instructions: int = 100_000,
) -> RCacheResult:
    """Drive the R-Cache beside a plain parity dL1 on a benchmark trace.

    The side cache duplicates every stored-to block; a dL1 load hit is
    "covered" when its block still has a live duplicate — directly
    comparable to ICR's loads-with-replica at zero dL1 displacement cost
    but with a dedicated array the size of ``rcache_bytes``.
    """
    from repro.core.schemes import make_cache
    from repro.cpu.isa import OP_LOAD, OP_STORE
    from repro.workloads.generator import trace_for
    from repro.workloads.spec2000 import profile_for

    profile = profile_for(benchmark) if isinstance(benchmark, str) else benchmark
    trace = trace_for(profile, n_instructions)
    dl1 = make_cache("BaseP")
    rcache = RCache(rcache_bytes, dl1.geometry.block_size)

    covered_load_hits = 0
    load_hits = 0
    now = 0
    for op, addr in zip(trace.op, trace.addr):
        if op != OP_LOAD and op != OP_STORE:
            continue
        block_addr = dl1.geometry.block_addr(addr)
        outcome = dl1.access(addr, op == OP_STORE, now)
        if op == OP_STORE:
            rcache.insert(block_addr)
        elif outcome.hit:
            load_hits += 1
            if rcache.holds(block_addr):
                covered_load_hits += 1
        now += 3

    return RCacheResult(
        benchmark=profile.name,
        rcache_bytes=rcache_bytes,
        loads_with_duplicate=covered_load_hits / load_hits if load_hits else 0.0,
        duplicate_store_writes=rcache.stats.store_insertions
        + rcache.stats.store_updates,
        dl1_loads=dl1.stats.loads,
        dl1_stores=dl1.stats.stores,
        rcache_stats=rcache.stats,
    )
