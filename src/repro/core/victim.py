"""Victim selection for replica placement (Section 3.1).

A replica may never displace a *live* primary copy — that is the property
that keeps ICR's performance close to the baseline.  Within that rule the
paper defines four policies ordering the two legal victim categories,
**dead blocks** (primaries whose decay counter saturated) and **existing
replicas**:

* ``dead-only`` — LRU among dead primaries only (reliability-biased: never
  sacrifices an existing replica);
* ``replica-only`` — LRU among replicas only (dismissed by the paper as
  self-defeating);
* ``dead-first`` — dead primaries first, replicas as fallback;
* ``replica-first`` — replicas first, dead primaries as fallback.

Invalid (empty) lines are always acceptable and checked before either
category.  Dead *replicas* count as replicas, not as dead blocks.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Optional, Sequence

from repro.cache.block import CacheBlock
from repro.core.config import VictimPolicy
from repro.core.decay import DeadBlockPredictor

_BY_STAMP = attrgetter("lru_stamp")


def _lru(blocks: list[CacheBlock]) -> Optional[CacheBlock]:
    return min(blocks, key=_BY_STAMP) if blocks else None


def find_replica_victim(
    ways: Sequence[CacheBlock],
    policy: VictimPolicy,
    predictor: DeadBlockPredictor,
    now: int,
    *,
    exclude_block: Optional[CacheBlock] = None,
    exclude_addr: int = -1,
    allow_invalid: bool = False,
) -> Optional[CacheBlock]:
    """Choose which line of a set a new replica may take over.

    *exclude_block* protects the primary being replicated itself (relevant
    for distance-0 "horizontal" replication, where the replica lands in the
    primary's own set).  *exclude_addr* protects existing replicas of the
    same block (relevant when placing a second replica: evicting the first
    one to make room for the second would be pointless).

    By default invalid frames are *not* replica homes: replication recycles
    decayed live lines, while empty frames are left to absorb demand fills
    (they are the fill path's first choice).  This matches the paper's
    observed dynamics — with invalid frames allowed, every dropped replica
    would hand its own slot to the next attempt and the replication
    ability would be pinned at 1.0.  Set *allow_invalid* to study the
    alternative.

    Returns ``None`` when the set offers no legal victim — the caller then
    falls back to its next candidate distance, or gives up ("do nothing").
    """
    dead: list[CacheBlock] = []
    replicas: list[CacheBlock] = []
    # The two constant windows (0: everything is dead the moment its access
    # completes; None: decay disabled) need no per-block counter math.
    window = predictor.decay_window
    always_dead = window == 0
    never_dead = window is None
    for block in ways:
        if block is exclude_block:
            continue
        if not block.valid:
            if allow_invalid:
                return block
            continue
        if block.is_replica:
            if block.block_addr != exclude_addr:
                replicas.append(block)
        elif always_dead:
            dead.append(block)
        elif not never_dead and predictor.is_dead(block, now):
            dead.append(block)

    if policy is VictimPolicy.DEAD_ONLY:
        return _lru(dead)
    if policy is VictimPolicy.REPLICA_ONLY:
        return _lru(replicas)
    if policy is VictimPolicy.DEAD_FIRST:
        return _lru(dead) or _lru(replicas)
    if policy is VictimPolicy.REPLICA_FIRST:
        return _lru(replicas) or _lru(dead)
    raise ValueError(f"unknown victim policy {policy!r}")
