"""Struct-of-arrays dL1 kernel and the batched two-phase engine.

The object kernel (:class:`~repro.core.icr_cache.ICRCache`) models every
cache line as a :class:`~repro.cache.block.CacheBlock` and pays Python
method dispatch per pipeline event.  This module provides the same
semantics in struct-of-arrays form and a batched execution mode:

* :class:`ArrayDL1` — a dL1 whose entire state lives in parallel arrays
  indexed by *frame* (``set_index * associativity + way``): tag, valid,
  dirty, replica flag, LRU stamp, last-access cycle, protection code and
  the replica map (``primary_frame`` per replica plus per-primary replica
  frame lists).  It implements the hierarchy's ``DataL1`` protocol
  (``access`` returns a :class:`~repro.cache.hierarchy.DL1Outcome`), so
  it is a drop-in replacement for :class:`ICRCache` under the unchanged
  :class:`~repro.cache.hierarchy.MemoryHierarchy`; ``access_code``
  returns a small outcome *code* instead, which is what the batched
  engine consumes.
* :func:`run_batched` — a two-phase engine exploiting the fact that in
  the common configuration (no fault injection, no scrubbing, no
  vulnerability sampling, write-back dL1, decay window 0 or None) every
  memory-side and branch-predictor decision depends only on *program
  order*, never on cycle numbers.  Branch-predictor outcomes and
  fetch-block boundaries depend only on the *trace*, so they are
  precomputed once per trace and memoized next to the trace itself
  (:func:`_phase1_prestage`).  Phase 1 then walks the trace in program
  order — visiting only the instructions that can generate memory-side
  events (loads, stores, new fetch blocks) — driving the SoA caches and
  recording per-instruction outcome codes; the codes are translated to
  latencies in one table-driven numpy pass; phase 2 replays the exact
  scoreboard timing loop of
  :class:`~repro.cpu.pipeline.OutOfOrderPipeline` against the
  precomputed latency arrays.  Phase 2's only output is the final cycle
  count, so it also exists as a small compiled kernel
  (:mod:`repro.core._native`, built on first use, ``REPRO_NATIVE=0`` to
  disable) with :func:`_phase2_python` as its always-available twin.
  The result is bit-identical to the object path (enforced by
  ``tests/differential/``) at a fraction of the per-instruction
  interpreter work.

Eligibility is decided per spec: :func:`batched_supported` gates the
two-phase engine, :func:`soa_supported` the per-access ``ArrayDL1`` under
the normal hierarchy (used e.g. for decay windows > 0 or write-through,
which are timing-coupled), and anything else — baselines, fault
injection, software hints, non-LRU replacement — falls back to the
object kernel.  ``backend="array"`` therefore never changes results,
only the execution strategy; :func:`backend_mode` reports which strategy
a spec resolves to.

Engineering note: the *canonical* hot-path state is kept in plain Python
lists (CPython scalar indexing beats numpy scalar indexing by an order
of magnitude); numpy enters where work is genuinely batched — the
outcome-code → latency translation over the whole trace, and the
:meth:`ArrayDL1.state_arrays` export (tags, flags, LRU ages, replica
map, decay counters) used by tests and tools.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Optional

import numpy as np

from repro.cache.set_assoc import CacheGeometry, Eviction
from repro.cache.stats import CacheStats
from repro.coding.protection import ProtectionKind
from repro.core import _native
from repro.core.config import (
    ICRConfig,
    LookupMode,
    VictimPolicy,
    silent_store_hash,
)
from repro.core.placement import HashRing, build_placement
from repro.core.protocol import DL1Outcome

# ---------------------------------------------------------------------------
# outcome codes (table-driven classification)
# ---------------------------------------------------------------------------

#: Demand-access outcome codes returned by :meth:`ArrayDL1.access_code`.
#: The batched engine maps codes to latencies through
#: :attr:`ArrayDL1.latency_table` in one vectorized pass.
OUT_STORE_HIT = 0
OUT_LOAD_HIT_REP = 1
OUT_LOAD_HIT_UNREP = 2
OUT_REPLICA_FILL_STORE = 3
OUT_REPLICA_FILL_LOAD = 4
OUT_MISS = 5
N_OUTCOMES = 6

_PARITY = 0
_ECC = 1

_PROT_CODE = {ProtectionKind.PARITY: _PARITY, ProtectionKind.ECC: _ECC}


def _prot_code(kind: ProtectionKind) -> int:
    return _PROT_CODE[kind]


# ---------------------------------------------------------------------------
# eligibility
# ---------------------------------------------------------------------------


def kernel_supported(config: ICRConfig) -> bool:
    """Can :class:`ArrayDL1` represent this config at all?

    The SoA kernel covers the full ICR design space *except* the
    features that need per-line objects: bit-accurate word storage
    (``track_data``), software hints, and the non-LRU replacement
    ablations (whose policy objects hold CacheBlock-keyed state).
    """
    return (
        isinstance(config, ICRConfig)
        and config.hints is None
        and not config.track_data
        and config.replacement == "lru"
    )


def soa_supported(spec, config: ICRConfig) -> bool:
    """May this spec run :class:`ArrayDL1` under the normal hierarchy?

    Excludes runs that attach block-walking observers to the dL1
    (fault injection, scrubbing, vulnerability sampling) — those need
    the object kernel's CacheBlock arrays.
    """
    return (
        kernel_supported(config)
        and spec.error_rate == 0.0
        and not spec.measure_vulnerability
        and spec.scrub_period is None
    )


def batched_supported(spec, config: ICRConfig, machine) -> bool:
    """May this spec run the two-phase batched engine?

    Requires full timing-independence of the memory side: a write-back
    dL1 (no write-buffer stalls feeding back into latency), a decay
    window of 0 or None (the two windows whose dead-block predicate does
    not read cycle numbers), and no iL1 fault injection.
    """
    return (
        soa_supported(spec, config)
        and config.write_policy == "writeback"
        and (config.decay_window is None or config.decay_window == 0)
        and spec.icache_error_rate == 0.0
        and not machine.hierarchy.protected_icache
    )


def backend_mode(spec) -> str:
    """Which kernel a spec resolves to: ``array-batched``/``array-soa``/``object``.

    Mirrors the dispatch in :func:`repro.harness.experiment._run_spec`;
    used by tests and benchmarks to assert the strategy, never to change
    results (all three modes are bit-identical).
    """
    if spec.backend != "array":
        return "object"
    from repro.harness.spec import MachineConfig

    machine = spec.machine or MachineConfig()
    if isinstance(spec.scheme, ICRConfig):
        config = spec.scheme
    else:
        from repro.core.registry import scheme_info

        if scheme_info(spec.scheme).kind == "baseline":
            return "object"
        from repro.core.schemes import make_config

        kwargs = dict(spec.scheme_kwargs)
        if spec.error_rate > 0.0:
            kwargs.setdefault("track_data", True)
        config = make_config(spec.scheme, **kwargs)
    if batched_supported(spec, config, machine):
        return "array-batched"
    if soa_supported(spec, config):
        return "array-soa"
    return "object"


# ---------------------------------------------------------------------------
# the struct-of-arrays dL1
# ---------------------------------------------------------------------------


class ArrayDL1:
    """Struct-of-arrays ICR dL1, bit-identical to :class:`ICRCache`.

    Frames are numbered ``set_index * associativity + way``; every piece
    of per-line state is one parallel array indexed by frame.  The
    access paths are line-by-line ports of the object kernel's
    ``_hit``/``_miss``/``_probe_replica``/``_fill_from_replica``/
    ``evict`` and of the replication policy's ``attempt``/``place`` —
    including every stat-counter increment, tag-probe charge, LRU stamp
    and tie-break — with CacheBlock references replaced by frame ints.
    The differential harness (``tests/differential/``) enforces the
    equivalence across the whole registered design space.
    """

    name = "dl1"

    def __init__(self, config: ICRConfig):
        if not kernel_supported(config):
            raise ValueError(
                "ArrayDL1 does not support this config (needs hints=None, "
                "track_data=False, replacement='lru'); use ICRCache"
            )
        geometry = config.geometry
        self.config = config
        self.geometry = geometry
        self.stats = CacheStats()
        self.write_policy = config.write_policy

        n_sets = geometry.n_sets
        assoc = geometry.associativity
        n_frames = n_sets * assoc
        self._n_sets = n_sets
        self._assoc = assoc
        self._n_frames = n_frames
        self._set_mask = n_sets - 1
        self._way_mask = assoc - 1
        self._assoc_shift = assoc.bit_length() - 1
        self._block_shift = geometry.block_offset_bits

        # -- per-frame state arrays -------------------------------------
        self._tag = [-1] * n_frames
        self._valid = [False] * n_frames
        self._dirty = [False] * n_frames
        self._is_rep = [False] * n_frames
        self._lru = [0] * n_frames
        self._last = [0] * n_frames
        self._prot = [_PARITY] * n_frames
        # Replica map: primary frame of each replica (-1 for primaries
        # and invalid frames), and the list of replica frames per primary.
        self._prim = [-1] * n_frames
        self._reps: list[list[int]] = [[] for _ in range(n_frames)]

        self._lru_clock = 0
        self._tag_index: dict[int, int] = {}
        self._replica_index: dict[int, list[int]] = {}

        # -- hoisted per-lifetime constants (mirrors ICRCache) ----------
        self._writeback = config.write_policy == "writeback"
        self._prot_unrep = _prot_code(config.protection_for(replicated=False))
        self._prot_rep = _prot_code(config.protection_for(replicated=True))
        self._replicates = config.replicates
        self._trig_store = config.trigger.on_store
        self._trig_fill = config.trigger.on_fill
        self._leave_replicas = config.leave_replicas_on_evict
        self._parallel_lookup = config.lookup is LookupMode.PARALLEL
        self._victim_policy = config.victim_policy
        self._allow_invalid = config.replicate_into_invalid
        self._max_replicas = config.max_replicas

        # Replica placement comes from the same policy object the object
        # kernel builds (repro.core.placement), so both kernels walk the
        # same candidate sets.  Home-pure policies expose the distance
        # lists the walks below iterate; rings answer per line.
        placement = build_placement(config)
        self._ring = placement if isinstance(placement, HashRing) else None
        self._distances = placement.distances
        self._second_distances = placement.second_distances
        self._all_distances = placement.all_distances
        self._distance_pos = {d: i for i, d in enumerate(self._all_distances)}
        self._n_all_distances = len(self._all_distances)

        # Silent-store-aware ECC; the sequence counter lives outside the
        # stats so a warmup reset never perturbs which stores are silent.
        self._silent_sw = config.silent_store_suppression
        self._silent_threshold = int(config.silent_store_fraction * 65536)
        self._silent_seq = 0

        window = config.decay_window
        self._always_dead = window == 0
        self._never_dead = window is None
        self._tick = max(1, window // 4) if window else 1

        lat_rep = config.load_hit_latency(replicated=True)
        lat_unrep = config.load_hit_latency(replicated=False)
        self._outcomes = (
            DL1Outcome(hit=True, latency=1),                       # STORE_HIT
            DL1Outcome(hit=True, latency=lat_rep),                 # LOAD_HIT_REP
            DL1Outcome(hit=True, latency=lat_unrep),               # LOAD_HIT_UNREP
            DL1Outcome(hit=False, latency=1, replica_fill=True),   # RF_STORE
            DL1Outcome(hit=False, latency=2, replica_fill=True),   # RF_LOAD
            DL1Outcome(hit=False, latency=None),                   # MISS
        )
        #: code -> dL1-visible load latency (OUT_MISS maps to 0; the
        #: engine adds the L2/memory latency it measured separately).
        self.latency_table = np.array(
            [1, lat_rep, lat_unrep, 1, 2, 0], dtype=np.int64
        )

        # Eviction callback: (block_addr, dirty, was_replica) -> None.
        # set_evict_hook wraps hierarchy hooks; the batched engine
        # installs its own flat callable here directly.
        self._evict_cb: Optional[Callable[[int, bool, bool], None]] = None
        self._hook: Optional[Callable[[Eviction], None]] = None

    # -- hierarchy protocol --------------------------------------------

    def set_evict_hook(self, hook: Optional[Callable[[Eviction], None]]) -> None:
        self._hook = hook
        if hook is None:
            self._evict_cb = None
            return

        def cb(block_addr: int, dirty: bool, was_replica: bool) -> None:
            hook(
                Eviction(
                    block_addr=block_addr, dirty=dirty, was_replica=was_replica
                )
            )

        self._evict_cb = cb

    def access(self, addr: int, is_write: bool, now: int) -> DL1Outcome:
        """DataL1-protocol demand access (per-access mode)."""
        return self._outcomes[self.access_code(addr, is_write, now)]

    # -- demand path (code form) ---------------------------------------

    def access_code(self, addr: int, is_write: bool, now: int) -> int:
        """One demand access; returns an ``OUT_*`` outcome code."""
        stats = self.stats
        block_addr = addr >> self._block_shift
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        stats.tag_probes += 1
        f = self._tag_index.get(block_addr, -1)
        if f >= 0:
            return self._hit(f, is_write, now)
        if self._leave_replicas:
            r = self._probe_replica(block_addr)
            if r >= 0:
                return self._fill_from_replica(r, is_write, now)
        return self._miss(block_addr, is_write, now)

    def _hit(self, f: int, is_write: bool, now: int) -> int:
        stats = self.stats
        last = self._last
        if now > last[f]:
            last[f] = now
        self._lru_clock += 1
        self._lru[f] = self._lru_clock
        reps = self._reps[f]
        if is_write:
            stats.store_hits += 1
            if self._silent_sw:
                self._silent_seq += 1
                if (
                    silent_store_hash(self._tag[f], self._silent_seq)
                    < self._silent_threshold
                ):
                    stats.silent_stores += 1
                    stats.array_reads += 1
                    if self._prot[f] == _PARITY:
                        stats.parity_checks += 1
                    else:
                        stats.ecc_checks += 1
                    return OUT_STORE_HIT
            stats.array_writes += 1
            if self._writeback:
                self._dirty[f] = True
            if self._prot[f] == _PARITY:
                stats.parity_generates += 1
            else:
                stats.ecc_generates += 1
            if reps:
                self._update_replicas(f, now)
            elif self._trig_store:
                self._replicate(f, now)
            return OUT_STORE_HIT
        stats.load_hits += 1
        stats.array_reads += 1
        if self._prot[f] == _PARITY:
            stats.parity_checks += 1
        else:
            stats.ecc_checks += 1
        if reps:
            stats.load_hits_with_replica += 1
            if self._parallel_lookup:
                # PP reads primary and replica together and compares.
                stats.array_reads += 1
                stats.parity_checks += 1
            return OUT_LOAD_HIT_REP
        return OUT_LOAD_HIT_UNREP

    def _update_replicas(self, f: int, now: int) -> None:
        stats = self.stats
        last = self._last
        lru = self._lru
        for r in self._reps[f]:
            stats.array_writes += 1
            stats.replica_updates += 1
            stats.parity_generates += 1
            if now > last[r]:
                last[r] = now
            self._lru_clock += 1
            lru[r] = self._lru_clock

    # -- miss paths ----------------------------------------------------

    def _probe_replica(self, block_addr: int) -> int:
        """Frame of the winning (possibly orphaned) replica, or -1.

        Selection and ``tag_probes`` accounting replicate the candidate-
        distance walk exactly: earliest distance in the walk order wins,
        lowest way breaks ties; one probe per candidate set visited up
        to and including the hit, or all of them on a miss.
        """
        candidates = self._replica_index.get(block_addr)
        best = -1
        best_key = None
        if candidates:
            valid = self._valid
            is_rep = self._is_rep
            tag = self._tag
            live = [
                b
                for b in candidates
                if valid[b] and is_rep[b] and tag[b] == block_addr
            ]
            if len(live) != len(candidates):
                if live:
                    self._replica_index[block_addr] = live
                else:
                    del self._replica_index[block_addr]
            if live:
                shift = self._assoc_shift
                if self._ring is not None:
                    pos_of = self._ring.lookup(block_addr)[1].get
                    for b in live:
                        pos = pos_of(b >> shift)
                        if pos is None:
                            continue
                        key = (pos, b & self._way_mask)
                        if best_key is None or key < best_key:
                            best_key = key
                            best = b
                else:
                    home = block_addr & self._set_mask
                    n = self._n_sets
                    pos_of = self._distance_pos.get
                    for b in live:
                        pos = pos_of(((b >> shift) - home) % n)
                        if pos is None:
                            continue  # parked at a distance the walk skips
                        key = (pos, b & self._way_mask)
                        if best_key is None or key < best_key:
                            best_key = key
                            best = b
        if best < 0:
            if self._ring is not None:
                self.stats.tag_probes += len(self._ring.lookup(block_addr)[0])
            else:
                self.stats.tag_probes += self._n_all_distances
            return -1
        self.stats.tag_probes += best_key[0] + 1
        return best

    def _fill_from_replica(self, r: int, is_write: bool, now: int) -> int:
        stats = self.stats
        block_addr = self._tag[r]
        if is_write:
            stats.store_misses += 1
        else:
            stats.load_misses += 1
        stats.replica_fills += 1
        stats.array_reads += 1  # read the replica
        home = block_addr & self._set_mask
        v = self._lru_victim(home)
        if v == r:
            # Degenerate distance-0 case: promote the replica in place.
            self._is_rep[r] = False
            self._prim[r] = -1
            p = r
            self._tag_index[block_addr] = p
            self._prot[p] = self._prot_unrep
        else:
            self.evict_frame(v)
            self._fill(v, block_addr, now, is_replica=False, dirty=False)
            self._tag_index[block_addr] = v
            p = v
            self._prot[p] = self._prot_rep
            # The leftover replica stays, re-linked to the new primary.
            self._reps[p] = [r]
            self._prim[r] = p
        stats.array_writes += 1
        kind = self._prot_rep if self._reps[p] else self._prot_unrep
        if kind == _PARITY:
            stats.parity_generates += 1
        else:
            stats.ecc_generates += 1
        self._lru_clock += 1
        self._lru[p] = self._lru_clock
        if now > self._last[p]:
            self._last[p] = now
        if is_write:
            if self._writeback:
                self._dirty[p] = True
            if self._reps[p]:
                self._update_replicas(p, now)
            return OUT_REPLICA_FILL_STORE
        return OUT_REPLICA_FILL_LOAD

    def _miss(self, block_addr: int, is_write: bool, now: int) -> int:
        stats = self.stats
        if is_write:
            stats.store_misses += 1
        else:
            stats.load_misses += 1
        home = block_addr & self._set_mask
        v = self._lru_victim(home)
        self.evict_frame(v)
        self._fill(v, block_addr, now, is_replica=False, dirty=False)
        self._tag_index[block_addr] = v
        self._prot[v] = self._prot_unrep
        stats.array_writes += 1
        if self._prot_unrep == _PARITY:
            stats.parity_generates += 1
        else:
            stats.ecc_generates += 1
        self._lru_clock += 1
        self._lru[v] = self._lru_clock
        if self._trig_fill:
            self._replicate(v, now)
        if is_write:
            if self._writeback:
                self._dirty[v] = True
            stats.array_writes += 1
            # Fill-time replication may have upgraded the protection.
            if self._prot[v] == _PARITY:
                stats.parity_generates += 1
            else:
                stats.ecc_generates += 1
            if self._reps[v]:
                self._update_replicas(v, now)
            elif self._trig_store:
                self._replicate(v, now)
        return OUT_MISS

    # -- replication ---------------------------------------------------

    def _replicate(self, f: int, now: int) -> None:
        """Port of ``ReplicationPolicy.attempt`` (hints excluded)."""
        if not self._replicates or self._reps[f]:
            return
        stats = self.stats
        ring = self._ring
        if ring is not None:
            stats.replication_attempts += 1
            walks = ring.lookup(self._tag[f])[2]
            if self._place_sets(f, walks[0], now) < 0:
                return
            stats.replication_successes += 1
            for walk in walks[1:]:
                stats.second_replica_attempts += 1
                if self._place_sets(f, walk, now) >= 0:
                    stats.second_replica_successes += 1
            return
        stats.replication_attempts += 1
        placed = self._place(f, self._distances, now)
        if placed < 0:
            return
        stats.replication_successes += 1
        if self._max_replicas >= 2:
            stats.second_replica_attempts += 1
            second = self._place(f, self._second_distances, now)
            if second >= 0:
                stats.second_replica_successes += 1

    def _place(self, f: int, distances: tuple[int, ...], now: int) -> int:
        """Port of ``ReplicationPolicy.place``: walk candidate sets."""
        block_addr = self._tag[f]
        home = block_addr & self._set_mask
        n = self._n_sets
        for distance in distances:
            v = self._try_install(f, (home + distance) % n, now)
            if v >= 0:
                return v
        return -1

    def _place_sets(self, f: int, targets: tuple[int, ...], now: int) -> int:
        """Ring walk: candidate sets come precomputed from the policy."""
        for target in targets:
            v = self._try_install(f, target, now)
            if v >= 0:
                return v
        return -1

    def _try_install(self, f: int, target: int, now: int) -> int:
        """One placement attempt into one candidate set."""
        stats = self.stats
        block_addr = self._tag[f]
        stats.tag_probes += 1
        v = self._find_victim(target, now, f, block_addr)
        if v < 0:
            return -1
        if self._valid[v] and not self._is_rep[v]:
            if self._is_dead(v, now):
                stats.dead_evictions += 1
        self.evict_frame(v)
        self._fill(v, block_addr, now, is_replica=True, dirty=False)
        self._prot[v] = _PARITY
        self._prim[v] = f
        self._reps[f].append(v)
        self._index_replica(v, block_addr)
        self._lru_clock += 1
        self._lru[v] = self._lru_clock
        stats.array_writes += 1
        stats.parity_generates += 1
        # Replicated lines carry the replicated-state protection.
        if self._prot[f] != self._prot_rep:
            self._prot[f] = self._prot_rep
            if self._prot_rep == _PARITY:
                stats.parity_generates += 1
            else:
                stats.ecc_generates += 1
        return v

    def _find_victim(
        self, set_index: int, now: int, exclude_frame: int, exclude_addr: int
    ) -> int:
        """Port of :func:`repro.core.victim.find_replica_victim`."""
        base = set_index << self._assoc_shift
        valid = self._valid
        is_rep = self._is_rep
        tag = self._tag
        dead: list[int] = []
        replicas: list[int] = []
        always_dead = self._always_dead
        never_dead = self._never_dead
        for b in range(base, base + self._assoc):
            if b == exclude_frame:
                continue
            if not valid[b]:
                if self._allow_invalid:
                    return b
                continue
            if is_rep[b]:
                if tag[b] != exclude_addr:
                    replicas.append(b)
            elif always_dead:
                dead.append(b)
            elif not never_dead and self._is_dead(b, now):
                dead.append(b)
        policy = self._victim_policy
        if policy is VictimPolicy.DEAD_ONLY:
            return self._lru_of(dead)
        if policy is VictimPolicy.REPLICA_ONLY:
            return self._lru_of(replicas)
        if policy is VictimPolicy.DEAD_FIRST:
            v = self._lru_of(dead)
            return v if v >= 0 else self._lru_of(replicas)
        if policy is VictimPolicy.REPLICA_FIRST:
            v = self._lru_of(replicas)
            return v if v >= 0 else self._lru_of(dead)
        raise ValueError(f"unknown victim policy {policy!r}")

    def _lru_of(self, frames: list[int]) -> int:
        """min() by LRU stamp, first on ties (matches the object kernel)."""
        if not frames:
            return -1
        lru = self._lru
        best = frames[0]
        best_stamp = lru[best]
        for b in frames[1:]:
            stamp = lru[b]
            if stamp < best_stamp:
                best_stamp = stamp
                best = b
        return best

    def _is_dead(self, f: int, now: int) -> bool:
        """Dead-block predicate for a *valid* frame (aligned-tick decay)."""
        if self._always_dead:
            return True
        if self._never_dead:
            return False
        tick = self._tick
        return (now // tick - self._last[f] // tick) >= 4

    # -- fill / evict / links ------------------------------------------

    def _fill(
        self, f: int, block_addr: int, now: int, *, is_replica: bool, dirty: bool
    ) -> None:
        self._tag[f] = block_addr
        self._valid[f] = True
        self._dirty[f] = dirty
        self._is_rep[f] = is_replica
        self._last[f] = now
        if self._reps[f]:
            self._reps[f] = []
        self._prim[f] = -1

    def _lru_victim(self, set_index: int) -> int:
        """First invalid way, else the lowest LRU stamp (first on ties)."""
        base = set_index << self._assoc_shift
        valid = self._valid
        lru = self._lru
        best = base
        best_stamp = None
        for f in range(base, base + self._assoc):
            if not valid[f]:
                return f
            stamp = lru[f]
            if best_stamp is None or stamp < best_stamp:
                best_stamp = stamp
                best = f
        return best

    def evict_frame(self, f: int) -> None:
        """Port of ``ICRCache.evict`` (link maintenance + hook)."""
        if not self._valid[f]:
            return
        self._sever_links(f)
        was_replica = self._is_rep[f]
        block_addr = self._tag[f]
        dirty = self._dirty[f] and not was_replica
        if not was_replica and self._tag_index.get(block_addr, -1) == f:
            del self._tag_index[block_addr]
        self._invalidate(f)
        if dirty:
            self.stats.writebacks += 1
        elif self._evict_cb is None:
            return
        if self._evict_cb is not None:
            self._evict_cb(block_addr, dirty, was_replica)

    def _invalidate(self, f: int) -> None:
        self._tag[f] = -1
        self._valid[f] = False
        self._dirty[f] = False
        self._is_rep[f] = False
        self._last[f] = 0
        self._prot[f] = _PARITY
        self._prim[f] = -1
        if self._reps[f]:
            self._reps[f] = []

    def _sever_links(self, f: int) -> None:
        """Port of ``ICRCache._sever_links``."""
        if self._is_rep[f]:
            p = self._prim[f]
            if p >= 0 and self._valid[p]:
                reps = self._reps[p]
                try:
                    reps.remove(f)
                except ValueError:
                    pass
                if not reps:
                    self._on_lost_last_replica(p)
            self._prim[f] = -1
            self.stats.replica_evictions += 1
            return
        reps = self._reps[f]
        if reps:
            leave = self._leave_replicas
            for r in list(reps):
                if leave:
                    self._prim[r] = -1  # orphan, still addressable
                else:
                    self._prim[r] = -1
                    self._invalidate(r)
                    self.stats.replica_evictions += 1
            self._reps[f] = []

    def _on_lost_last_replica(self, p: int) -> None:
        kind = self._prot_unrep
        if self._prot[p] != kind:
            self._prot[p] = kind
            if kind == _PARITY:
                self.stats.parity_generates += 1
            else:
                self.stats.ecc_generates += 1

    def _index_replica(self, f: int, block_addr: int) -> None:
        """Register a just-installed replica, pruning stale entries."""
        entries = self._replica_index.get(block_addr)
        if entries is None:
            self._replica_index[block_addr] = [f]
            return
        valid = self._valid
        is_rep = self._is_rep
        tag = self._tag
        entries[:] = [
            b for b in entries if valid[b] and is_rep[b] and tag[b] == block_addr
        ]
        entries.append(f)

    # -- introspection -------------------------------------------------

    def state_arrays(self, now: int = 0) -> dict[str, np.ndarray]:
        """Numpy snapshot of the full SoA state (tests, tools, debugging).

        ``replica_map`` is the primary frame of each replica (-1
        elsewhere); ``decay_counter`` is the 2-bit saturating decay
        counter each line would show at cycle *now*.
        """
        lru = np.asarray(self._lru, dtype=np.int64)
        if self._never_dead:
            decay = np.zeros(self._n_frames, dtype=np.int64)
        elif self._always_dead:
            decay = np.full(self._n_frames, 4, dtype=np.int64)
        else:
            tick = self._tick
            last = np.asarray(self._last, dtype=np.int64)
            decay = np.clip(now // tick - last // tick, 0, 4)
        return {
            "tag": np.asarray(self._tag, dtype=np.int64),
            "valid": np.asarray(self._valid, dtype=np.bool_),
            "dirty": np.asarray(self._dirty, dtype=np.bool_),
            "is_replica": np.asarray(self._is_rep, dtype=np.bool_),
            "lru_stamp": lru,
            "lru_age": self._lru_clock - lru,
            "last_access": np.asarray(self._last, dtype=np.int64),
            "protection": np.asarray(self._prot, dtype=np.int8),
            "replica_map": np.asarray(self._prim, dtype=np.int64),
            "decay_counter": decay,
        }

    def contents_summary(self) -> dict[str, int]:
        """Census of line roles (same shape as the object kernel's)."""
        summary = {"valid": 0, "dirty": 0, "replicas": 0, "primaries": 0}
        for f in range(self._n_frames):
            if not self._valid[f]:
                continue
            summary["valid"] += 1
            if self._dirty[f]:
                summary["dirty"] += 1
            if self._is_rep[f]:
                summary["replicas"] += 1
            else:
                summary["primaries"] += 1
        return summary


# ---------------------------------------------------------------------------
# plain SoA cache (L2 / iL1 substrate of the batched engine)
# ---------------------------------------------------------------------------


class _PlainArrayCache:
    """SoA port of ``SetAssociativeCache.access`` (plain L2/iL1 path).

    Timing-independent by construction (true LRU over stamps), so it
    takes no ``now``; ``on_dirty_evict`` replaces the Eviction-object
    hook (only dirty L2 victims have an observable effect: one memory
    access).
    """

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.stats = CacheStats()
        n_sets = geometry.n_sets
        assoc = geometry.associativity
        n_frames = n_sets * assoc
        self._assoc = assoc
        self._set_mask = n_sets - 1
        self._block_shift = geometry.block_offset_bits
        self._tag = [-1] * n_frames
        self._valid = [False] * n_frames
        self._dirty = [False] * n_frames
        self._lru = [0] * n_frames
        self._lru_clock = 0
        self._tag_index: dict[int, int] = {}
        self.on_dirty_evict: Optional[Callable[[], None]] = None

    def access(self, addr: int, is_write: bool) -> bool:
        stats = self.stats
        block_addr = addr >> self._block_shift
        stats.tag_probes += 1
        f = self._tag_index.get(block_addr, -1)
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        if f >= 0:
            if is_write:
                stats.store_hits += 1
                stats.array_writes += 1
                self._dirty[f] = True
            else:
                stats.load_hits += 1
                stats.array_reads += 1
            self._lru_clock += 1
            self._lru[f] = self._lru_clock
            return True
        # Miss path: evict the LRU way (invalid first), write-allocate.
        if is_write:
            stats.store_misses += 1
        else:
            stats.load_misses += 1
        valid = self._valid
        lru = self._lru
        base = (block_addr & self._set_mask) * self._assoc
        victim = base
        best_stamp = None
        for f in range(base, base + self._assoc):
            if not valid[f]:
                victim = f
                best_stamp = None
                break
            stamp = lru[f]
            if best_stamp is None or stamp < best_stamp:
                best_stamp = stamp
                victim = f
        if valid[victim]:
            old_addr = self._tag[victim]
            dirty = self._dirty[victim]
            if self._tag_index.get(old_addr, -1) == victim:
                del self._tag_index[old_addr]
            valid[victim] = False
            self._dirty[victim] = False
            if dirty:
                stats.writebacks += 1
                if self.on_dirty_evict is not None:
                    self.on_dirty_evict()
        self._tag[victim] = block_addr
        valid[victim] = True
        self._dirty[victim] = is_write
        self._tag_index[block_addr] = victim
        stats.array_writes += 1
        self._lru_clock += 1
        lru[victim] = self._lru_clock
        return False


# ---------------------------------------------------------------------------
# the batched two-phase engine
# ---------------------------------------------------------------------------


@lru_cache(maxsize=8)
def _phase1_prestage(profile, n_instructions, seed_offset, fetch_shift):
    """Trace-pure phase-1 precomputation, memoized alongside the trace.

    The branch predictor and the instruction-fetch block boundaries
    depend only on the instruction trace — never on data-cache contents
    — so they are pure functions of the (already memoized) trace:

    * per-instruction mispredict flags and the final predictor counters,
      computed by driving the *real* :class:`CombinedPredictor` (one
      amortized pass; no duplicated predictor logic to diverge);
    * per-instruction "new fetch block" flags (``fetch_shift < 0``
      disables icache modelling: all zeros);
    * the sorted index list of instructions phase 1 must actually visit:
      memory ops and fetch-block boundaries.  Everything else is a plain
      ALU op (or an already-resolved branch) with no memory-side event.

    Keyed exactly like :func:`trace_for` plus the fetch-block shift, so
    scheme sweeps over one benchmark trace pay this once.  The returned
    containers are shared across runs — callers must not mutate them.
    """
    from repro.cpu.branch import CombinedPredictor
    from repro.cpu.isa import OP_BRANCH
    from repro.workloads.generator import trace_for

    trace = trace_for(profile, n_instructions, seed_offset)
    ops = trace.op
    pcs = trace.pc
    takens = trace.taken
    targets = trace.target
    n = len(ops)
    misp = bytearray(n)
    predictor = CombinedPredictor()
    pred_access = predictor.access
    ops_np = np.asarray(ops, dtype=np.int64)
    for i in np.nonzero(ops_np == OP_BRANCH)[0].tolist():
        if pred_access(pcs[i], takens[i], targets[i]):
            misp[i] = 1

    is_mem = (ops_np > 3) & (ops_np < 6)  # OP_LOAD / OP_STORE
    if fetch_shift < 0 or n == 0:
        new_block = bytes(n)
        interesting = np.nonzero(is_mem)[0].tolist()
    else:
        blocks = np.asarray(pcs, dtype=np.int64) >> fetch_shift
        nb_mask = np.empty(n, dtype=bool)
        nb_mask[0] = True
        np.not_equal(blocks[1:], blocks[:-1], out=nb_mask[1:])
        new_block = nb_mask.tobytes()
        interesting = np.nonzero(nb_mask | is_mem)[0].tolist()

    stats = predictor.stats
    # Byte-packed columns for the native phase-2 kernel (ops <= 6,
    # registers < 32, so every column fits uint8).
    columns = (
        bytes(ops),
        bytes(trace.dest),
        bytes(trace.src1),
        bytes(trace.src2),
    )
    return (
        bytes(misp),
        (stats.branches, stats.direction_mispredicts, stats.btb_misses),
        new_block,
        interesting,
        ops_np,
        columns,
    )


def run_batched(spec, profile, config: ICRConfig, machine):
    """Run one batch-eligible spec through the two-phase engine.

    Returns a :class:`~repro.harness.experiment.SimulationResult`
    bit-identical to the object path's (``SimulationResult.to_dict()``
    equality is what the differential harness asserts).
    """
    # Lazy imports: this module sits under repro.core; the harness and
    # energy layers import it lazily and vice versa.
    from repro.cache.stats import HierarchyStats
    from repro.cpu.branch import PredictorStats
    from repro.cpu.funits import _OP_TO_POOL, DEFAULT_SPECS
    from repro.cpu.isa import OP_BRANCH, OP_LOAD, OP_STORE
    from repro.cpu.pipeline import PipelineResult
    from repro.energy.accounting import EnergyParams, energy_of
    from repro.harness.experiment import SimulationResult
    from repro.workloads.generator import trace_for

    hier_cfg = machine.hierarchy
    pipe_cfg = machine.pipeline

    trace = trace_for(
        profile,
        spec.n_instructions + spec.warmup_instructions,
        seed_offset=spec.trace_seed,
    )
    ops = trace.op
    dests = trace.dest
    src1s = trace.src1
    src2s = trace.src2
    pcs = trace.pc
    addrs = trace.addr
    n = len(ops)

    dl1 = ArrayDL1(config)
    l1i = _PlainArrayCache(hier_cfg.l1i_geometry)
    l2 = _PlainArrayCache(hier_cfg.l2_geometry)
    mem_accesses = 0
    l2_latency = hier_cfg.l2_latency
    memory_latency = hier_cfg.memory_latency
    l2_access = l2.access

    def l2_dirty_evicted() -> None:
        nonlocal mem_accesses
        mem_accesses += 1

    l2.on_dirty_evict = l2_dirty_evicted

    dl1_shift = config.geometry.block_offset_bits

    def dl1_evicted(block_addr: int, dirty: bool, was_replica: bool) -> None:
        # Dirty dL1 victims are written back into L2 (misses go on to
        # memory), in-order with the demand access that evicted them.
        nonlocal mem_accesses
        if dirty and not l2_access(block_addr << dl1_shift, True):
            mem_accesses += 1

    dl1._evict_cb = dl1_evicted

    # ---- phase 1: program-order memory pass ---------------------------
    # The loop below is the fused fast path of the program-order engine.
    # The branch predictor and the fetch-block boundaries are pure
    # functions of the trace, so they come precomputed (and memoized per
    # trace) from :func:`_phase1_prestage`, which also supplies the index
    # list of instructions that can have a memory-side event at all —
    # the loop skips plain ALU ops entirely.  dL1 primary hits and iL1
    # fetch-block hits are inlined with *local* counters (flushed into
    # the stats objects at the end — pure increments commute with the
    # slow paths' own stats-object increments).  Everything rarer — dL1
    # misses, replica probes/fills, replication attempts, iL1 misses —
    # calls the corresponding ArrayDL1/_PlainArrayCache method, with the
    # shared LRU clock (whose *ordering* matters, unlike the counters)
    # synced around each slow call.  In batched mode every access
    # happens at now=0, so the decay timestamps need no maintenance at
    # all (the eligible decay windows never read them).
    l1i_latency = hier_cfg.l1i_latency
    fetch_lat = [l1i_latency] * n
    codes = bytearray(n)
    extra = [0] * n

    reset_at = spec.warmup_instructions
    model_icache = hier_cfg.model_icache
    fetch_shift = hier_cfg.l1i_geometry.block_offset_bits if model_icache else -1
    l1i_access = l1i.access
    l1i_miss_latency = l1i_latency + l2_latency
    l1i_mem_latency = l1i_latency + l2_latency + memory_latency

    misp, pred_counts, new_block, interesting, ops_np, columns = _phase1_prestage(
        profile,
        spec.n_instructions + spec.warmup_instructions,
        spec.trace_seed,
        fetch_shift,
    )

    # dL1 hot-path state, bound to locals.
    dshift = dl1._block_shift
    dtag_get = dl1._tag_index.get
    dlru = dl1._lru
    ddirty = dl1._dirty
    dprot = dl1._prot
    dreps = dl1._reps
    d_lru_clock = dl1._lru_clock
    trig_store = dl1._trig_store
    leave_replicas = dl1._leave_replicas
    parallel_lookup = dl1._parallel_lookup
    probe_replica = dl1._probe_replica
    fill_from_replica = dl1._fill_from_replica
    dl1_miss = dl1._miss
    dl1_replicate = dl1._replicate
    silent_sw = dl1._silent_sw
    silent_thr = dl1._silent_threshold
    silent_seq = dl1._silent_seq
    d_loads = d_stores = d_probes = d_lhits = d_shits = 0
    d_reads = d_writes = d_pchecks = d_pgens = d_echecks = d_egens = 0
    d_lhits_rep = d_rupdates = d_silent = 0

    # iL1 hot-path state.
    itag_get = l1i._tag_index.get
    ilru = l1i._lru
    i_lru_clock = l1i._lru_clock
    i_probes = i_loads = i_lhits = i_reads = 0

    pending_reset = reset_at if 0 < reset_at < n else -1
    for idx in interesting:
        if pending_reset >= 0 and idx >= pending_reset:
            # Warm-up exclusion: same boundary as the object pipeline.
            # The first visited instruction at or past the boundary
            # resets before any of its events; skipped instructions in
            # between had no hierarchy events by construction.  The slow
            # paths' increments live on the stats objects, the fast
            # paths' in the locals — zero both.
            pending_reset = -1
            dl1.stats.reset()
            l1i.stats.reset()
            l2.stats.reset()
            mem_accesses = 0
            d_loads = d_stores = d_probes = d_lhits = d_shits = 0
            d_reads = d_writes = d_pchecks = d_pgens = d_echecks = d_egens = 0
            d_lhits_rep = d_rupdates = d_silent = 0
            i_probes = i_loads = i_lhits = i_reads = 0
        if new_block[idx]:
            pc = pcs[idx]
            fi = itag_get(pc >> fetch_shift, -1)
            if fi >= 0:
                i_probes += 1
                i_loads += 1
                i_lhits += 1
                i_reads += 1
                i_lru_clock += 1
                ilru[fi] = i_lru_clock
            else:
                l1i._lru_clock = i_lru_clock
                l1i_access(pc, False)
                i_lru_clock = l1i._lru_clock
                if l2_access(pc, False):
                    fetch_lat[idx] = l1i_miss_latency
                else:
                    mem_accesses += 1
                    fetch_lat[idx] = l1i_mem_latency
        op = ops[idx]
        if op == OP_LOAD:
            addr = addrs[idx]
            d_loads += 1
            d_probes += 1
            ba = addr >> dshift
            f = dtag_get(ba, -1)
            if f >= 0:
                d_lhits += 1
                d_reads += 1
                d_lru_clock += 1
                dlru[f] = d_lru_clock
                if dprot[f]:
                    d_echecks += 1
                else:
                    d_pchecks += 1
                if dreps[f]:
                    d_lhits_rep += 1
                    if parallel_lookup:
                        # PP reads primary and replica together.
                        d_reads += 1
                        d_pchecks += 1
                    codes[idx] = OUT_LOAD_HIT_REP
                else:
                    codes[idx] = OUT_LOAD_HIT_UNREP
            else:
                dl1._lru_clock = d_lru_clock
                r = probe_replica(ba) if leave_replicas else -1
                if r >= 0:
                    code = fill_from_replica(r, False, 0)
                else:
                    code = dl1_miss(ba, False, 0)
                d_lru_clock = dl1._lru_clock
                codes[idx] = code
                if code == OUT_MISS:
                    if l2_access(addr, False):
                        extra[idx] = l2_latency
                    else:
                        mem_accesses += 1
                        extra[idx] = l2_latency + memory_latency
        elif op == OP_STORE:
            addr = addrs[idx]
            d_stores += 1
            d_probes += 1
            ba = addr >> dshift
            f = dtag_get(ba, -1)
            if f >= 0:
                d_shits += 1
                if silent_sw:
                    # Silent-store-aware ECC: the read-compare shows the
                    # value is unchanged; skip write/dirty/regenerate.
                    d_lru_clock += 1
                    dlru[f] = d_lru_clock
                    silent_seq += 1
                    if silent_store_hash(ba, silent_seq) < silent_thr:
                        d_silent += 1
                        d_reads += 1
                        if dprot[f]:
                            d_echecks += 1
                        else:
                            d_pchecks += 1
                    else:
                        d_writes += 1
                        ddirty[f] = True
                        if dprot[f]:
                            d_egens += 1
                        else:
                            d_pgens += 1
                    # Suppression implies a non-replicating scheme, so
                    # there is no replica/trigger work on this path.
                    continue
                d_writes += 1
                ddirty[f] = True
                d_lru_clock += 1
                dlru[f] = d_lru_clock
                if dprot[f]:
                    d_egens += 1
                else:
                    d_pgens += 1
                reps = dreps[f]
                if reps:
                    for r in reps:
                        d_writes += 1
                        d_rupdates += 1
                        d_pgens += 1
                        d_lru_clock += 1
                        dlru[r] = d_lru_clock
                elif trig_store:
                    dl1._lru_clock = d_lru_clock
                    dl1_replicate(f, 0)
                    d_lru_clock = dl1._lru_clock
            else:
                # Write-allocate: a store miss brings the line in off
                # the critical path (L2 traffic only; the pipeline sees
                # store_latency).
                dl1._lru_clock = d_lru_clock
                r = probe_replica(ba) if leave_replicas else -1
                if r >= 0:
                    code = fill_from_replica(r, True, 0)
                else:
                    code = dl1_miss(ba, True, 0)
                d_lru_clock = dl1._lru_clock
                if code == OUT_MISS:
                    if not l2_access(addr, False):
                        mem_accesses += 1

    if pending_reset >= 0:
        # Every instruction past the warm-up boundary was event-free —
        # the measured window saw nothing.
        dl1.stats.reset()
        l1i.stats.reset()
        l2.stats.reset()
        mem_accesses = 0
        d_loads = d_stores = d_probes = d_lhits = d_shits = 0
        d_reads = d_writes = d_pchecks = d_pgens = d_echecks = d_egens = 0
        d_lhits_rep = d_rupdates = d_silent = 0
        i_probes = i_loads = i_lhits = i_reads = 0

    # Flush the fast-path locals back into the shared state.
    dl1._lru_clock = d_lru_clock
    dl1._silent_seq = silent_seq
    ds = dl1.stats
    ds.loads += d_loads
    ds.stores += d_stores
    ds.tag_probes += d_probes
    ds.load_hits += d_lhits
    ds.store_hits += d_shits
    ds.array_reads += d_reads
    ds.array_writes += d_writes
    ds.parity_checks += d_pchecks
    ds.parity_generates += d_pgens
    ds.ecc_checks += d_echecks
    ds.ecc_generates += d_egens
    ds.load_hits_with_replica += d_lhits_rep
    ds.replica_updates += d_rupdates
    ds.silent_stores += d_silent
    l1i._lru_clock = i_lru_clock
    istats = l1i.stats
    istats.tag_probes += i_probes
    istats.loads += i_loads
    istats.load_hits += i_lhits
    istats.array_reads += i_reads
    predictor_stats = PredictorStats(*pred_counts)

    # ---- table-driven outcome -> execution-latency translation --------
    # One vectorized pass over the whole trace: every instruction's
    # execution latency is resolved up front — the functional-unit
    # latency by op class, the store latency for stores, and for loads
    # the scheme's latency-table entry for the recorded outcome code
    # plus the measured L2/memory latency for misses.
    fu_specs = dict(DEFAULT_SPECS)
    if pipe_cfg.fu_specs:
        fu_specs.update(pipe_cfg.fu_specs)
    op_latency = np.zeros(8, dtype=np.int64)
    for op, name in _OP_TO_POOL.items():
        op_latency[op] = fu_specs[name].latency

    store_latency = hier_cfg.store_latency
    op_latency[OP_STORE] = store_latency
    exec_np = op_latency[ops_np]
    load_mask = ops_np == OP_LOAD
    codes_np = np.frombuffer(bytes(codes), dtype=np.uint8)
    load_lat = dl1.latency_table[codes_np] + np.asarray(extra, dtype=np.int64)
    exec_np[load_mask] = load_lat[load_mask]

    # ---- phase 2: scoreboard timing loop ------------------------------
    width = pipe_cfg.issue_width
    ruu_size = pipe_cfg.ruu_size
    lsq_size = pipe_cfg.lsq_size
    penalty = pipe_cfg.mispredict_penalty

    # Mix counters are order-independent — take them off the hot loop and
    # let the C level count them.  (`misp` is only ever set on branches,
    # so its population count is exactly the mispredict count.)
    loads = ops.count(OP_LOAD)
    stores = ops.count(OP_STORE)
    branches = ops.count(OP_BRANCH)
    mispredicts = sum(misp)

    # The scoreboard's only output is the final cycle count, so it can
    # run in the optional compiled kernel (a line-for-line transcription
    # of the loop below — see repro.core._native).  Ops sharing a pool
    # (branches issue on the integer ALUs) share one slice of the flat
    # unit array, exactly like the shared list objects in `by_op`.
    pool_offsets: dict = {}
    total_units = 0
    for name, fu in fu_specs.items():
        pool_offsets[name] = total_units
        total_units += fu.count
    pool_off = np.zeros(8, dtype=np.int64)
    pool_cnt = np.ones(8, dtype=np.int64)
    pool_interval = np.ones(8, dtype=np.int64)
    for op, name in _OP_TO_POOL.items():
        pool_off[op] = pool_offsets[name]
        pool_cnt[op] = fu_specs[name].count
        pool_interval[op] = fu_specs[name].interval

    ops_b, dests_b, src1_b, src2_b = columns
    retire_cycle = _native.phase2_cycles(
        n,
        ops_b,
        dests_b,
        src1_b,
        src2_b,
        np.asarray(fetch_lat, dtype=np.int64),
        exec_np,
        misp,
        width,
        penalty,
        ruu_size,
        lsq_size,
        pool_off,
        pool_cnt,
        pool_interval,
        total_units,
    )
    if retire_cycle is None:
        retire_cycle = _phase2_python(
            ops, dests, src1s, src2s, fetch_lat, exec_np.tolist(), misp,
            fu_specs, width, ruu_size, lsq_size, penalty,
        )

    # ---- result packing ----------------------------------------------
    pipeline_result = PipelineResult(
        cycles=retire_cycle,
        instructions=n,
        loads=loads,
        stores=stores,
        branches=branches,
        mispredicts=mispredicts,
        predictor_stats=predictor_stats,
    )
    hierarchy_stats = HierarchyStats(
        l1d=dl1.stats,
        l1i=l1i.stats,
        l2=l2.stats,
        memory_accesses=mem_accesses,
    )
    params = EnergyParams.from_geometries(
        config.geometry,
        hier_cfg.l2_geometry,
        parity_fraction=machine.parity_fraction,
        ecc_fraction=machine.ecc_fraction,
    )
    stats = dl1.stats
    return SimulationResult(
        benchmark=profile.name,
        scheme=config.name,
        instructions=n,
        cycles=retire_cycle,
        pipeline=pipeline_result,
        dl1=stats.snapshot(),
        miss_rate=stats.miss_rate,
        load_miss_rate=stats.load_miss_rate,
        replication_ability=stats.replication_ability,
        second_replica_ability=stats.second_replica_ability,
        loads_with_replica=stats.loads_with_replica,
        unrecoverable_load_fraction=stats.unrecoverable_load_fraction,
        energy=energy_of(hierarchy_stats, params, cycles=retire_cycle),
        write_buffer_stalls=0,
        vulnerability=None,
        l1i=None,
    )


def _phase2_python(
    ops, dests, src1s, src2s, fetch_lat, exec_lat, misp,
    fu_specs, width, ruu_size, lsq_size, penalty,
):
    """Pure-Python phase-2 scoreboard (fallback for :mod:`._native`).

    Semantically identical to :meth:`OutOfOrderPipeline.run`'s timing
    loop against precomputed latency streams; the compiled kernel is a
    line-for-line transcription of this function.  Returns the final
    cycle count — phase 2's only output, every other statistic being
    order-independent and precomputed.
    """
    from repro.cpu.funits import _OP_TO_POOL

    pools = {name: [0] * fu.count for name, fu in fu_specs.items()}
    by_op: list = [None] * 8
    for op, name in _OP_TO_POOL.items():
        by_op[op] = (pools[name], fu_specs[name].interval)

    reg_ready = [0] * 64
    ruu_ring = [0] * ruu_size
    lsq_ring = [0] * lsq_size

    dispatch_cycle = 0
    dispatched_in_cycle = 0
    redirect_floor = 0
    retire_cycle = 0
    retired_in_cycle = 0
    ruu_at = 0
    lsq_at = 0

    for op, dest, s1, s2, fetch_latency, execution_latency, mp in zip(
        ops, dests, src1s, src2s, fetch_lat, exec_lat, misp
    ):
        # --- dispatch constraints ---
        earliest = redirect_floor
        ruu_free = ruu_ring[ruu_at]
        if ruu_free > earliest:
            earliest = ruu_free
        is_mem = 3 < op < 6  # OP_LOAD or OP_STORE
        if is_mem:
            lsq_free = lsq_ring[lsq_at]
            if lsq_free > earliest:
                earliest = lsq_free
        if earliest > dispatch_cycle:
            dispatch_cycle = earliest
            dispatched_in_cycle = 1
        else:
            dispatched_in_cycle += 1
            if dispatched_in_cycle > width:
                dispatch_cycle += 1
                dispatched_in_cycle = 1

        # --- instruction fetch (precomputed latency) ---
        if fetch_latency > 1:
            dispatch_cycle += fetch_latency - 1
            dispatched_in_cycle = 1

        # --- operand readiness and functional-unit issue (inlined) ---
        ready = dispatch_cycle
        t = reg_ready[s1]
        if t > ready:
            ready = t
        t = reg_ready[s2]
        if t > ready:
            ready = t
        free, interval = by_op[op]
        # First-free unit, first index on ties — list.index(min) keeps
        # the same tie-break as the linear scan it replaces.
        best_time = min(free)
        start = ready if ready >= best_time else best_time
        free[free.index(best_time)] = start + interval

        # --- execution (latency precomputed for every op class) ---
        complete = start + execution_latency
        if mp:
            floor = complete + penalty
            if floor > redirect_floor:
                redirect_floor = floor

        if dest:
            reg_ready[dest] = complete

        # --- in-order retirement, up to `width` per cycle ---
        # (`retire_cycle` is the last retirement time: the original's
        # separate `last_retire` provably equals it after every step.)
        if complete > retire_cycle:
            retire_cycle = complete
            retired_in_cycle = 1
        else:
            retired_in_cycle += 1
            if retired_in_cycle > width:
                retire_cycle += 1
                retired_in_cycle = 1
        ruu_ring[ruu_at] = retire_cycle
        ruu_at += 1
        if ruu_at == ruu_size:
            ruu_at = 0
        if is_mem:
            lsq_ring[lsq_at] = retire_cycle
            lsq_at += 1
            if lsq_at == lsq_size:
                lsq_at = 0
    return retire_cycle
