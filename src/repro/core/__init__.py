"""The paper's contribution: in-cache replication for the data L1."""

from repro.core.config import (
    ICRConfig,
    LookupMode,
    ReplicationTrigger,
    VictimPolicy,
    power2_distances,
    resolve_distance,
    variant,
)
from repro.core.decay import SATURATION_TICKS, DeadBlockPredictor
from repro.core.icr_cache import ICRCache
from repro.core.policies import (
    LookupPolicy,
    ProtectionPolicy,
    ReplicationPolicy,
    VictimSelector,
)
from repro.core.protocol import DataL1, DL1Outcome, InjectionTarget
from repro.core.registry import (
    SchemeEntry,
    SchemeInfo,
    UnknownSchemeError,
    build_dl1,
    get_scheme,
    list_schemes,
    register,
    registered_schemes,
    scheme_entry,
    scheme_info,
)
from repro.core.schemes import (
    ALL_SCHEMES,
    HEADLINE_SCHEMES,
    iter_configs,
    make_cache,
    make_config,
    normalize_scheme_name,
)
from repro.core.victim import find_replica_victim

__all__ = [
    "ICRConfig",
    "LookupMode",
    "ReplicationTrigger",
    "VictimPolicy",
    "power2_distances",
    "resolve_distance",
    "variant",
    "SATURATION_TICKS",
    "DeadBlockPredictor",
    "ICRCache",
    "ALL_SCHEMES",
    "HEADLINE_SCHEMES",
    "iter_configs",
    "make_cache",
    "make_config",
    "normalize_scheme_name",
    "find_replica_victim",
    "LookupPolicy",
    "ProtectionPolicy",
    "ReplicationPolicy",
    "VictimSelector",
    "DataL1",
    "DL1Outcome",
    "InjectionTarget",
    "SchemeEntry",
    "SchemeInfo",
    "UnknownSchemeError",
    "build_dl1",
    "get_scheme",
    "list_schemes",
    "register",
    "registered_schemes",
    "scheme_entry",
    "scheme_info",
]
