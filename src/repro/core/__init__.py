"""The paper's contribution: in-cache replication for the data L1."""

from repro.core.config import (
    ICRConfig,
    LookupMode,
    ReplicationTrigger,
    VictimPolicy,
    power2_distances,
    resolve_distance,
    variant,
)
from repro.core.decay import SATURATION_TICKS, DeadBlockPredictor
from repro.core.icr_cache import ICRCache
from repro.core.schemes import (
    ALL_SCHEMES,
    HEADLINE_SCHEMES,
    iter_configs,
    make_cache,
    make_config,
)
from repro.core.victim import find_replica_victim

__all__ = [
    "ICRConfig",
    "LookupMode",
    "ReplicationTrigger",
    "VictimPolicy",
    "power2_distances",
    "resolve_distance",
    "variant",
    "SATURATION_TICKS",
    "DeadBlockPredictor",
    "ICRCache",
    "ALL_SCHEMES",
    "HEADLINE_SCHEMES",
    "iter_configs",
    "make_cache",
    "make_config",
    "find_replica_victim",
]
