"""Pluggable replica placement: where copies of a line may live.

The paper fixes placement as a candidate-*distance* walk from the home
set (Distance-1/Distance-N/2 in Section 5.1, the power-2 multi-attempt
sequence in Section 5.5, Distance-N/4 for second replicas).  This module
lifts that decision into a first-class policy so placement becomes a
swept experimental axis instead of a constant baked into two hot paths:

* :class:`DistanceWalk` — the paper's scheme, bit-identical to the
  previously inlined lists: a placement attempt walks
  ``(home + d) % n_sets`` over the configured distances.  Built whenever
  :attr:`ICRConfig.placement` is ``None``, so every pre-existing scheme
  is untouched by the refactor.
* :class:`PowerOfTwoMultiAttempt` — the Section 5.5 sequence
  (:func:`~repro.core.config.power2_distances`) as a named policy.
* :class:`HashRing` — consistent-hash-ring placement with replication
  factor N: every set contributes ``virtual_nodes`` points on a ring,
  a line hashes to a ring position, and its replica *i* walks the
  distinct-set successor window starting at offset *i* (``attempts``
  candidate sets per replica, home set excluded).  Adding sets moves
  only a 1/n_sets fraction of lines — the classic consistent-hashing
  property — and the successor window doubles as the fallback walk when
  the preferred set has no victim.

Both kernels consume the same policy object through two views:

* **home-pure** policies (``ring is None``): the walk depends only on
  the home set, so the kernels keep their original distance loops —
  ``distances`` / ``second_distances`` / ``all_distances`` are resolved
  here exactly as ``ReplicationPolicy.__init__`` used to.
* **ring** policies: per-line candidate *sets* come from
  :meth:`HashRing.lookup`, a precomputed per-slot candidate table plus a
  per-line memo, so the SoA array kernel's fused loop pays one dict
  probe per placement — the same shape as its distance path.

The knobs travel as plain scalars inside ``ExperimentSpec.scheme_kwargs``
(``placement="ring"``, ``replication_factor``, ``virtual_nodes``,
``ring_attempts``, ``ring_hash``), so they are cache-key-affecting and
wire-safe without any spec format change.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.config import power2_distances

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ICRConfig

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_WEYL = 0xD1B54A32D192ED03


def mix64(x: int) -> int:
    """SplitMix64/Murmur3 finalizer: a cheap, well-mixed 64-bit hash."""
    x &= _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 29
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    x ^= x >> 32
    return x


@dataclass(frozen=True)
class PlacementSpec:
    """The wire-safe description of a placement policy.

    Lives on :attr:`ICRConfig.placement`; ``None`` there means the
    paper's distance walk.  ``kind`` selects the policy class,
    the remaining knobs parameterize it:

    * ``"ring"`` — :class:`HashRing` with ``replication_factor``
      replicas, ``virtual_nodes`` ring points per set, an
      ``attempts``-set fallback walk per replica, and ``hash_mode``
      either ``"mix"`` (hashed ring) or ``"identity"`` (sets laid out
      in order — makes ring placement distance-equivalent, used by the
      paper-pin tests).
    * ``"power2"`` — :class:`PowerOfTwoMultiAttempt` with ``attempts``
      candidate sets.
    * ``"distance"`` — explicit spelling of the default walk.
    """

    kind: str = "distance"
    replication_factor: int = 1
    virtual_nodes: int = 8
    attempts: int = 4
    hash_mode: str = "mix"

    def __post_init__(self) -> None:
        if self.kind not in ("distance", "power2", "ring"):
            raise ValueError(f"unknown placement kind {self.kind!r}")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.attempts < 1:
            raise ValueError("placement attempts must be >= 1")
        if self.hash_mode not in ("mix", "identity"):
            raise ValueError(f"unknown ring hash mode {self.hash_mode!r}")


class PlacementPolicy:
    """Base class: an ordered candidate-set walk per replica of a line.

    ``home_pure`` policies expose the classic distance lists and leave
    the kernels' ``(home + d) % n`` loops intact; ring policies answer
    per-line through :meth:`HashRing.lookup`.
    """

    #: True when the walk depends only on the home set (distance lists).
    home_pure = True
    kind = "distance"

    #: Resolved first-replica / second-replica / probe-order distances.
    distances: tuple[int, ...] = ()
    second_distances: tuple[int, ...] = ()
    all_distances: tuple[int, ...] = ()


class DistanceWalk(PlacementPolicy):
    """The paper's candidate-distance walk (bit-identical default).

    Resolution matches the pre-refactor ``ReplicationPolicy.__init__``
    exactly: first-replica distances from the config, the Distance-N/4
    fallback when hints may request an unconfigured second replica, and
    the ordered-dedupe probe list.
    """

    home_pure = True
    kind = "distance"

    def __init__(
        self,
        distances: tuple[int, ...],
        second_distances: tuple[int, ...],
        all_distances: tuple[int, ...],
    ):
        self.distances = distances
        self.second_distances = second_distances
        self.all_distances = all_distances

    @classmethod
    def from_config(cls, config: "ICRConfig") -> "DistanceWalk":
        distances = config.resolved_distances()
        # Second-replica placement falls back to Distance-N/4 (the
        # paper's choice) when software hints request two replicas but
        # the config did not set explicit second distances.
        second = config.resolved_second_distances() or (
            config.geometry.n_sets // 4,
        )
        all_distances = config.all_replica_distances()
        if config.hints is not None:
            # Hints may place second replicas at the fallback distance.
            for d in second:
                if d not in all_distances:
                    all_distances = all_distances + (d,)
        return cls(distances, second, all_distances)


class PowerOfTwoMultiAttempt(DistanceWalk):
    """Section 5.5's N/2 ± N/2^k multi-attempt sequence as a policy."""

    kind = "power2"

    def __init__(self, n_sets: int, attempts: int):
        seq = tuple(power2_distances(n_sets, attempts))
        super().__init__(seq, (n_sets // 4,), seq)
        self.attempts = attempts


class HashRing(PlacementPolicy):
    """Consistent-hash-ring placement with replication factor N.

    Every set owns ``virtual_nodes`` ring positions; a line hashes to a
    position and takes the next ``replication_factor + attempts - 1``
    *distinct* sets clockwise (home set excluded) as its candidate
    window.  Replica *i* (0-based) tries ``window[i : i + attempts]``,
    so preferred sets are disjoint across replicas while fallbacks
    overlap — the SNIPPETS.md successor-walk idiom.  The window is also
    the replica probe order on loads.

    The walk is key-independent given the starting ring slot, so a
    per-slot candidate table is precomputed once and per-line lookups
    are a hash + bisect + memo — cheap enough for the SoA fused loop.
    """

    home_pure = False
    kind = "ring"

    def __init__(
        self,
        n_sets: int,
        *,
        replication_factor: int = 1,
        virtual_nodes: int = 8,
        attempts: int = 4,
        hash_mode: str = "mix",
    ):
        if n_sets < 2:
            raise ValueError("a hash ring needs at least 2 sets")
        spec = PlacementSpec(  # reuse its validation
            kind="ring",
            replication_factor=replication_factor,
            virtual_nodes=virtual_nodes,
            attempts=attempts,
            hash_mode=hash_mode,
        )
        self.n_sets = n_sets
        self.replication_factor = spec.replication_factor
        self.virtual_nodes = spec.virtual_nodes
        self.attempts = spec.attempts
        self.hash_mode = spec.hash_mode
        self._set_mask = n_sets - 1
        self._identity = hash_mode == "identity"
        # The candidate window must cover every replica's fallback walk:
        # replica N-1 ends at offset (N-1) + attempts - 1.
        window = replication_factor + attempts - 1
        self.window_len = min(window, n_sets - 1)

        points: list[tuple[int, int]] = []
        if self._identity:
            for s in range(n_sets):
                for v in range(virtual_nodes):
                    points.append((s * virtual_nodes + v, s))
        else:
            for s in range(n_sets):
                for v in range(virtual_nodes):
                    points.append((mix64((s + 1) * _GOLDEN ^ (v + 1) * _WEYL), s))
        points.sort()
        self._positions = [p for p, _ in points]
        ring_sets = [s for _, s in points]
        n_points = len(points)

        # Per-slot distinct-set successor walks, one set longer than the
        # window so excluding the home set still leaves a full window.
        need = min(self.window_len + 1, n_sets)
        table: list[tuple[int, ...]] = []
        for i in range(n_points):
            seen: set[int] = set()
            walk: list[int] = []
            j = i
            while len(walk) < need:
                s = ring_sets[j % n_points]
                if s not in seen:
                    seen.add(s)
                    walk.append(s)
                j += 1
            table.append(tuple(walk))
        self._slot_walk = table
        # block_addr -> (window, {set: probe position}, replica walks)
        self._memo: dict[int, tuple] = {}

    def _key_position(self, block_addr: int) -> int:
        if self._identity:
            # A line lands exactly on its home set's first point, so the
            # successor walk is home+1, home+2, ... — distance-equivalent.
            return (block_addr & self._set_mask) * self.virtual_nodes
        return mix64(block_addr * _GOLDEN + _WEYL)

    def lookup(self, block_addr: int) -> tuple:
        """``(window, position-map, replica walks)`` for one line.

        ``window`` is the ordered candidate sets (probe order on loads),
        ``position-map`` maps a set index to its window position (used
        to rank live replicas and charge probe energy), and
        ``replica walks`` holds the per-replica fallback walks fed to
        the kernels' placement loops.
        """
        entry = self._memo.get(block_addr)
        if entry is None:
            home = block_addr & self._set_mask
            pos = self._key_position(block_addr)
            slot = bisect.bisect_right(self._positions, pos) % len(self._positions)
            walk = self._slot_walk[slot]
            window = tuple(s for s in walk if s != home)[: self.window_len]
            a = self.attempts
            walks = tuple(
                window[i : i + a] for i in range(self.replication_factor)
            )
            entry = (window, {s: i for i, s in enumerate(window)}, walks)
            self._memo[block_addr] = entry
        return entry


def build_placement(config: "ICRConfig") -> PlacementPolicy:
    """The policy object for one config; ``placement=None`` → the paper."""
    spec = config.placement
    if spec is None or spec.kind == "distance":
        return DistanceWalk.from_config(config)
    n_sets = config.geometry.n_sets
    if spec.kind == "power2":
        return PowerOfTwoMultiAttempt(n_sets, spec.attempts)
    if spec.kind == "ring":
        return HashRing(
            n_sets,
            replication_factor=spec.replication_factor,
            virtual_nodes=spec.virtual_nodes,
            attempts=spec.attempts,
            hash_mode=spec.hash_mode,
        )
    raise ValueError(f"unknown placement kind {spec.kind!r}")
