"""Software-controlled replication — the paper's stated future work.

Section 6: "we plan to explore controlling replication using software
mechanisms that can direct how many replicas are needed for each line,
when such replication should be initiated, and what blocks should not be
replicated."  This module implements exactly that interface: per-address-
range directives that the ICR cache consults before every replication
decision.

Three directives, matching the three questions in the quote:

* **how many** — ``replicas(range, n)`` overrides the replica count for
  blocks in the range (0, 1 or 2);
* **when** — ``eager(range)`` initiates replication at fill time for the
  range even when the cache otherwise replicates only on stores (useful
  for critical read-only data under the cheap ``S`` trigger);
* **what not** — ``never(range)`` excludes the range from replication
  entirely (e.g. scratch data whose loss is harmless), freeing dead space
  for lines that matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte-address range [start, end)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"bad address range [{self.start:#x}, {self.end:#x})")

    def contains_block(self, block_addr: int, block_size: int) -> bool:
        """Whether the cache line at *block_addr* overlaps this range."""
        byte_addr = block_addr * block_size
        return byte_addr < self.end and byte_addr + block_size > self.start


@dataclass(frozen=True)
class _CountDirective:
    range: AddressRange
    count: int


@dataclass
class ReplicationHints:
    """A set of software directives consulted by the ICR cache.

    Directives are matched in registration order; the first matching
    directive of each kind wins.  Blocks not covered by any directive get
    the hardware default behaviour.
    """

    _never: list[AddressRange] = field(default_factory=list)
    _eager: list[AddressRange] = field(default_factory=list)
    _counts: list[_CountDirective] = field(default_factory=list)

    # -- registration -------------------------------------------------------

    def never(self, start: int, end: int) -> "ReplicationHints":
        """Never replicate lines in [start, end)."""
        self._never.append(AddressRange(start, end))
        return self

    def eager(self, start: int, end: int) -> "ReplicationHints":
        """Replicate lines in [start, end) at fill time, not just on stores."""
        self._eager.append(AddressRange(start, end))
        return self

    def replicas(self, start: int, end: int, count: int) -> "ReplicationHints":
        """Request *count* replicas (0..2) for lines in [start, end)."""
        if not 0 <= count <= 2:
            raise ValueError("software hints support 0, 1 or 2 replicas")
        self._counts.append(_CountDirective(AddressRange(start, end), count))
        return self

    # -- queries used by the cache ------------------------------------------

    def may_replicate(self, block_addr: int, block_size: int) -> bool:
        if any(r.contains_block(block_addr, block_size) for r in self._never):
            return False
        return self.replica_count(block_addr, block_size, default=1) > 0

    def replica_count(
        self, block_addr: int, block_size: int, default: int
    ) -> int:
        """Replicas requested for this line (*default* when unhinted)."""
        if any(r.contains_block(block_addr, block_size) for r in self._never):
            return 0
        for directive in self._counts:
            if directive.range.contains_block(block_addr, block_size):
                return directive.count
        return default

    def replicate_on_fill(self, block_addr: int, block_size: int) -> bool:
        """Whether software asked for fill-time replication of this line."""
        return any(r.contains_block(block_addr, block_size) for r in self._eager)

    def describe(self) -> str:
        """Human-readable summary of all registered directives."""
        lines: list[str] = []
        for r in self._never:
            lines.append(f"never  [{r.start:#x}, {r.end:#x})")
        for r in self._eager:
            lines.append(f"eager  [{r.start:#x}, {r.end:#x})")
        for d in self._counts:
            lines.append(
                f"count={d.count} [{d.range.start:#x}, {d.range.end:#x})"
            )
        return "\n".join(lines) or "(no directives)"
