"""The named dL1 schemes evaluated in the paper (Section 3.2).

========================  =====================================================
``BaseP``                 plain cache, byte parity everywhere, 1-cycle loads
``BaseECC``               plain cache, SEC-DED everywhere, 2-cycle loads
``BaseECC-spec``          BaseECC with speculative 1-cycle loads (Section 5.9)
``BaseP-WT``              BaseP with a write-through dL1 + 8-entry coalescing
                          write buffer (Section 5.8, POWER4-style)
``ICR-P-PS (LS|S)``       parity everywhere, replica consulted serially
``ICR-P-PP (LS|S)``       parity everywhere, replica compared in parallel
``ICR-ECC-PS (LS|S)``     ECC on unreplicated lines, serial replica lookup
``ICR-ECC-PP (LS|S)``     ECC on unreplicated lines, parallel replica compare
========================  =====================================================

``S`` replicates on stores only; ``LS`` also on fills (dL1 misses).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cache.set_assoc import CacheGeometry
from repro.coding.protection import ProtectionKind
from repro.core import registry
from repro.core.config import (
    ICRConfig,
    LookupMode,
    ReplicationTrigger,
    VictimPolicy,
    variant,
)
from repro.core.placement import PlacementSpec

#: Scheme names in the order the paper's Figure 9 presents them.
ALL_SCHEMES: tuple[str, ...] = (
    "BaseP",
    "BaseECC",
    "ICR-P-PS(LS)",
    "ICR-P-PS(S)",
    "ICR-P-PP(LS)",
    "ICR-P-PP(S)",
    "ICR-ECC-PS(LS)",
    "ICR-ECC-PS(S)",
    "ICR-ECC-PP(LS)",
    "ICR-ECC-PP(S)",
)

#: The two schemes the paper's later sections focus on.
HEADLINE_SCHEMES: tuple[str, ...] = ("ICR-P-PS(S)", "ICR-ECC-PS(S)")

_TRIGGERS = {"S": ReplicationTrigger.STORES, "LS": ReplicationTrigger.LOADS_AND_STORES}
_LOOKUPS = {"PS": LookupMode.SERIAL, "PP": LookupMode.PARALLEL}
_PROTECTIONS = {"P": ProtectionKind.PARITY, "ECC": ProtectionKind.ECC}


def normalize_scheme_name(name: str) -> str:
    """Canonicalize spellings like ``icr-p-ps (s)`` to ``ICR-P-PS(S)``.

    Resolution goes through the scheme registry: unknown names raise a
    :class:`ValueError` listing every registered scheme instead of
    falling through to a confusing downstream error.
    """
    return registry.normalize_scheme_name(name)


def make_config(
    name: str,
    *,
    geometry: Optional[CacheGeometry] = None,
    decay_window: Optional[int] = 0,
    victim_policy: VictimPolicy = VictimPolicy.DEAD_ONLY,
    replica_distances: tuple = ("N/2",),
    second_replica_distances: tuple = (),
    max_replicas: int = 1,
    leave_replicas_on_evict: bool = False,
    replicate_into_invalid: bool = False,
    replacement: str = "lru",
    track_data: bool = False,
    placement: Optional[str] = None,
    replication_factor: int = 1,
    virtual_nodes: int = 8,
    ring_attempts: int = 4,
    ring_hash: str = "mix",
    silent_store_fraction: float = 0.4,
) -> ICRConfig:
    """Build the :class:`ICRConfig` for a named scheme.

    The keyword knobs cover the parameters the paper varies around the
    named schemes: dead-block aggressiveness, victim policy, attempt list,
    replica count, and the Section 5.6 leave-in-place mode — plus the
    placement-layer knobs (``placement`` selects ``"ring"``/``"power2"``
    over the default distance walk, parameterized by
    ``replication_factor``/``virtual_nodes``/``ring_attempts``/
    ``ring_hash``) and the ``BaseECC-SW`` silent-store rate.
    """
    canonical = normalize_scheme_name(name)
    if registry.scheme_info(canonical).kind == "baseline":
        raise ValueError(
            f"{canonical!r} is a baseline model, not an ICR-family scheme; "
            "build it with repro.core.registry.build_dl1"
        )
    if placement in (None, "distance"):
        placement_spec = None
    elif placement == "ring":
        placement_spec = PlacementSpec(
            kind="ring",
            replication_factor=replication_factor,
            virtual_nodes=virtual_nodes,
            attempts=ring_attempts,
            hash_mode=ring_hash,
        )
    elif placement == "power2":
        placement_spec = PlacementSpec(kind="power2", attempts=ring_attempts)
    else:
        raise ValueError(f"unknown placement {placement!r}")
    base = ICRConfig(
        name=canonical,
        geometry=geometry or CacheGeometry(16 * 1024, 4, 64),
        decay_window=decay_window,
        victim_policy=victim_policy,
        replica_distances=tuple(replica_distances),
        second_replica_distances=tuple(second_replica_distances),
        max_replicas=max_replicas,
        leave_replicas_on_evict=leave_replicas_on_evict,
        replicate_into_invalid=replicate_into_invalid,
        replacement=replacement,
        track_data=track_data,
        placement=placement_spec,
        silent_store_fraction=silent_store_fraction,
    )
    if canonical == "BaseP":
        return variant(
            base,
            trigger=ReplicationTrigger.NONE,
            protection_unreplicated=ProtectionKind.PARITY,
            max_replicas=1,
            second_replica_distances=(),
            leave_replicas_on_evict=False,
        )
    if canonical == "BaseP-WT":
        return variant(
            base,
            name="BaseP-WT",
            trigger=ReplicationTrigger.NONE,
            protection_unreplicated=ProtectionKind.PARITY,
            write_policy="writethrough",
            max_replicas=1,
            second_replica_distances=(),
            leave_replicas_on_evict=False,
        )
    if canonical == "BaseECC":
        return variant(
            base,
            trigger=ReplicationTrigger.NONE,
            protection_unreplicated=ProtectionKind.ECC,
            max_replicas=1,
            second_replica_distances=(),
            leave_replicas_on_evict=False,
        )
    if canonical == "BaseECC-spec":
        return variant(
            base,
            name="BaseECC-spec",
            trigger=ReplicationTrigger.NONE,
            protection_unreplicated=ProtectionKind.ECC,
            speculative_ecc_loads=True,
            max_replicas=1,
            second_replica_distances=(),
            leave_replicas_on_evict=False,
        )
    if canonical == "BaseECC-SW":
        return variant(
            base,
            name="BaseECC-SW",
            trigger=ReplicationTrigger.NONE,
            protection_unreplicated=ProtectionKind.ECC,
            silent_store_suppression=True,
            max_replicas=1,
            second_replica_distances=(),
            leave_replicas_on_evict=False,
        )
    if canonical.startswith("ICR-Ring-"):
        # The name's replication factor wins; the remaining ring knobs
        # come from the keyword arguments.
        factor = int(canonical[len("ICR-Ring-"):])
        return variant(
            base,
            name=canonical,
            trigger=ReplicationTrigger.STORES,
            lookup=LookupMode.SERIAL,
            protection_unreplicated=ProtectionKind.PARITY,
            placement=PlacementSpec(
                kind="ring",
                replication_factor=factor,
                virtual_nodes=virtual_nodes,
                attempts=ring_attempts,
                hash_mode=ring_hash,
            ),
        )
    # ICR-<prot>-<lookup>(<trigger>)
    try:
        body, trigger_part = canonical.split("(")
        trigger_key = trigger_part.rstrip(")")
        _, prot_key, lookup_key = body.split("-")
        return variant(
            base,
            name=f"ICR-{prot_key}-{lookup_key}({trigger_key})",
            trigger=_TRIGGERS[trigger_key],
            lookup=_LOOKUPS[lookup_key],
            protection_unreplicated=_PROTECTIONS[prot_key],
        )
    except (ValueError, KeyError) as exc:
        raise registry.UnknownSchemeError(
            f"scheme {name!r} is not an ICR-family config scheme"
        ) from exc


def make_cache(name: str, **kwargs):
    """Convenience: the simulatable cache model for a named scheme.

    Resolves through the scheme registry, so every registered scheme —
    including the ``rcache`` / ``victim-cache`` baselines — is accepted;
    the ICR family returns an :class:`~repro.core.icr_cache.ICRCache`.
    """
    return registry.build_dl1(name, **kwargs)


def iter_configs(names: Iterable[str], **kwargs) -> list[ICRConfig]:
    """Configs for several schemes with shared knob settings."""
    return [make_config(name, **kwargs) for name in names]
