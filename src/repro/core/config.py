"""Configuration types spanning the ICR design space of paper Section 3.

Every question the paper asks ("when do we replicate?", "where?", "how
aggressively?", "how many replicas?", "how do we pick a victim?", "what
protects unreplicated blocks?", "what happens on replacement?") is one knob
of :class:`ICRConfig`.  The ten named schemes of Section 3.2 are particular
settings of these knobs (see :mod:`repro.core.schemes`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.cache.set_assoc import CacheGeometry
from repro.coding.protection import ProtectionKind
from repro.core.hints import ReplicationHints

if TYPE_CHECKING:  # pragma: no cover - placement imports config at runtime
    from repro.core.placement import PlacementSpec

#: Distance specifications accepted by the config: a literal set distance or
#: a fraction of the number of sets ("N/2", "N/4", ...).
DistanceSpec = Union[int, str]


class ReplicationTrigger(enum.Enum):
    """When replication is attempted (Section 3.1, "When do we replicate?")."""

    NONE = "none"  # Base schemes: never replicate
    STORES = "S"  # on dL1 writes only
    LOADS_AND_STORES = "LS"  # on dL1 misses (fills) and writes

    @property
    def on_store(self) -> bool:
        return self is not ReplicationTrigger.NONE

    @property
    def on_fill(self) -> bool:
        return self is ReplicationTrigger.LOADS_AND_STORES


class LookupMode(enum.Enum):
    """How a load hit on a replicated line consults the replica."""

    SERIAL = "PS"  # parity first; replica only after a detected error (1 cycle)
    PARALLEL = "PP"  # primary and replica read and compared together (2 cycles)


class VictimPolicy(enum.Enum):
    """Whose line a new replica may displace (Section 3.1)."""

    DEAD_ONLY = "dead-only"
    DEAD_FIRST = "dead-first"
    REPLICA_FIRST = "replica-first"
    REPLICA_ONLY = "replica-only"


def resolve_distance(spec: DistanceSpec, n_sets: int) -> int:
    """Turn a distance spec into a concrete set distance modulo *n_sets*."""
    if isinstance(spec, int):
        return spec % n_sets
    text = spec.strip().upper()
    if text == "0":
        return 0
    if text.startswith("N/"):
        divisor = int(text[2:])
        if divisor <= 0 or n_sets % divisor:
            raise ValueError(f"cannot resolve {spec!r} for {n_sets} sets")
        return (n_sets // divisor) % n_sets
    return int(text) % n_sets


def power2_distances(n_sets: int, max_attempts: int) -> list[int]:
    """The paper's "power-2" fallback sequence.

    First try distance N/2; on failure try N/2 -/+ N/4, then N/2 -/+ N/8,
    and so on, stopping after *max_attempts* candidate sets.
    """
    seq = [n_sets // 2]
    step = n_sets // 4
    while step >= 1 and len(seq) < max_attempts:
        seq.append((n_sets // 2 - step) % n_sets)
        if len(seq) < max_attempts:
            seq.append((n_sets // 2 + step) % n_sets)
        step //= 2
    # Deduplicate while keeping order (small n_sets can alias entries).
    seen: set[int] = set()
    result = []
    for d in seq:
        if d not in seen:
            seen.add(d)
            result.append(d)
    return result[:max_attempts]


_MASK64 = (1 << 64) - 1


def silent_store_hash(block_addr: int, seq: int) -> int:
    """Deterministic 16-bit hash deciding whether a store is silent.

    The trace generator does not model data values, so "the written
    value equals the stored value" (Lepak & Lipasti's silent stores) is
    modelled as a pseudo-random event: store *seq* to *block_addr* is
    silent when this hash falls below ``silent_store_fraction * 2^16``.
    Both kernels call this exact function so the object/SoA/batched
    paths stay bit-identical.
    """
    x = (block_addr * 0x9E3779B97F4A7C15 + seq * 0xD1B54A32D192ED03) & _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 29
    return x & 0xFFFF


@dataclass(frozen=True)
class ICRConfig:
    """Full configuration of one dL1 scheme.

    Defaults give the paper's headline scheme, ``ICR-P-PS (S)``, with the
    default replication settings fixed in Section 5.1: one replica, a
    single placement attempt at Distance-N/2.
    """

    name: str = "ICR-P-PS(S)"
    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(16 * 1024, 4, 64)
    )

    # Replication behaviour.
    trigger: ReplicationTrigger = ReplicationTrigger.STORES
    lookup: LookupMode = LookupMode.SERIAL
    victim_policy: VictimPolicy = VictimPolicy.DEAD_ONLY
    replica_distances: tuple[DistanceSpec, ...] = ("N/2",)
    second_replica_distances: tuple[DistanceSpec, ...] = ()
    max_replicas: int = 1

    # Replica placement policy (see repro.core.placement).  None means
    # the paper's candidate-distance walk over the lists above; a
    # PlacementSpec selects hash-ring or power-2 placement, in which
    # case the distance lists (and max_replicas, for rings) are ignored
    # in favour of the policy's own walk.
    placement: Optional["PlacementSpec"] = None

    # Dead-block prediction: cycles from last access to predicted death.
    # 0 = the aggressive mode (dead as soon as the access completes);
    # None = never dead (disables replication into live space entirely).
    decay_window: Optional[int] = 0

    # Protection.  Replicated lines are always parity-protected (the
    # replica is the correction mechanism); unreplicated lines get this:
    protection_unreplicated: ProtectionKind = ProtectionKind.PARITY
    # Speculative loads hide the ECC verification latency (Section 5.9).
    speculative_ecc_loads: bool = False

    # Replacement behaviour (Section 5.6): drop replicas with their primary
    # (False) or leave them to serve later misses (True).
    leave_replicas_on_evict: bool = False

    # Whether replicas may be installed into invalid frames.  Default off:
    # empty frames are left for demand fills (see repro.core.victim).
    replicate_into_invalid: bool = False

    # Software-controlled replication (paper Section 6 future work): an
    # optional repro.core.hints.ReplicationHints consulted per line.
    hints: Optional["ReplicationHints"] = None

    # Write policy of the dL1 ("writethrough" models the POWER4-style
    # alternative of Section 5.8; ICR schemes always use writeback).
    write_policy: str = "writeback"

    # Primary replacement policy: "lru" (paper-faithful default), or the
    # hardware approximations "plru", "fifo", "random" (ablations).
    replacement: str = "lru"

    # Bit-accurate word storage for fault-injection runs.
    track_data: bool = False

    # Silent-store-aware ECC (Base schemes only): skip the write and the
    # code regeneration when the stored value would not change.  The
    # fraction is the modelled rate of silent stores (Lepak & Lipasti
    # report 20-60% across SPEC; 0.4 is a representative midpoint).
    silent_store_suppression: bool = False
    silent_store_fraction: float = 0.4

    def __post_init__(self) -> None:
        if self.max_replicas not in (1, 2):
            raise ValueError("max_replicas must be 1 or 2")
        if self.max_replicas == 2 and not self.second_replica_distances:
            raise ValueError("two replicas need second_replica_distances")
        if self.write_policy not in ("writeback", "writethrough"):
            raise ValueError(f"unknown write policy {self.write_policy!r}")
        if self.trigger is ReplicationTrigger.NONE and self.max_replicas != 1:
            raise ValueError("base schemes cannot request multiple replicas")
        if self.placement is not None and self.trigger is ReplicationTrigger.NONE:
            raise ValueError("base schemes cannot use a placement policy")
        if self.silent_store_suppression and (
            self.trigger is not ReplicationTrigger.NONE
        ):
            # Replicating schemes would have to reconcile suppressed
            # writes with replica updates; the optimization targets the
            # plain ECC baseline (ROADMAP item a).
            raise ValueError(
                "silent-store suppression applies to non-replicating schemes"
            )
        if not 0.0 <= self.silent_store_fraction <= 1.0:
            raise ValueError("silent_store_fraction must be within [0, 1]")

    @property
    def replicates(self) -> bool:
        return self.trigger is not ReplicationTrigger.NONE

    def resolved_distances(self) -> tuple[int, ...]:
        """Concrete first-replica attempt distances for this geometry."""
        n = self.geometry.n_sets
        return tuple(resolve_distance(d, n) for d in self.replica_distances)

    def resolved_second_distances(self) -> tuple[int, ...]:
        n = self.geometry.n_sets
        return tuple(resolve_distance(d, n) for d in self.second_replica_distances)

    def all_replica_distances(self) -> tuple[int, ...]:
        """Every set distance a replica of a block may live at."""
        merged: list[int] = []
        for d in self.resolved_distances() + self.resolved_second_distances():
            if d not in merged:
                merged.append(d)
        return tuple(merged)

    def load_hit_latency(self, replicated: bool) -> int:
        """dL1 load-hit latency in cycles (Section 3.2 cost model)."""
        if self.replicates and replicated:
            return 1 if self.lookup is LookupMode.SERIAL else 2
        if self.protection_unreplicated is ProtectionKind.ECC:
            return 1 if self.speculative_ecc_loads else 2
        return 1

    def protection_for(self, replicated: bool) -> ProtectionKind:
        """Which code guards a line in the given replication state."""
        if self.replicates and replicated:
            return ProtectionKind.PARITY
        return self.protection_unreplicated


def variant(config: ICRConfig, **changes) -> ICRConfig:
    """A copy of *config* with some fields replaced (name included)."""
    from dataclasses import replace

    return replace(config, **changes)
