"""The ICR data cache — the paper's primary contribution.

An :class:`ICRCache` is a set-associative dL1 that recycles *dead* lines
(cache decay, Section 2) to hold **replicas** of lines in active use:

* Replication is attempted on stores (``S`` schemes) or on both fills and
  stores (``LS`` schemes).  An attempt walks the configured candidate
  distances — set ``(m + k) mod N`` for a primary in set ``m`` — and asks
  the victim policy for a legal line to take over; if no candidate set
  offers one, the attempt simply fails ("do nothing" fallback).
* Stores to a replicated line update the primary and every replica, so a
  replica is always an exact copy.
* Primary placement is untouched: normal LRU over all lines of the set, so
  the cache never behaves worse than LRU for primaries.
* On primary eviction replicas are either dropped (default) or left behind
  (Section 5.6) where they can serve a later miss in 2 cycles — the
  performance mode in which ICR can *beat* the plain parity baseline.

The cache optionally simulates actual bit contents (``track_data``) so the
fault-injection experiments (Section 5.5) exercise the real parity /
SEC-DED decoders and the real recovery paths:

  parity error on a replicated line  -> consult the replica (+1 cycle);
  parity error, clean line           -> refetch from L2;
  parity error, dirty line, no good replica -> **unrecoverable**;
  ECC single-bit error               -> corrected in place.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.block import CacheBlock
from repro.cache.set_assoc import Eviction, SetAssociativeCache
from repro.coding.protection import ProtectionKind
from repro.core.config import ICRConfig, ReplicationTrigger, silent_store_hash
from repro.core.decay import DeadBlockPredictor
from repro.core.policies import (
    LookupPolicy,
    ProtectionPolicy,
    ReplicationPolicy,
    VictimSelector,
)
from repro.core.protocol import DL1Outcome


class ICRCache(SetAssociativeCache):
    """dL1 with in-cache replication.

    Base schemes (``BaseP``, ``BaseECC``) are ICR caches whose trigger is
    :attr:`ReplicationTrigger.NONE`; they take the plain hit/miss paths and
    never create replicas, so a single implementation serves all ten
    schemes of Section 3.2.
    """

    def __init__(self, config: ICRConfig):
        super().__init__(config.geometry, name="dl1", replacement=config.replacement)
        self.config = config
        self.predictor = DeadBlockPredictor(config.decay_window)
        self.write_policy = config.write_policy
        self.words_per_block = config.geometry.block_size // 8
        # -- composable policies --------------------------------------------
        # Each design-space question of Section 3 is answered by one policy
        # object (repro.core.policies); the cache executes their decisions.
        self.protection_policy = ProtectionPolicy(config)
        self.lookup_policy = LookupPolicy(config)
        self.victim_selector = VictimSelector(
            config.victim_policy, self.predictor, config.replicate_into_invalid
        )
        self.replication_policy = ReplicationPolicy(
            self, config, self.victim_selector, self.protection_policy
        )
        self._distances = self.replication_policy.distances
        self._second_distances = self.replication_policy.second_distances
        self._all_distances = self.replication_policy.all_distances
        # Non-None when the scheme uses hash-ring placement: the probe
        # and placement walks then come from the ring's per-line
        # candidate table instead of the home-pure distance lists.
        self._ring = self.replication_policy.ring
        self._evict_hook: Optional[Callable[[Eviction], None]] = None
        # Fault injection (attached by repro.errors.injector).
        self.injector = None
        # Optional observer with an ``observe(now)`` method, called at the
        # start of every demand access (repro.reliability attaches here).
        self.monitor = None
        # Optional background scrubber (repro.errors.scrubber).
        self.scrubber = None
        self.error_refetch_latency = 6  # L2 latency charged for error refetch
        # Error-free "memory image" backing the bit-accurate mode: the
        # golden contents of every block the program has touched.
        self._memory_image: dict[int, list[int]] = {}
        self._store_seq = 0
        # -- hot-path support ---------------------------------------------
        # O(1) replica lookup: block_addr -> replicas of that block.
        # Entries are validated (and pruned) on read, so direct replica
        # invalidation in _sever_links needs no eager bookkeeping.
        self._replica_index: dict[int, list[CacheBlock]] = {}
        # Position of each legal replica distance in the _probe_replica walk
        # order — lets the indexed lookup reproduce the walk's tag_probes
        # accounting and tie-breaking exactly.
        self._distance_pos: dict[int, int] = {
            d: i for i, d in enumerate(self._all_distances)
        }
        # Hoisted per-access constants: every per-lifetime decision the
        # policy objects made is mirrored into a flat attribute here so the
        # demand paths never chase config attribute chains, enum properties
        # or policy indirections.
        self._word_mask = self.words_per_block - 1
        self._lat_hit_replicated = self.protection_policy.load_hit_latency_replicated
        self._lat_hit_unreplicated = (
            self.protection_policy.load_hit_latency_unreplicated
        )
        self._writeback = config.write_policy == "writeback"
        self._prot_unrep = self.protection_policy.unreplicated
        self._prot_rep = self.protection_policy.replicated
        self._unrep_is_parity = self.protection_policy.unreplicated_is_parity
        self._track_data = config.track_data
        self._trig_store = self.replication_policy.on_store
        self._trig_fill = self.replication_policy.on_fill
        self._leave_replicas = config.leave_replicas_on_evict
        self._replicates = self.replication_policy.enabled
        self._hints = self.replication_policy.hints
        self._parallel_lookup = self.lookup_policy.parallel
        self._victim_policy = self.victim_selector.policy
        self._allow_invalid_victims = self.victim_selector.allow_invalid
        # Bound-method mirror of the replication attempt entry point.
        self._replicate = self.replication_policy.attempt
        # Outcomes are frozen dataclasses, so the constant-latency ones can
        # be allocated once and shared across accesses.
        self._out_store_hit = DL1Outcome(hit=True, latency=1)
        self._out_load_hit_rep = DL1Outcome(
            hit=True, latency=self._lat_hit_replicated
        )
        self._out_load_hit_unrep = DL1Outcome(
            hit=True, latency=self._lat_hit_unreplicated
        )
        self._out_replica_fill_store = DL1Outcome(
            hit=False, latency=1, replica_fill=True
        )
        self._out_replica_fill_load = DL1Outcome(
            hit=False, latency=2, replica_fill=True
        )
        self._out_miss = DL1Outcome(hit=False, latency=None)
        # Fast-path applicability: no bit-accurate storage, no replication
        # trigger (BaseP/BaseECC) and no software hints.  Attached observers
        # (injector/scrubber/monitor) are re-checked per access since they
        # arrive by plain attribute assignment.
        self._fast_demand = (
            not config.track_data
            and config.trigger is ReplicationTrigger.NONE
            and config.hints is None
        )
        # Silent-store-aware ECC (Base schemes): the sequence counter is
        # a cache attribute, not a stat, so a mid-trace stats reset (the
        # warmup window) never perturbs which stores are silent.
        self._silent_sw = config.silent_store_suppression
        self._silent_threshold = int(config.silent_store_fraction * 65536)
        self._silent_seq = 0

    # ------------------------------------------------------------------
    # hierarchy protocol
    # ------------------------------------------------------------------

    def set_evict_hook(self, hook: Callable[[Eviction], None]) -> None:
        self._evict_hook = hook
        self.on_evict = hook

    # ------------------------------------------------------------------
    # linking / unlinking of primaries and replicas
    # ------------------------------------------------------------------

    def _index_replica(self, replica: CacheBlock) -> None:
        """Register a just-installed replica, pruning stale entries."""
        entries = self._replica_index.get(replica.block_addr)
        if entries is None:
            self._replica_index[replica.block_addr] = [replica]
            return
        entries[:] = [
            b
            for b in entries
            if b.valid and b.is_replica and b.block_addr == replica.block_addr
        ]
        entries.append(replica)

    def rebuild_tag_index(self) -> None:
        """Recompute primary *and* replica indexes (after a bulk restore)."""
        super().rebuild_tag_index()
        self._replica_index = {}
        for _, _, block in self.iter_valid_blocks():
            if block.is_replica:
                self._replica_index.setdefault(block.block_addr, []).append(block)
        if self._replica_index and not self.config.replicates:
            # A foreign checkpoint parked replicas in a non-replicating
            # cache; the fast path's no-replica premise no longer holds.
            self._fast_demand = False

    def _sever_links(self, block: CacheBlock) -> None:
        """Detach *block* from its partners before it is reused."""
        if block.is_replica:
            primary = block.primary_ref
            if primary is not None and primary.valid:
                try:
                    primary.replica_refs.remove(block)
                except ValueError:
                    pass
                if not primary.replica_refs:
                    self._on_lost_last_replica(primary)
            block.primary_ref = None
            self.stats.replica_evictions += 1
            return
        if block.replica_refs:
            for replica in list(block.replica_refs):
                if self.config.leave_replicas_on_evict:
                    replica.primary_ref = None  # orphan, still addressable
                else:
                    replica.primary_ref = None
                    replica.invalidate()
                    self.stats.replica_evictions += 1
            block.replica_refs = []

    def _on_lost_last_replica(self, primary: CacheBlock) -> None:
        """Restore the unreplicated protection once all replicas are gone."""
        kind = self._prot_unrep
        if primary.protection is not kind:
            primary.reprotect(kind)
            self._count_generate(kind)

    def evict(self, block: CacheBlock) -> Optional[Eviction]:
        """Evict with link maintenance (overrides the base primitive)."""
        if not block.valid:
            return None
        if self._track_data and block.dirty and not block.is_replica:
            # A dirty eviction publishes the line's golden contents to the
            # lower levels, which we model as error-free.
            self._memory_image[block.block_addr] = list(
                block.golden or self._golden_words(block.block_addr)
            )
        self._sever_links(block)
        # Base eviction, inlined: every demand miss and replica placement
        # funnels through here, so the extra dispatch is worth removing.
        was_replica = block.is_replica
        block_addr = block.block_addr
        dirty = block.dirty and not was_replica
        if not was_replica and self._tag_index.get(block_addr) is block:
            del self._tag_index[block_addr]
        block.invalidate()
        if dirty:
            self.stats.writebacks += 1
        elif self.on_evict is None:
            return None
        eviction = Eviction(block_addr=block_addr, dirty=dirty, was_replica=was_replica)
        if self.on_evict is not None:
            self.on_evict(eviction)
        return eviction

    # ------------------------------------------------------------------
    # bit-accurate storage helpers
    # ------------------------------------------------------------------

    def _golden_words(self, block_addr: int) -> list[int]:
        """Golden contents of *block_addr* in the (error-free) L2/memory."""
        image = self._memory_image.get(block_addr)
        if image is None:
            # Deterministic initial memory contents.
            base = (block_addr * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
            image = [
                (base ^ (i * 0xBF58476D1CE4E5B9)) & ((1 << 64) - 1)
                for i in range(self.words_per_block)
            ]
            self._memory_image[block_addr] = image
        return image

    def _materialize(self, block: CacheBlock, replicated: bool) -> None:
        if not self.config.track_data:
            return
        kind = self.config.protection_for(replicated)
        block.materialize_words(kind, list(self._golden_words(block.block_addr)))

    def _next_store_value(self) -> int:
        self._store_seq += 1
        return (self._store_seq * 0xD1B54A32D192ED03) & ((1 << 64) - 1)

    # ------------------------------------------------------------------
    # energy event counting
    # ------------------------------------------------------------------

    def _count_check(self, kind: ProtectionKind) -> None:
        self.protection_policy.count_check(self.stats, kind)

    def _count_generate(self, kind: ProtectionKind) -> None:
        self.protection_policy.count_generate(self.stats, kind)

    # ------------------------------------------------------------------
    # demand access
    # ------------------------------------------------------------------

    def access(self, addr: int, is_write: bool, now: int) -> DL1Outcome:
        """One demand access from the pipeline; see module docstring."""
        if (
            self._fast_demand
            and self.injector is None
            and self.scrubber is None
            and self.monitor is None
        ):
            return self._fast_access(addr, is_write, now)
        if self.injector is not None:
            self.injector.advance(now)
        if self.scrubber is not None:
            self.scrubber.advance(now)
        if self.monitor is not None:
            self.monitor.observe(now)
        stats = self.stats
        block_addr = addr >> self._block_shift
        word_index = (addr >> 3) & self._word_mask
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1

        # Inlined probe() — the per-access primary lookup.
        stats.tag_probes += 1
        primary = self._tag_index.get(block_addr)
        if (
            primary is not None
            and primary.valid
            and not primary.is_replica
            and primary.block_addr == block_addr
        ):
            return self._hit(primary, word_index, is_write, now)

        # Primary miss.  With leave-in-place replicas a leftover replica
        # may still hold the line (Section 5.6).
        if self._leave_replicas:
            replica = self._probe_replica(block_addr)
            if replica is not None:
                return self._fill_from_replica(replica, word_index, is_write, now)
        return self._miss(block_addr, word_index, is_write, now)

    def _fast_access(self, addr: int, is_write: bool, now: int) -> DL1Outcome:
        """Streamlined demand path for non-replicating, data-free schemes.

        Taken when the scheme's trigger is NONE (BaseP/BaseECC), no bit
        storage is materialized and no observer is attached — then no
        replica can exist and every protection/latency decision is a
        per-cache constant, so the whole replication/verification
        machinery of the full path reduces to plain hit/miss accounting.
        Event counts and outcomes are bit-identical to the full path.
        """
        stats = self.stats
        block_addr = addr >> self._block_shift
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        stats.tag_probes += 1
        block = self._tag_index.get(block_addr)
        if (
            block is not None
            and block.valid
            and not block.is_replica
            and block.block_addr == block_addr
        ):
            if now > block.last_access_cycle:
                block.last_access_cycle = now
            self._lru_clock += 1
            block.lru_stamp = self._lru_clock
            if self._touch_tracked:
                self.replacement.on_touch(block.set_index, block.way)
            if is_write:
                stats.store_hits += 1
                if self._silent_sw:
                    self._silent_seq += 1
                    if (
                        silent_store_hash(block_addr, self._silent_seq)
                        < self._silent_threshold
                    ):
                        # Silent store: the read-compare confirms the
                        # stored value is unchanged, so the write, the
                        # code regeneration and the dirty marking are
                        # all skipped (the line stays clean).
                        stats.silent_stores += 1
                        stats.array_reads += 1
                        if self._unrep_is_parity:
                            stats.parity_checks += 1
                        else:
                            stats.ecc_checks += 1
                        return self._out_store_hit
                stats.array_writes += 1
                if self._writeback:
                    block.dirty = True
                if self._unrep_is_parity:
                    stats.parity_generates += 1
                else:
                    stats.ecc_generates += 1
                return self._out_store_hit
            stats.load_hits += 1
            stats.array_reads += 1
            if self._unrep_is_parity:
                stats.parity_checks += 1
            else:
                stats.ecc_checks += 1
            return self._out_load_hit_unrep
        # Miss: plain LRU allocate; no replica can serve it.
        if is_write:
            stats.store_misses += 1
        else:
            stats.load_misses += 1
        victim = self.lru_victim(block_addr & self._set_mask)
        SetAssociativeCache.evict(self, victim)
        victim.fill(block_addr, now, dirty=False)
        self._tag_index[block_addr] = victim
        victim.protection = self._prot_unrep
        stats.array_writes += 1
        if self._unrep_is_parity:
            stats.parity_generates += 1
        else:
            stats.ecc_generates += 1
        self._lru_clock += 1
        victim.lru_stamp = self._lru_clock
        if self._touch_tracked:
            self.replacement.on_touch(victim.set_index, victim.way)
        if is_write:
            if self._writeback:
                victim.dirty = True
            stats.array_writes += 1
            if self._unrep_is_parity:
                stats.parity_generates += 1
            else:
                stats.ecc_generates += 1
        return self._out_miss

    # -- hit path ----------------------------------------------------------

    def _hit(
        self, primary: CacheBlock, word_index: int, is_write: bool, now: int
    ) -> DL1Outcome:
        stats = self.stats
        if now > primary.last_access_cycle:
            primary.last_access_cycle = now
        self._lru_clock += 1
        primary.lru_stamp = self._lru_clock
        if self._touch_tracked:
            self.replacement.on_touch(primary.set_index, primary.way)
        replicated = bool(primary.replica_refs)
        if is_write:
            stats.store_hits += 1
            if self._silent_sw:
                self._silent_seq += 1
                if (
                    silent_store_hash(primary.block_addr, self._silent_seq)
                    < self._silent_threshold
                ):
                    stats.silent_stores += 1
                    stats.array_reads += 1
                    if primary.protection is ProtectionKind.PARITY:
                        stats.parity_checks += 1
                    else:
                        stats.ecc_checks += 1
                    return self._out_store_hit
            stats.array_writes += 1
            if self._writeback:
                primary.dirty = True
            if primary.protection is ProtectionKind.PARITY:
                stats.parity_generates += 1
            else:
                stats.ecc_generates += 1
            if self._track_data and primary.words is not None:
                value = self._next_store_value()
                primary.write_word(word_index, value)
                if not self._writeback:
                    self._memory_image[primary.block_addr][word_index] = value
            if replicated:
                self._update_replicas(primary, word_index, now)
            elif self._trig_store:
                self._replicate(primary, now)
            return self._out_store_hit

        # Load hit.
        stats.load_hits += 1
        stats.array_reads += 1
        if primary.protection is ProtectionKind.PARITY:
            stats.parity_checks += 1
        else:
            stats.ecc_checks += 1
        if replicated:
            stats.load_hits_with_replica += 1
            if self._parallel_lookup:
                self.lookup_policy.charge_replicated_load_hit(stats)
            if self._track_data and primary.words is not None:
                latency = self._lat_hit_replicated + self._verified_load(
                    primary, word_index, now
                )
                return DL1Outcome(hit=True, latency=latency)
            return self._out_load_hit_rep
        if self._track_data and primary.words is not None:
            latency = self._lat_hit_unreplicated + self._verified_load(
                primary, word_index, now
            )
            return DL1Outcome(hit=True, latency=latency)
        return self._out_load_hit_unrep

    def _update_replicas(self, primary: CacheBlock, word_index: int, now: int) -> None:
        """Propagate a store to every replica, keeping them exact copies."""
        stats = self.stats
        for replica in primary.replica_refs:
            stats.array_writes += 1
            stats.replica_updates += 1
            stats.parity_generates += 1
            if now > replica.last_access_cycle:
                replica.last_access_cycle = now
            self.touch_lru(replica)
            if self._track_data and replica.words is not None:
                replica.write_word(word_index, primary.golden[word_index])

    # -- miss paths ----------------------------------------------------------

    def _probe_replica(self, block_addr: int) -> Optional[CacheBlock]:
        """Find a (possibly orphaned) replica of *block_addr*.

        O(1) via the replica index.  Selection and ``tag_probes``
        accounting replicate the hardware walk over the candidate
        distances exactly: the winner is the replica at the earliest
        distance in ``_all_distances`` (lowest way breaking ties), and one
        probe is charged per candidate set visited up to and including the
        hit — or all of them on a miss.
        """
        candidates = self._replica_index.get(block_addr)
        best = None
        best_key = None
        if candidates:
            live = [
                b
                for b in candidates
                if b.valid and b.is_replica and b.block_addr == block_addr
            ]
            if len(live) != len(candidates):
                if live:
                    self._replica_index[block_addr] = live
                else:
                    del self._replica_index[block_addr]
            if live:
                if self._ring is not None:
                    # Ring placement: the probe order is the line's
                    # candidate window, ranked by window position.
                    pos_map = self._ring.lookup(block_addr)[1]
                    for block in live:
                        pos = pos_map.get(block.set_index)
                        if pos is None:
                            continue
                        key = (pos, block.way)
                        if best_key is None or key < best_key:
                            best_key = key
                            best = block
                else:
                    home = block_addr & self._set_mask
                    n_sets = self._set_mask + 1
                    for block in live:
                        pos = self._distance_pos.get(
                            (block.set_index - home) % n_sets
                        )
                        if pos is None:
                            continue  # parked at a distance this walk never visits
                        key = (pos, block.way)
                        if best_key is None or key < best_key:
                            best_key = key
                            best = block
        if best is None:
            if self._ring is not None:
                self.stats.tag_probes += len(self._ring.lookup(block_addr)[0])
            else:
                self.stats.tag_probes += len(self._all_distances)
            return None
        self.stats.tag_probes += best_key[0] + 1
        return best

    def _fill_from_replica(
        self, replica: CacheBlock, word_index: int, is_write: bool, now: int
    ) -> DL1Outcome:
        """Serve a primary miss from a leftover replica (2-cycle load)."""
        block_addr = replica.block_addr
        if is_write:
            self.stats.store_misses += 1
        else:
            self.stats.load_misses += 1
        self.stats.replica_fills += 1
        self.stats.array_reads += 1  # read the replica
        home = block_addr & self._set_mask
        victim = self.lru_victim(home)
        if victim is replica:
            # Degenerate distance-0 case: the replica occupies the LRU way
            # of its own home set.  Promote it in place.
            replica.is_replica = False
            replica.primary_ref = None
            primary = replica
            self._tag_index[block_addr] = primary
            primary.protection = self._prot_unrep
            if self._track_data and primary.words is not None:
                primary.reprotect(primary.protection)
        else:
            self.evict(victim)
            victim.fill(block_addr, now)
            self._tag_index[block_addr] = victim
            primary = victim
            primary.protection = self._prot_rep
            if self._track_data and replica.words is not None:
                primary.materialize_words(
                    self._prot_rep,
                    [w.raw_data for w in replica.words],
                )
                primary.golden = list(replica.golden)
            # The leftover replica stays and is re-linked to the new primary.
            primary.replica_refs = [replica]
            replica.primary_ref = primary
        self.stats.array_writes += 1
        self._count_generate(
            self._prot_rep if primary.replica_refs else self._prot_unrep
        )
        self.touch_lru(primary)
        primary.touch(now)
        if is_write:
            if self._writeback:
                primary.dirty = True
            if self._track_data and primary.words is not None:
                value = self._next_store_value()
                primary.write_word(word_index, value)
                if not self._writeback:
                    self._memory_image[block_addr][word_index] = value
            if primary.replica_refs:
                self._update_replicas(primary, word_index, now)
            return self._out_replica_fill_store
        # One extra cycle over a normal hit to reach the replica's set.
        return self._out_replica_fill_load

    def _miss(
        self, block_addr: int, word_index: int, is_write: bool, now: int
    ) -> DL1Outcome:
        stats = self.stats
        if is_write:
            stats.store_misses += 1
        else:
            stats.load_misses += 1
        home = block_addr & self._set_mask
        victim = self.lru_victim(home)
        self.evict(victim)
        victim.fill(block_addr, now, dirty=False)
        self._tag_index[block_addr] = victim
        primary = victim
        primary.protection = self._prot_unrep
        stats.array_writes += 1
        if self._unrep_is_parity:
            stats.parity_generates += 1
        else:
            stats.ecc_generates += 1
        if self._track_data:
            self._materialize(primary, replicated=False)
        self._lru_clock += 1
        primary.lru_stamp = self._lru_clock
        if self._touch_tracked:
            self.replacement.on_touch(primary.set_index, primary.way)

        if self._trig_fill or (
            self._hints is not None
            and self.replication_policy.wants_fill_replica(block_addr)
        ):
            self._replicate(primary, now)
        if is_write:
            if self._writeback:
                primary.dirty = True
            stats.array_writes += 1
            # Fill-time replication may have upgraded the protection.
            if primary.protection is ProtectionKind.PARITY:
                stats.parity_generates += 1
            else:
                stats.ecc_generates += 1
            if self._track_data and primary.words is not None:
                value = self._next_store_value()
                primary.write_word(word_index, value)
                if not self._writeback:
                    self._memory_image[block_addr][word_index] = value
            if primary.replica_refs:
                self._update_replicas(primary, word_index, now)
            elif self._trig_store:
                self._replicate(primary, now)
        return self._out_miss

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------

    def _attempt_replication(self, primary: CacheBlock, now: int) -> None:
        """Delegate to the replication policy (kept as the historic name)."""
        self.replication_policy.attempt(primary, now)

    def _place_replica(
        self, primary: CacheBlock, distances: tuple[int, ...], now: int
    ) -> Optional[CacheBlock]:
        """Delegate to the replication policy (kept as the historic name)."""
        return self.replication_policy.place(primary, distances, now)

    # ------------------------------------------------------------------
    # verified loads (fault-injection runs)
    # ------------------------------------------------------------------

    def _verified_load(self, primary: CacheBlock, word_index: int, now: int) -> int:
        """Read one word through its protection code; run recovery.

        Returns the extra latency the recovery cost on top of the scheme's
        nominal load-hit latency.  Updates the error counters used by the
        Figure 14 experiment.
        """
        outcome = primary.words[word_index].read()
        golden = primary.golden[word_index]
        if not outcome.error_detected:
            if outcome.data != golden:
                # An even number of flips per byte slipped past the code.
                self.stats.silent_corruptions += 1
            return 0

        self.stats.load_errors_detected += 1
        if outcome.corrected:
            # SEC-DED fixed it; scrub the stored word.
            self.stats.load_errors_corrected_ecc += 1
            primary.words[word_index].write(outcome.data)
            return 0

        # Detection without correction: try the replica first.
        extra = 0
        for replica in primary.replica_refs:
            extra += 1  # one extra cycle to reach the replica
            if replica.words is None:
                continue
            replica_read = replica.words[word_index].read()
            if not replica_read.error_detected and replica_read.data == golden:
                self.stats.load_errors_recovered_replica += 1
                primary.words[word_index].write(replica_read.data)
                return extra

        if not primary.dirty:
            # Clean line: the lower levels still hold good data.
            self.stats.load_errors_recovered_l2 += 1
            for i, value in enumerate(self._golden_words(primary.block_addr)):
                primary.words[i].write(value)
                primary.golden[i] = value
            return extra + self.error_refetch_latency

        # Dirty, no usable replica: the value is lost.
        self.stats.load_errors_unrecoverable += 1
        primary.words[word_index].write(golden)  # repair to continue the run
        return extra
