"""The ICR data cache — the paper's primary contribution.

An :class:`ICRCache` is a set-associative dL1 that recycles *dead* lines
(cache decay, Section 2) to hold **replicas** of lines in active use:

* Replication is attempted on stores (``S`` schemes) or on both fills and
  stores (``LS`` schemes).  An attempt walks the configured candidate
  distances — set ``(m + k) mod N`` for a primary in set ``m`` — and asks
  the victim policy for a legal line to take over; if no candidate set
  offers one, the attempt simply fails ("do nothing" fallback).
* Stores to a replicated line update the primary and every replica, so a
  replica is always an exact copy.
* Primary placement is untouched: normal LRU over all lines of the set, so
  the cache never behaves worse than LRU for primaries.
* On primary eviction replicas are either dropped (default) or left behind
  (Section 5.6) where they can serve a later miss in 2 cycles — the
  performance mode in which ICR can *beat* the plain parity baseline.

The cache optionally simulates actual bit contents (``track_data``) so the
fault-injection experiments (Section 5.5) exercise the real parity /
SEC-DED decoders and the real recovery paths:

  parity error on a replicated line  -> consult the replica (+1 cycle);
  parity error, clean line           -> refetch from L2;
  parity error, dirty line, no good replica -> **unrecoverable**;
  ECC single-bit error               -> corrected in place.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.block import CacheBlock
from repro.cache.hierarchy import DL1Outcome
from repro.cache.set_assoc import Eviction, SetAssociativeCache
from repro.coding.protection import ProtectionKind
from repro.core.config import ICRConfig, LookupMode, ReplicationTrigger
from repro.core.decay import DeadBlockPredictor
from repro.core.victim import find_replica_victim


class ICRCache(SetAssociativeCache):
    """dL1 with in-cache replication.

    Base schemes (``BaseP``, ``BaseECC``) are ICR caches whose trigger is
    :attr:`ReplicationTrigger.NONE`; they take the plain hit/miss paths and
    never create replicas, so a single implementation serves all ten
    schemes of Section 3.2.
    """

    def __init__(self, config: ICRConfig):
        super().__init__(config.geometry, name="dl1", replacement=config.replacement)
        self.config = config
        self.predictor = DeadBlockPredictor(config.decay_window)
        self.write_policy = config.write_policy
        self.words_per_block = config.geometry.block_size // 8
        self._distances = config.resolved_distances()
        # Second-replica placement falls back to Distance-N/4 (the paper's
        # choice) when software hints request two replicas but the config
        # did not set explicit second distances.
        self._second_distances = config.resolved_second_distances() or (
            config.geometry.n_sets // 4,
        )
        self._all_distances = config.all_replica_distances()
        if config.hints is not None:
            # Hints may place second replicas at the fallback distance.
            for d in self._second_distances:
                if d not in self._all_distances:
                    self._all_distances = self._all_distances + (d,)
        self._evict_hook: Optional[Callable[[Eviction], None]] = None
        # Fault injection (attached by repro.errors.injector).
        self.injector = None
        # Optional observer with an ``observe(now)`` method, called at the
        # start of every demand access (repro.reliability attaches here).
        self.monitor = None
        # Optional background scrubber (repro.errors.scrubber).
        self.scrubber = None
        self.error_refetch_latency = 6  # L2 latency charged for error refetch
        # Error-free "memory image" backing the bit-accurate mode: the
        # golden contents of every block the program has touched.
        self._memory_image: dict[int, list[int]] = {}
        self._store_seq = 0

    # ------------------------------------------------------------------
    # hierarchy protocol
    # ------------------------------------------------------------------

    def set_evict_hook(self, hook: Callable[[Eviction], None]) -> None:
        self._evict_hook = hook
        self.on_evict = hook

    # ------------------------------------------------------------------
    # linking / unlinking of primaries and replicas
    # ------------------------------------------------------------------

    def _sever_links(self, block: CacheBlock) -> None:
        """Detach *block* from its partners before it is reused."""
        if block.is_replica:
            primary = block.primary_ref
            if primary is not None and primary.valid:
                try:
                    primary.replica_refs.remove(block)
                except ValueError:
                    pass
                if not primary.replica_refs:
                    self._on_lost_last_replica(primary)
            block.primary_ref = None
            self.stats.replica_evictions += 1
            return
        if block.replica_refs:
            for replica in list(block.replica_refs):
                if self.config.leave_replicas_on_evict:
                    replica.primary_ref = None  # orphan, still addressable
                else:
                    replica.primary_ref = None
                    replica.invalidate()
                    self.stats.replica_evictions += 1
            block.replica_refs = []

    def _on_lost_last_replica(self, primary: CacheBlock) -> None:
        """Restore the unreplicated protection once all replicas are gone."""
        kind = self.config.protection_for(replicated=False)
        if primary.protection is not kind:
            primary.reprotect(kind)
            self._count_generate(kind)

    def evict(self, block: CacheBlock) -> Optional[Eviction]:
        """Evict with link maintenance (overrides the base primitive)."""
        if not block.valid:
            return None
        if block.dirty and not block.is_replica and self.config.track_data:
            # A dirty eviction publishes the line's golden contents to the
            # lower levels, which we model as error-free.
            self._memory_image[block.block_addr] = list(
                block.golden or self._golden_words(block.block_addr)
            )
        self._sever_links(block)
        return super().evict(block)

    # ------------------------------------------------------------------
    # bit-accurate storage helpers
    # ------------------------------------------------------------------

    def _golden_words(self, block_addr: int) -> list[int]:
        """Golden contents of *block_addr* in the (error-free) L2/memory."""
        image = self._memory_image.get(block_addr)
        if image is None:
            # Deterministic initial memory contents.
            base = (block_addr * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
            image = [
                (base ^ (i * 0xBF58476D1CE4E5B9)) & ((1 << 64) - 1)
                for i in range(self.words_per_block)
            ]
            self._memory_image[block_addr] = image
        return image

    def _materialize(self, block: CacheBlock, replicated: bool) -> None:
        if not self.config.track_data:
            return
        kind = self.config.protection_for(replicated)
        block.materialize_words(kind, list(self._golden_words(block.block_addr)))

    def _next_store_value(self) -> int:
        self._store_seq += 1
        return (self._store_seq * 0xD1B54A32D192ED03) & ((1 << 64) - 1)

    # ------------------------------------------------------------------
    # energy event counting
    # ------------------------------------------------------------------

    def _count_check(self, kind: ProtectionKind) -> None:
        if kind is ProtectionKind.PARITY:
            self.stats.parity_checks += 1
        else:
            self.stats.ecc_checks += 1

    def _count_generate(self, kind: ProtectionKind) -> None:
        if kind is ProtectionKind.PARITY:
            self.stats.parity_generates += 1
        else:
            self.stats.ecc_generates += 1

    # ------------------------------------------------------------------
    # demand access
    # ------------------------------------------------------------------

    def access(self, addr: int, is_write: bool, now: int) -> DL1Outcome:
        """One demand access from the pipeline; see module docstring."""
        if self.injector is not None:
            self.injector.advance(now)
        if self.scrubber is not None:
            self.scrubber.advance(now)
        if self.monitor is not None:
            self.monitor.observe(now)
        block_addr = self.geometry.block_addr(addr)
        word_index = self.geometry.word_index(addr)
        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1

        primary = self.probe(block_addr)
        if primary is not None:
            return self._hit(primary, word_index, is_write, now)

        # Primary miss.  With leave-in-place replicas a leftover replica
        # may still hold the line (Section 5.6).
        if self.config.leave_replicas_on_evict:
            replica = self._probe_replica(block_addr)
            if replica is not None:
                return self._fill_from_replica(replica, word_index, is_write, now)
        return self._miss(block_addr, word_index, is_write, now)

    # -- hit path ----------------------------------------------------------

    def _hit(
        self, primary: CacheBlock, word_index: int, is_write: bool, now: int
    ) -> DL1Outcome:
        primary.touch(now)
        self.touch_lru(primary)
        replicated = primary.has_replica
        if is_write:
            self.stats.store_hits += 1
            self.stats.array_writes += 1
            if self.write_policy == "writeback":
                primary.dirty = True
            self._count_generate(primary.protection)
            if self.config.track_data and primary.words is not None:
                value = self._next_store_value()
                primary.write_word(word_index, value)
                if self.write_policy == "writethrough":
                    self._memory_image[primary.block_addr][word_index] = value
            if replicated:
                self._update_replicas(primary, word_index, now)
            elif self.config.trigger.on_store:
                self._attempt_replication(primary, now)
            return DL1Outcome(hit=True, latency=1)

        # Load hit.
        self.stats.load_hits += 1
        self.stats.array_reads += 1
        if replicated:
            self.stats.load_hits_with_replica += 1
        latency = self.config.load_hit_latency(replicated)
        self._count_check(primary.protection)
        if self.config.lookup is LookupMode.PARALLEL and replicated:
            # PP: primary and replica are read and compared together.
            self.stats.array_reads += 1
            self._count_check(ProtectionKind.PARITY)
        if self.config.track_data and primary.words is not None:
            latency += self._verified_load(primary, word_index, now)
        return DL1Outcome(hit=True, latency=latency)

    def _update_replicas(self, primary: CacheBlock, word_index: int, now: int) -> None:
        """Propagate a store to every replica, keeping them exact copies."""
        for replica in primary.replica_refs:
            self.stats.array_writes += 1
            self.stats.replica_updates += 1
            self._count_generate(ProtectionKind.PARITY)
            replica.touch(now)
            self.touch_lru(replica)
            if self.config.track_data and replica.words is not None:
                replica.write_word(word_index, primary.golden[word_index])

    # -- miss paths ----------------------------------------------------------

    def _probe_replica(self, block_addr: int) -> Optional[CacheBlock]:
        """Find a (possibly orphaned) replica of *block_addr*."""
        home = self.geometry.set_index(block_addr)
        for distance in self._all_distances:
            self.stats.tag_probes += 1
            for block in self.sets[(home + distance) % self.geometry.n_sets]:
                if block.valid and block.is_replica and block.block_addr == block_addr:
                    return block
        return None

    def _fill_from_replica(
        self, replica: CacheBlock, word_index: int, is_write: bool, now: int
    ) -> DL1Outcome:
        """Serve a primary miss from a leftover replica (2-cycle load)."""
        block_addr = replica.block_addr
        if is_write:
            self.stats.store_misses += 1
        else:
            self.stats.load_misses += 1
        self.stats.replica_fills += 1
        self.stats.array_reads += 1  # read the replica
        home = self.geometry.set_index(block_addr)
        victim = self.lru_victim(home)
        if victim is replica:
            # Degenerate distance-0 case: the replica occupies the LRU way
            # of its own home set.  Promote it in place.
            replica.is_replica = False
            replica.primary_ref = None
            primary = replica
            primary.protection = self.config.protection_for(replicated=False)
            if self.config.track_data and primary.words is not None:
                primary.reprotect(primary.protection)
        else:
            self.evict(victim)
            victim.fill(block_addr, now)
            primary = victim
            primary.protection = self.config.protection_for(replicated=True)
            if self.config.track_data and replica.words is not None:
                primary.materialize_words(
                    self.config.protection_for(replicated=True),
                    [w.raw_data for w in replica.words],
                )
                primary.golden = list(replica.golden)
            # The leftover replica stays and is re-linked to the new primary.
            primary.replica_refs = [replica]
            replica.primary_ref = primary
        self.stats.array_writes += 1
        self._count_generate(self.config.protection_for(primary.has_replica))
        self.touch_lru(primary)
        primary.touch(now)
        if is_write:
            if self.write_policy == "writeback":
                primary.dirty = True
            if self.config.track_data and primary.words is not None:
                value = self._next_store_value()
                primary.write_word(word_index, value)
                if self.write_policy == "writethrough":
                    self._memory_image[block_addr][word_index] = value
            if primary.has_replica:
                self._update_replicas(primary, word_index, now)
            return DL1Outcome(hit=False, latency=1, replica_fill=True)
        # One extra cycle over a normal hit to reach the replica's set.
        return DL1Outcome(hit=False, latency=2, replica_fill=True)

    def _miss(
        self, block_addr: int, word_index: int, is_write: bool, now: int
    ) -> DL1Outcome:
        if is_write:
            self.stats.store_misses += 1
        else:
            self.stats.load_misses += 1
        home = self.geometry.set_index(block_addr)
        victim = self.lru_victim(home)
        self.evict(victim)
        victim.fill(block_addr, now, dirty=False)
        primary = victim
        primary.protection = self.config.protection_for(replicated=False)
        self.stats.array_writes += 1
        self._count_generate(primary.protection)
        self._materialize(primary, replicated=False)
        self.touch_lru(primary)

        replicate_at_fill = self.config.trigger.on_fill
        if (
            not replicate_at_fill
            and self.config.hints is not None
            and self.config.replicates
        ):
            # Software "eager" hint: replicate this line at fill time even
            # under the stores-only trigger.
            replicate_at_fill = self.config.hints.replicate_on_fill(
                block_addr, self.geometry.block_size
            )
        if replicate_at_fill:
            self._attempt_replication(primary, now)
        if is_write:
            if self.write_policy == "writeback":
                primary.dirty = True
            self.stats.array_writes += 1
            self._count_generate(primary.protection)
            if self.config.track_data and primary.words is not None:
                value = self._next_store_value()
                primary.write_word(word_index, value)
                if self.write_policy == "writethrough":
                    self._memory_image[block_addr][word_index] = value
            if primary.has_replica:
                self._update_replicas(primary, word_index, now)
            elif self.config.trigger.on_store:
                self._attempt_replication(primary, now)
        return DL1Outcome(hit=False, latency=None)

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------

    def _attempt_replication(self, primary: CacheBlock, now: int) -> None:
        """Try to give *primary* its replica(s) (Section 3.1).

        Software hints (Section 6 future work) can exclude the line or
        override how many replicas it gets.
        """
        if not self.config.replicates or primary.has_replica:
            return
        wanted = self.config.max_replicas
        hints = self.config.hints
        if hints is not None:
            block_size = self.geometry.block_size
            if not hints.may_replicate(primary.block_addr, block_size):
                return
            wanted = hints.replica_count(
                primary.block_addr, block_size, default=wanted
            )
            if wanted == 0:
                return
        self.stats.replication_attempts += 1
        placed = self._place_replica(primary, self._distances, now)
        if placed is None:
            return
        self.stats.replication_successes += 1
        if wanted >= 2:
            self.stats.second_replica_attempts += 1
            second = self._place_replica(primary, self._second_distances, now)
            if second is not None:
                self.stats.second_replica_successes += 1

    def _place_replica(
        self, primary: CacheBlock, distances: tuple[int, ...], now: int
    ) -> Optional[CacheBlock]:
        """Walk candidate distances; install a replica at the first home."""
        home = self.geometry.set_index(primary.block_addr)
        n = self.geometry.n_sets
        for distance in distances:
            target = (home + distance) % n
            self.stats.tag_probes += 1
            victim = find_replica_victim(
                self.sets[target],
                self.config.victim_policy,
                self.predictor,
                now,
                exclude_block=primary,
                exclude_addr=primary.block_addr,
                allow_invalid=self.config.replicate_into_invalid,
            )
            if victim is None:
                continue
            if victim.valid and not victim.is_replica:
                if self.predictor.is_dead(victim, now):
                    self.stats.dead_evictions += 1
            self.evict(victim)
            victim.fill(primary.block_addr, now, is_replica=True)
            victim.protection = ProtectionKind.PARITY
            victim.primary_ref = primary
            primary.replica_refs.append(victim)
            self.touch_lru(victim)
            self.stats.array_writes += 1
            self._count_generate(ProtectionKind.PARITY)
            if self.config.track_data:
                victim.materialize_words(
                    ProtectionKind.PARITY,
                    [w.raw_data for w in primary.words]
                    if primary.words is not None
                    else list(self._golden_words(primary.block_addr)),
                )
                victim.golden = list(primary.golden or victim.golden)
            # Replicated lines are parity-protected for 1-cycle loads.
            new_kind = self.config.protection_for(replicated=True)
            if primary.protection is not new_kind:
                primary.reprotect(new_kind)
                self._count_generate(new_kind)
            return victim
        return None

    # ------------------------------------------------------------------
    # verified loads (fault-injection runs)
    # ------------------------------------------------------------------

    def _verified_load(self, primary: CacheBlock, word_index: int, now: int) -> int:
        """Read one word through its protection code; run recovery.

        Returns the extra latency the recovery cost on top of the scheme's
        nominal load-hit latency.  Updates the error counters used by the
        Figure 14 experiment.
        """
        outcome = primary.words[word_index].read()
        golden = primary.golden[word_index]
        if not outcome.error_detected:
            if outcome.data != golden:
                # An even number of flips per byte slipped past the code.
                self.stats.silent_corruptions += 1
            return 0

        self.stats.load_errors_detected += 1
        if outcome.corrected:
            # SEC-DED fixed it; scrub the stored word.
            self.stats.load_errors_corrected_ecc += 1
            primary.words[word_index].write(outcome.data)
            return 0

        # Detection without correction: try the replica first.
        extra = 0
        for replica in primary.replica_refs:
            extra += 1  # one extra cycle to reach the replica
            if replica.words is None:
                continue
            replica_read = replica.words[word_index].read()
            if not replica_read.error_detected and replica_read.data == golden:
                self.stats.load_errors_recovered_replica += 1
                primary.words[word_index].write(replica_read.data)
                return extra

        if not primary.dirty:
            # Clean line: the lower levels still hold good data.
            self.stats.load_errors_recovered_l2 += 1
            for i, value in enumerate(self._golden_words(primary.block_addr)):
                primary.words[i].write(value)
                primary.golden[i] = value
            return extra + self.error_refetch_latency

        # Dirty, no usable replica: the value is lost.
        self.stats.load_errors_unrecoverable += 1
        primary.words[word_index].write(golden)  # repair to continue the run
        return extra
