"""Dead-block prediction via cache decay (Kaxiras et al., ISCA 2001).

Each cache line conceptually carries a 2-bit saturating counter that is
incremented on every global *timer tick* and reset by any access to the
line; once the counter saturates the line is declared **dead** and becomes
a candidate home for replicas (paper Section 2).

With a decay window of ``W`` cycles the hardware ticks every ``W/4``
cycles, so a line is declared dead once four ticks have passed without an
access — i.e. between ``3W/4`` and ``W`` cycles after its last use,
depending on tick alignment.  The simulator reproduces exactly that
behaviour by counting *aligned* global tick boundaries between the last
access and now, which is cycle-accurate with respect to the hardware
scheme without needing to walk every line on every tick.

Two special windows:

* ``0`` — the paper's aggressive mode: a block is "immediately pronounced
  dead, as soon as the access for that block is complete" (Section 5).
* ``None`` — decay disabled; no block is ever predicted dead.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.block import CacheBlock

#: Number of timer ticks after which the 2-bit counter saturates.
SATURATION_TICKS = 4


class DeadBlockPredictor:
    """Aligned-tick cache-decay predictor."""

    def __init__(self, decay_window: Optional[int]):
        if decay_window is not None and decay_window < 0:
            raise ValueError("decay window must be >= 0 (or None to disable)")
        self.decay_window = decay_window
        if decay_window:
            # Tick period of the global counter; at least 1 cycle.
            self.tick_period = max(1, decay_window // SATURATION_TICKS)
        else:
            self.tick_period = None

    def counter_value(self, block: CacheBlock, now: int) -> int:
        """Current value of the line's (saturating) 2-bit counter."""
        if self.decay_window is None:
            return 0
        if self.decay_window == 0:
            return SATURATION_TICKS
        last_tick = block.last_access_cycle // self.tick_period
        elapsed_ticks = now // self.tick_period - last_tick
        return min(SATURATION_TICKS, max(0, elapsed_ticks))

    def is_dead(self, block: CacheBlock, now: int) -> bool:
        """Whether the line is predicted dead at cycle *now*."""
        if not block.valid:
            return True
        if self.decay_window is None:
            return False
        if self.decay_window == 0:
            return True
        return self.counter_value(block, now) >= SATURATION_TICKS

    def storage_overhead_bits(self, n_lines: int) -> int:
        """Extra state: 2 bits per line (0.39% for 64-byte lines)."""
        return 2 * n_lines
