"""Optional native (C, via cffi) implementation of the phase-2 scoreboard.

The batched engine's phase 2 (:func:`repro.core.array_kernel.run_batched`)
reduces to pure integer arithmetic over flat arrays: its only output is
the final cycle count — every other statistic is precomputed before the
loop.  That makes it an ideal candidate for a tiny C kernel: the function
below is a line-for-line transcription of the Python loop (same state
variables, same comparisons, same first-index-on-tie unit selection), so
the two are bit-identical by construction and the differential harness
exercises whichever one is active.

The kernel is compiled once per machine with the system C compiler and
cached as a shared library under the repro cache directory
(``$REPRO_CACHE_DIR/native`` or ``~/.cache/repro/native``, keyed by a
hash of the C source).  Everything degrades gracefully: no cffi, no C
compiler, a read-only cache directory, or ``REPRO_NATIVE=0`` all fall
back to the pure-Python loop with identical results.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

_C_SOURCE = r"""
long long icr_phase2(
    long long n,
    const unsigned char *ops,
    const unsigned char *dests,
    const unsigned char *src1,
    const unsigned char *src2,
    const long long *fetch_lat,
    const long long *exec_lat,
    const unsigned char *misp,
    long long width,
    long long penalty,
    long long ruu_size,
    long long lsq_size,
    const long long *pool_off,
    const long long *pool_cnt,
    const long long *pool_interval,
    long long *free_times,
    long long *reg_ready,
    long long *ruu_ring,
    long long *lsq_ring)
{
    long long dispatch_cycle = 0, dispatched_in_cycle = 0, redirect_floor = 0;
    long long retire_cycle = 0, retired_in_cycle = 0;
    long long ruu_at = 0, lsq_at = 0;
    long long i;
    for (i = 0; i < n; i++) {
        int op = ops[i];
        /* dispatch constraints */
        long long earliest = redirect_floor;
        long long v = ruu_ring[ruu_at];
        if (v > earliest) earliest = v;
        int is_mem = (op == 4) || (op == 5); /* OP_LOAD / OP_STORE */
        if (is_mem) {
            v = lsq_ring[lsq_at];
            if (v > earliest) earliest = v;
        }
        if (earliest > dispatch_cycle) {
            dispatch_cycle = earliest;
            dispatched_in_cycle = 1;
        } else {
            dispatched_in_cycle += 1;
            if (dispatched_in_cycle > width) {
                dispatch_cycle += 1;
                dispatched_in_cycle = 1;
            }
        }
        /* instruction fetch (precomputed latency) */
        v = fetch_lat[i];
        if (v > 1) {
            dispatch_cycle += v - 1;
            dispatched_in_cycle = 1;
        }
        /* operand readiness and functional-unit issue */
        long long ready = dispatch_cycle;
        v = reg_ready[src1[i]];
        if (v > ready) ready = v;
        v = reg_ready[src2[i]];
        if (v > ready) ready = v;
        long long off = pool_off[op];
        long long end = off + pool_cnt[op];
        long long best = off;
        long long best_time = free_times[off];
        long long k;
        for (k = off + 1; k < end; k++) {
            if (free_times[k] < best_time) {  /* first index on ties */
                best_time = free_times[k];
                best = k;
            }
        }
        long long start = ready >= best_time ? ready : best_time;
        free_times[best] = start + pool_interval[op];
        /* execution (latency precomputed for every op class) */
        long long complete = start + exec_lat[i];
        if (misp[i]) {
            v = complete + penalty;
            if (v > redirect_floor) redirect_floor = v;
        }
        if (dests[i]) reg_ready[dests[i]] = complete;
        /* in-order retirement, up to `width` per cycle */
        if (complete > retire_cycle) {
            retire_cycle = complete;
            retired_in_cycle = 1;
        } else {
            retired_in_cycle += 1;
            if (retired_in_cycle > width) {
                retire_cycle += 1;
                retired_in_cycle = 1;
            }
        }
        ruu_ring[ruu_at] = retire_cycle;
        ruu_at += 1;
        if (ruu_at == ruu_size) ruu_at = 0;
        if (is_mem) {
            lsq_ring[lsq_at] = retire_cycle;
            lsq_at += 1;
            if (lsq_at == lsq_size) lsq_at = 0;
        }
    }
    return retire_cycle;
}
"""

_CDEF = """
long long icr_phase2(
    long long n,
    const unsigned char *ops,
    const unsigned char *dests,
    const unsigned char *src1,
    const unsigned char *src2,
    const long long *fetch_lat,
    const long long *exec_lat,
    const unsigned char *misp,
    long long width,
    long long penalty,
    long long ruu_size,
    long long lsq_size,
    const long long *pool_off,
    const long long *pool_cnt,
    const long long *pool_interval,
    long long *free_times,
    long long *reg_ready,
    long long *ruu_ring,
    long long *lsq_ring);
"""

#: tri-state: unset / (ffi, lib) / None (permanently unavailable)
_STATE: list = []


def _cache_dir() -> Path:
    base = os.environ.get("REPRO_CACHE_DIR")
    if base:
        return Path(base).expanduser() / "native"
    return Path.home() / ".cache" / "repro" / "native"


def _build(directory: Path) -> Path:
    """Compile the kernel into *directory*; returns the .so path."""
    digest = hashlib.blake2b(_C_SOURCE.encode(), digest_size=8).hexdigest()
    so_path = directory / f"icr_phase2-{digest}.so"
    if so_path.exists():
        return so_path
    directory.mkdir(parents=True, exist_ok=True)
    c_path = directory / f"icr_phase2-{digest}.c"
    c_path.write_text(_C_SOURCE)
    with tempfile.NamedTemporaryFile(
        suffix=".so", dir=directory, delete=False
    ) as tmp:
        tmp_path = Path(tmp.name)
    try:
        subprocess.run(
            ["cc", "-O2", "-fPIC", "-shared", str(c_path), "-o", str(tmp_path)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp_path, so_path)  # atomic: concurrent builders race safely
    finally:
        if tmp_path.exists():
            try:
                tmp_path.unlink()
            except OSError:
                pass
    return so_path


def _load():
    """The (ffi, lib) pair, or None when native support is unavailable."""
    if _STATE:
        return _STATE[0]
    result = None
    if os.environ.get("REPRO_NATIVE", "") != "0":
        try:
            import cffi

            ffi = cffi.FFI()
            ffi.cdef(_CDEF)
            lib = ffi.dlopen(str(_build(_cache_dir())))
            result = (ffi, lib)
        except Exception:
            # no cffi / no compiler / read-only cache: the pure-Python
            # loop is bit-identical, so this only costs speed.
            from repro import recovery

            recovery.count("native_fallbacks")
            recovery.warn(
                "native",
                "compiled phase-2 kernel unavailable; "
                "using the pure-Python loop",
            )
            result = None
    _STATE.append(result)
    return result


def available() -> bool:
    """Whether the compiled phase-2 kernel can be used on this machine."""
    return _load() is not None


def phase2_cycles(
    n: int,
    ops_b: bytes,
    dests_b: bytes,
    src1_b: bytes,
    src2_b: bytes,
    fetch_np,
    exec_np,
    misp: bytes,
    width: int,
    penalty: int,
    ruu_size: int,
    lsq_size: int,
    pool_off,
    pool_cnt,
    pool_interval,
    n_units: int,
) -> Optional[int]:
    """Run the compiled scoreboard; ``None`` when native is unavailable.

    ``fetch_np``/``exec_np`` are contiguous int64 numpy arrays;
    ``pool_off``/``pool_cnt``/``pool_interval`` are 8-entry int64 numpy
    arrays mapping each op class to its slice of the shared unit pool.
    """
    loaded = _load()
    if loaded is None:
        return None
    ffi, lib = loaded
    return lib.icr_phase2(
        n,
        ffi.from_buffer("unsigned char[]", ops_b),
        ffi.from_buffer("unsigned char[]", dests_b),
        ffi.from_buffer("unsigned char[]", src1_b),
        ffi.from_buffer("unsigned char[]", src2_b),
        ffi.from_buffer("long long[]", fetch_np),
        ffi.from_buffer("long long[]", exec_np),
        ffi.from_buffer("unsigned char[]", misp),
        width,
        penalty,
        ruu_size,
        lsq_size,
        ffi.from_buffer("long long[]", pool_off),
        ffi.from_buffer("long long[]", pool_cnt),
        ffi.from_buffer("long long[]", pool_interval),
        ffi.new("long long[]", n_units),
        ffi.new("long long[]", 64),
        ffi.new("long long[]", ruu_size),
        ffi.new("long long[]", lsq_size),
    )
