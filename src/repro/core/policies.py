"""Composable policy objects behind the ICR cache's access path.

Each question of the paper's Section 3 design space is answered by one
small policy object, built once from an :class:`~repro.core.config.ICRConfig`:

* :class:`ProtectionPolicy` — "what protects a line?" (Section 3.2):
  resolves the parity/SEC-DED kind and the load-hit verification latency
  for both replication states and owns the energy-event bookkeeping for
  code checks/generates.
* :class:`LookupPolicy` — "how is the replica consulted?" (Section 3.1,
  PS vs. PP): decides serial vs. parallel and charges the extra array
  read + parity check a parallel compare costs on every replicated load.
* :class:`VictimSelector` — "whose line may a replica displace?": binds
  the :class:`~repro.core.config.VictimPolicy` enum, the dead-block
  predictor and the invalid-frame rule around
  :func:`~repro.core.victim.find_replica_victim`.
* :class:`ReplicationPolicy` — "when and where do we replicate?": owns
  the trigger (S/LS/hints), the candidate-distance lists, the
  multi-replica budget and the whole attempt/placement walk that used to
  be inlined in ``ICRCache._attempt_replication``/``_place_replica``.

:class:`~repro.core.icr_cache.ICRCache` builds all four in its
constructor, mirrors their per-lifetime decisions into the hoisted
scalars its demand fast paths read, and delegates every replication or
protection *decision* here.  The split keeps the hot path exactly as
fast as before (policies precompute; the cache executes) while making a
new scheme a matter of composing different policies rather than editing
the core access path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cache.block import CacheBlock
from repro.coding.protection import ProtectionKind
from repro.core.config import ICRConfig, LookupMode
from repro.core.decay import DeadBlockPredictor
from repro.core.placement import HashRing, build_placement
from repro.core.victim import find_replica_victim

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cache.stats import CacheStats
    from repro.core.config import VictimPolicy
    from repro.core.icr_cache import ICRCache


class ProtectionPolicy:
    """Which code guards a line, and what its verification costs.

    Replicated lines are always parity-protected (the replica *is* the
    correction mechanism); unreplicated lines carry the scheme's
    configured code.  Latencies follow the Section 3.2 cost model,
    including the speculative-ECC variant.
    """

    __slots__ = (
        "unreplicated",
        "replicated",
        "unreplicated_is_parity",
        "load_hit_latency_unreplicated",
        "load_hit_latency_replicated",
    )

    def __init__(self, config: ICRConfig):
        self.unreplicated: ProtectionKind = config.protection_for(replicated=False)
        self.replicated: ProtectionKind = config.protection_for(replicated=True)
        self.unreplicated_is_parity = self.unreplicated is ProtectionKind.PARITY
        self.load_hit_latency_unreplicated = config.load_hit_latency(replicated=False)
        self.load_hit_latency_replicated = config.load_hit_latency(replicated=True)

    def kind_for(self, replicated: bool) -> ProtectionKind:
        return self.replicated if replicated else self.unreplicated

    def count_check(self, stats: "CacheStats", kind: ProtectionKind) -> None:
        if kind is ProtectionKind.PARITY:
            stats.parity_checks += 1
        else:
            stats.ecc_checks += 1

    def count_generate(self, stats: "CacheStats", kind: ProtectionKind) -> None:
        if kind is ProtectionKind.PARITY:
            stats.parity_generates += 1
        else:
            stats.ecc_generates += 1


class LookupPolicy:
    """Serial (PS) vs. parallel (PP) replica lookup on load hits."""

    __slots__ = ("parallel",)

    def __init__(self, config: ICRConfig):
        self.parallel = config.lookup is LookupMode.PARALLEL

    def charge_replicated_load_hit(self, stats: "CacheStats") -> None:
        """PP reads primary and replica together and compares them."""
        stats.array_reads += 1
        stats.parity_checks += 1


class VictimSelector:
    """Picks the line a new replica displaces inside one candidate set."""

    __slots__ = ("policy", "predictor", "allow_invalid")

    def __init__(
        self,
        policy: "VictimPolicy",
        predictor: DeadBlockPredictor,
        allow_invalid: bool = False,
    ):
        self.policy = policy
        self.predictor = predictor
        self.allow_invalid = allow_invalid

    def select(
        self,
        ways: list[CacheBlock],
        now: int,
        *,
        exclude_block: Optional[CacheBlock] = None,
        exclude_addr: Optional[int] = None,
    ) -> Optional[CacheBlock]:
        return find_replica_victim(
            ways,
            self.policy,
            self.predictor,
            now,
            exclude_block=exclude_block,
            exclude_addr=exclude_addr,
            allow_invalid=self.allow_invalid,
        )


class ReplicationPolicy:
    """When a line is replicated, where the copies go, and how many.

    Owns the trigger flags the demand paths consult, the resolved
    candidate-distance lists (including the Distance-N/4 fallback for
    hint-requested second replicas) and the full placement walk.  The
    policy mutates the owning cache's structures through the same
    primitives the inline code used, so stat ordering and event counts
    are bit-identical to the pre-policy implementation.
    """

    def __init__(
        self,
        cache: "ICRCache",
        config: ICRConfig,
        victims: VictimSelector,
        protection: ProtectionPolicy,
    ):
        self._cache = cache
        self.victims = victims
        self.protection = protection
        self.enabled = config.replicates
        self.on_store = config.trigger.on_store
        self.on_fill = config.trigger.on_fill
        self.max_replicas = config.max_replicas
        self.hints = config.hints
        self._block_size = config.geometry.block_size
        # The placement layer owns "where do copies go?".  Home-pure
        # policies (the default DistanceWalk, power-2) expose the same
        # resolved distance lists this constructor used to compute, so
        # the walk below is bit-identical to the pre-placement code;
        # hash rings answer per line through placement.lookup().
        self.placement = build_placement(config)
        self.ring: Optional[HashRing] = (
            self.placement if isinstance(self.placement, HashRing) else None
        )
        self.distances = self.placement.distances
        self.second_distances = self.placement.second_distances
        self.all_distances = self.placement.all_distances

    def wants_fill_replica(self, block_addr: int) -> bool:
        """Should this demand fill also try to replicate the line?"""
        if self.on_fill:
            return True
        hints = self.hints
        if hints is None or not self.enabled:
            return False
        # Software "eager" hint: replicate this line at fill time even
        # under the stores-only trigger.
        return hints.replicate_on_fill(block_addr, self._block_size)

    def attempt(self, primary: CacheBlock, now: int) -> None:
        """Try to give *primary* its replica(s) (Section 3.1).

        Software hints (Section 6 future work) can exclude the line or
        override how many replicas it gets; under ring placement the
        ring's replication factor governs the count (hints may still
        veto the line entirely).
        """
        if not self.enabled or primary.replica_refs:
            return
        wanted = self.max_replicas
        hints = self.hints
        if hints is not None:
            block_size = self._block_size
            if not hints.may_replicate(primary.block_addr, block_size):
                return
            wanted = hints.replica_count(
                primary.block_addr, block_size, default=wanted
            )
            if wanted == 0:
                return
        stats = self._cache.stats
        ring = self.ring
        if ring is not None:
            stats.replication_attempts += 1
            walks = ring.lookup(primary.block_addr)[2]
            if self.place_sets(primary, walks[0], now) is None:
                return
            stats.replication_successes += 1
            # Replicas beyond the first share the second-replica books.
            for walk in walks[1:]:
                stats.second_replica_attempts += 1
                if self.place_sets(primary, walk, now) is not None:
                    stats.second_replica_successes += 1
            return
        stats.replication_attempts += 1
        placed = self.place(primary, self.distances, now)
        if placed is None:
            return
        stats.replication_successes += 1
        if wanted >= 2:
            stats.second_replica_attempts += 1
            second = self.place(primary, self.second_distances, now)
            if second is not None:
                stats.second_replica_successes += 1

    def place(
        self, primary: CacheBlock, distances: tuple[int, ...], now: int
    ) -> Optional[CacheBlock]:
        """Walk candidate distances; install a replica at the first home."""
        cache = self._cache
        block_addr = primary.block_addr
        home = block_addr & cache._set_mask
        n = cache._set_mask + 1
        for distance in distances:
            victim = self._try_install(primary, (home + distance) % n, now)
            if victim is not None:
                return victim
        return None

    def place_sets(
        self, primary: CacheBlock, targets: tuple[int, ...], now: int
    ) -> Optional[CacheBlock]:
        """Ring walk: candidate *sets* come precomputed from the policy."""
        for target in targets:
            victim = self._try_install(primary, target, now)
            if victim is not None:
                return victim
        return None

    def _try_install(
        self, primary: CacheBlock, target: int, now: int
    ) -> Optional[CacheBlock]:
        """One placement attempt into one candidate set."""
        cache = self._cache
        stats = cache.stats
        predictor = self.victims.predictor
        block_addr = primary.block_addr
        stats.tag_probes += 1
        victim = self.victims.select(
            cache.sets[target],
            now,
            exclude_block=primary,
            exclude_addr=block_addr,
        )
        if victim is None:
            return None
        if victim.valid and not victim.is_replica:
            if predictor.is_dead(victim, now):
                stats.dead_evictions += 1
        cache.evict(victim)
        victim.fill(block_addr, now, is_replica=True)
        victim.protection = ProtectionKind.PARITY
        victim.primary_ref = primary
        primary.replica_refs.append(victim)
        cache._index_replica(victim)
        cache.touch_lru(victim)
        stats.array_writes += 1
        stats.parity_generates += 1
        if cache._track_data:
            victim.materialize_words(
                ProtectionKind.PARITY,
                [w.raw_data for w in primary.words]
                if primary.words is not None
                else list(cache._golden_words(block_addr)),
            )
            victim.golden = list(primary.golden or victim.golden)
        # Replicated lines are parity-protected for 1-cycle loads.
        new_kind = self.protection.replicated
        if primary.protection is not new_kind:
            primary.reprotect(new_kind)
            self.protection.count_generate(stats, new_kind)
        return victim
