"""Central scheme registry: one catalog behind every scheme consumer.

Every simulatable dL1 scheme — the ten paper schemes of Section 3.2,
the two extra baselines (``BaseECC-spec``, ``BaseP-WT``) and the
comparison baselines the paper argues against (``rcache``,
``victim-cache``) — is one :class:`SchemeEntry` here: a named factory
that yields a cache model implementing the hierarchy's DataL1 protocol,
plus static metadata (protection kind, load-hit latencies, energy
notes, which knobs apply).

All scheme resolution goes through this module:

* :func:`normalize_scheme_name` canonicalizes spellings
  (``icr-p-ps (s)`` -> ``ICR-P-PS(S)``) and raises a :class:`ValueError`
  listing the registered schemes on unknown input;
* :func:`build_dl1` turns ``(name, **kwargs)`` into a ready-to-simulate
  model — an :class:`~repro.core.icr_cache.ICRCache` for the ICR family,
  a wrapper model for the baselines;
* :func:`scheme_info` exposes the metadata consumers branch on instead
  of string heuristics (e.g. the campaign engine applies relaxed ICR
  knobs only where :attr:`SchemeInfo.accepts_icr_knobs` says they mean
  something).

To add a scheme, call :func:`register` with an entry whose ``build``
callable accepts the scheme's keyword knobs and returns the model; see
DESIGN.md §10 for the full recipe.  Factories import their
implementation lazily so registering is cheap and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.coding.protection import ProtectionKind


class UnknownSchemeError(ValueError):
    """A scheme name that resolves to nothing in the catalog.

    Raised (with the full catalog in the message) by every resolution
    path — spec construction, cache keying, model building, the CLI and
    the HTTP service — so an unknown scheme fails identically
    everywhere: the CLI exits 2, the service answers 400, and both show
    the same registered-scheme listing.
    """


@dataclass(frozen=True)
class SchemeInfo:
    """Static metadata of one registered scheme.

    ``protection`` and the latencies describe *unreplicated* lines (for
    the ICR family the replicated state is always parity; its load-hit
    latency is ``load_hit_latency_replicated``).  ``accepts_icr_knobs``
    says whether the ICR design-space kwargs (``decay_window``,
    ``victim_policy``, ``leave_replicas_on_evict``, ...) apply; the
    campaign engine and CLI use it instead of name heuristics.
    """

    name: str
    kind: str  # "base" | "icr" | "baseline"
    description: str
    protection: ProtectionKind
    load_hit_latency: int
    load_hit_latency_replicated: Optional[int] = None
    replicates: bool = False
    accepts_icr_knobs: bool = False
    energy_note: str = ""
    aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class SchemeEntry:
    """A registered scheme: metadata plus its model factory.

    ``build(**kwargs)`` returns a simulatable dL1 model: an object with
    ``config``/``stats``/``geometry``/``write_policy`` attributes and
    ``access``/``set_evict_hook`` methods (the hierarchy's DataL1
    protocol).  Models that wrap an inner ICR cache expose it as
    ``injection_target`` so fault injection, scrubbing and
    vulnerability monitoring attach to the real array.
    """

    info: SchemeInfo
    build: Callable[..., object]


_REGISTRY: dict[str, SchemeEntry] = {}
#: Squashed spelling -> canonical name (includes aliases).
_LOOKUP: dict[str, str] = {}


def _squash(name: str) -> str:
    """Spelling-insensitive form: no spaces, ``_`` -> ``-``, casefolded."""
    return name.replace(" ", "").replace("_", "-").casefold()


def register(entry: SchemeEntry) -> SchemeEntry:
    """Add *entry* to the catalog (idempotent per name; aliases too)."""
    name = entry.info.name
    _REGISTRY[name] = entry
    _LOOKUP[_squash(name)] = name
    for alias in entry.info.aliases:
        _LOOKUP[_squash(alias)] = name
    return entry


def registered_schemes() -> tuple[str, ...]:
    """Canonical scheme names, in registration (= paper) order."""
    return tuple(_REGISTRY)


def is_registered(name: str) -> bool:
    return _squash(name) in _LOOKUP


def normalize_scheme_name(name: str) -> str:
    """Canonicalize spellings like ``icr-p-ps (s)`` to ``ICR-P-PS(S)``.

    Raises :class:`UnknownSchemeError` (a :class:`ValueError`) listing
    the registered schemes when the name (after spelling normalization)
    is not in the registry.  Idempotent: canonical names map to
    themselves.  Before giving up, external scheme packages advertised
    under the ``repro.schemes`` entry-point group are loaded once.
    """
    canonical = _LOOKUP.get(_squash(name))
    if canonical is None and load_entry_point_schemes():
        canonical = _LOOKUP.get(_squash(name))
    if canonical is None:
        raise UnknownSchemeError(
            f"unknown scheme name {name!r}; registered schemes: "
            + ", ".join(registered_schemes())
            + "; external packages can add schemes via the "
            "'repro.schemes' entry-point group"
        )
    return canonical


#: Entry-point group external packages register schemes under.
ENTRY_POINT_GROUP = "repro.schemes"
_entry_points_loaded = False


def load_entry_point_schemes(*, force: bool = False) -> tuple[str, ...]:
    """Load external schemes advertised via ``importlib.metadata``.

    Any installed distribution can extend the catalog by declaring an
    entry point in the ``repro.schemes`` group.  Each entry point may
    resolve to a :class:`SchemeEntry` (registered directly), a callable
    (invoked once; conventionally it calls :func:`register` itself), or
    a module whose import performs the registration.  A failing entry
    point is reported as a :class:`RuntimeWarning` and skipped — one
    broken plugin must not take down scheme resolution.

    Runs at most once per process (``force=True`` re-runs, for tests).
    Returns the canonical names the load added to the catalog.
    """
    global _entry_points_loaded
    if _entry_points_loaded and not force:
        return ()
    _entry_points_loaded = True
    before = set(_REGISTRY)
    import importlib.metadata as metadata

    for ep in metadata.entry_points(group=ENTRY_POINT_GROUP):
        try:
            obj = ep.load()
            if isinstance(obj, SchemeEntry):
                register(obj)
            elif callable(obj):
                obj()
        except Exception as exc:
            import warnings

            warnings.warn(
                f"repro.schemes entry point {ep.name!r} failed: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return tuple(n for n in _REGISTRY if n not in before)


def scheme_entry(name: str) -> SchemeEntry:
    """The registry entry for *name* (any accepted spelling)."""
    return _REGISTRY[normalize_scheme_name(name)]


def scheme_info(name: str) -> SchemeInfo:
    """The metadata for *name* (any accepted spelling)."""
    return scheme_entry(name).info


# Public-API spellings (re-exported by repro.api): the service, external
# clients and plugin packages use these; the shorter historical names
# above stay for in-tree callers.


def list_schemes() -> tuple[str, ...]:
    """Canonical names of every registered scheme (catalog order)."""
    return registered_schemes()


def get_scheme(name: str) -> SchemeInfo:
    """Metadata for *name*; raises :class:`UnknownSchemeError` if absent."""
    return scheme_info(name)


def build_dl1(name: str, **kwargs):
    """Build the simulatable dL1 model for a named scheme.

    The keyword knobs are the scheme family's own: the ICR family takes
    the :func:`repro.core.schemes.make_config` kwargs, ``rcache`` takes
    ``rcache_bytes``, ``victim-cache`` takes ``entries`` (all accept
    ``geometry`` and ``track_data``).  Unknown names raise
    :class:`ValueError`; unknown knobs raise :class:`TypeError` from the
    factory, naming the scheme.
    """
    entry = scheme_entry(name)
    try:
        return entry.build(**kwargs)
    except TypeError as exc:
        raise TypeError(f"scheme {entry.info.name!r}: {exc}") from None


# ---------------------------------------------------------------------------
# catalog
# ---------------------------------------------------------------------------


def _icr_factory(name: str) -> Callable[..., object]:
    """Factory for an ICR-family scheme (lazy import: no cycles)."""

    def build(**kwargs):
        from repro.core.icr_cache import ICRCache
        from repro.core.schemes import make_config

        return ICRCache(make_config(name, **kwargs))

    return build


def _rcache_factory(**kwargs):
    from repro.baselines.rcache import RCacheDL1

    return RCacheDL1(**kwargs)


def _victim_cache_factory(**kwargs):
    from repro.baselines.victim_cache import VictimCacheDL1

    return VictimCacheDL1(**kwargs)


_P = ProtectionKind.PARITY
_E = ProtectionKind.ECC


def _register_icr_family() -> None:
    base = [
        SchemeInfo(
            "BaseP", "base",
            "plain dL1, byte parity everywhere, 1-cycle loads", _P, 1,
        ),
        SchemeInfo(
            "BaseECC", "base",
            "plain dL1, SEC-DED everywhere, 2-cycle verified loads", _E, 2,
        ),
    ]
    icr = [
        SchemeInfo(
            name=f"ICR-{prot_key}-{lookup_key}({trigger_key})",
            kind="icr",
            description=(
                f"in-cache replication: {prot_desc} on unreplicated lines, "
                f"{lookup_desc}, replicate on {trigger_desc}"
            ),
            protection=prot,
            load_hit_latency=prot_lat,
            load_hit_latency_replicated=lookup_lat,
            replicates=True,
            accepts_icr_knobs=True,
        )
        for prot_key, prot, prot_lat, prot_desc in (
            ("P", _P, 1, "parity"),
            ("ECC", _E, 2, "SEC-DED"),
        )
        for lookup_key, lookup_lat, lookup_desc in (
            ("PS", 1, "serial replica lookup"),
            ("PP", 2, "parallel replica compare"),
        )
        for trigger_key, trigger_desc in (
            ("LS", "fills and stores"),
            ("S", "stores only"),
        )
    ]
    extras = [
        SchemeInfo(
            "BaseECC-spec", "base",
            "BaseECC with speculative 1-cycle loads (Section 5.9)", _E, 1,
        ),
        SchemeInfo(
            "BaseP-WT", "base",
            "BaseP with a write-through dL1 + coalescing write buffer "
            "(Section 5.8)", _P, 1,
        ),
        SchemeInfo(
            "BaseECC-SW", "base",
            "BaseECC with silent-store-aware ECC: the write and the "
            "SEC-DED regeneration are skipped when the stored value "
            "would not change (silent_store_fraction of store hits)",
            _E, 2,
            energy_note=(
                "each silent store trades an array write + ECC generate "
                "for an array read + ECC check and leaves the line "
                "clean, saving writeback traffic"
            ),
            aliases=("baseecc-silent",),
        ),
    ]
    rings = [
        SchemeInfo(
            name=f"ICR-Ring-{n}",
            kind="icr",
            description=(
                "in-cache replication with consistent-hash-ring "
                f"placement: replication factor {n}, parity on "
                "unreplicated lines, serial replica lookup, replicate "
                "on stores (knobs: virtual_nodes, ring_attempts, "
                "ring_hash)"
            ),
            protection=_P,
            load_hit_latency=1,
            load_hit_latency_replicated=1,
            replicates=True,
            accepts_icr_knobs=True,
            energy_note=(
                "ring successors replace the Distance-N/2 walk; probe "
                "energy scales with the candidate window "
                "(replication_factor + ring_attempts - 1 sets)"
            ),
            aliases=(f"icr-ring{n}", f"ring-{n}"),
        )
        for n in (1, 2, 3)
    ]
    for info in base + icr + extras + rings:
        register(SchemeEntry(info=info, build=_icr_factory(info.name)))


def _register_baselines() -> None:
    register(
        SchemeEntry(
            info=SchemeInfo(
                name="rcache",
                kind="baseline",
                description=(
                    "Kim & Somani R-Cache: parity dL1 + dedicated "
                    "fully-associative duplicate store (rcache_bytes)"
                ),
                protection=_P,
                load_hit_latency=1,
                energy_note=(
                    "duplicate-store writes are charged as extra dL1 "
                    "array writes; the side array's leakage/area is the "
                    "cost ICR avoids"
                ),
                aliases=("r-cache", "rc"),
            ),
            build=_rcache_factory,
        )
    )
    register(
        SchemeEntry(
            info=SchemeInfo(
                name="victim-cache",
                kind="baseline",
                description=(
                    "Jouppi victim cache: parity dL1 + fully-associative "
                    "buffer of evicted lines (entries)"
                ),
                protection=_P,
                load_hit_latency=1,
                energy_note=(
                    "victim-cache swap-backs are charged the 2-cycle "
                    "replica-fill latency ICR pays in Section 5.6"
                ),
                aliases=("victimcache", "vc"),
            ),
            build=_victim_cache_factory,
        )
    )


_register_icr_family()
_register_baselines()
