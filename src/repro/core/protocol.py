"""The documented plugin protocol: what a dL1 scheme model must provide.

The scheme registry (:mod:`repro.core.registry`) turns names into
*models* — objects the memory hierarchy drives one demand access at a
time.  This module is the single, frozen definition of that contract,
so external scheme packages can implement it and register themselves
without importing anything from ``repro.core``'s internals:

* :class:`DataL1` is the structural interface every model must satisfy
  (the hierarchy, the experiment runner and the energy model consume
  exactly this surface and nothing more);
* :class:`DL1Outcome` is the value a model returns per access;
* :class:`InjectionTarget` is the *observer* surface — fault injection,
  scrubbing and vulnerability monitoring attach to the object a model
  exposes as ``injection_target`` (the model itself when it owns the
  data array, the inner core cache for wrapper models such as the
  rcache / victim-cache baselines).

Registering an external scheme is three steps (DESIGN.md §10 has the
worked recipe):

1. implement a model satisfying :class:`DataL1` (and, if it should
   support error injection, expose an :class:`InjectionTarget`);
2. wrap it in a factory ``build(**kwargs) -> model``;
3. call :func:`repro.core.registry.register` with a ``SchemeEntry``
   carrying the factory plus a ``SchemeInfo`` metadata record.

After that the scheme is usable everywhere a built-in one is: from
:class:`~repro.harness.spec.ExperimentSpec`, sweeps, figures, Monte
Carlo campaigns, the CLI and the simulation service — all of which
resolve names through the registry and drive models only through this
protocol.

This module deliberately imports nothing from the rest of ``repro`` so
it can be imported from anywhere (including ``repro.cache.hierarchy``)
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, runtime_checkable


@dataclass(frozen=True)
class DL1Outcome:
    """What the data L1 did with one demand access."""

    hit: bool
    # Load-hit (or replica-fill) latency; ``None`` means the request must
    # be satisfied by the next level.
    latency: Optional[int]
    replica_fill: bool = False


@runtime_checkable
class DataL1(Protocol):
    """Structural interface of a simulatable dL1 scheme model.

    Attributes
    ----------
    config:
        The model's configuration object.  The experiment runner reads
        ``config.name`` (the reported scheme name), ``config.geometry``
        (a :class:`~repro.cache.set_assoc.CacheGeometry`, priced by the
        energy model) and ``config.track_data`` (whether bit-accurate
        storage backs error injection).
    stats:
        A :class:`~repro.cache.stats.CacheStats`-compatible counter
        object; its ``snapshot()`` becomes ``SimulationResult.dl1``.
    geometry:
        The dL1 geometry (usually ``config.geometry``); the hierarchy
        derives block-offset shifts from it.
    write_policy:
        ``"writeback"`` or ``"writethrough"`` — routes store traffic
        through the write buffer in write-through mode.
    """

    config: object
    stats: object
    geometry: object
    write_policy: str

    def access(self, addr: int, is_write: bool, now: int) -> DL1Outcome:
        """Serve one demand access at cycle *now*; never raises."""
        ...

    def set_evict_hook(self, hook: Callable[..., None]) -> None:
        """Install the hierarchy's eviction callback (dirty writebacks)."""
        ...


@runtime_checkable
class InjectionTarget(Protocol):
    """The observer surface of a model's real data array.

    A model that wraps an inner cache (the rcache / victim-cache
    baselines) exposes the inner array as ``injection_target``; models
    that *are* the array (``ICRCache``) are their own target — callers
    use ``getattr(model, "injection_target", model)``.  Observers
    attach by plain attribute assignment:

    * ``target.injector`` — a fault injector with ``advance(now)``
      (:class:`repro.errors.injector.FaultInjector` assigns itself);
    * ``target.monitor`` — an observer with ``observe(now)``, called at
      the start of every demand access
      (:class:`repro.reliability.vulnerability.VulnerabilityMonitor`);
    * ``target.scrubber`` — a background scrubber with ``advance(now)``
      (:class:`repro.errors.scrubber.Scrubber`).

    All three slots are ``None`` until attached; the model must consult
    them on its demand path when they are set.
    """

    injector: object
    monitor: object
    scrubber: object

    def access(self, addr: int, is_write: bool, now: int) -> DL1Outcome: ...


def check_scheme(scheme, **kwargs) -> list:
    """Conformance-check a scheme model against the plugin protocol.

    *scheme* is a model class/factory (instantiated with ``**kwargs``)
    or an already-built model instance.  Returns a list of
    human-readable violations — empty means the model satisfies
    everything the hierarchy, runner and energy model will ask of it.
    External packages call this from their own test suites before
    registering (it is exported as ``repro.api.check_scheme``), so a
    protocol break fails their CI instead of a user's simulation.

    The checks are behavioural, not just structural: the model is
    actually driven through a store and a load to verify the outcome
    shape, so a model that *has* an ``access`` attribute but returns
    the wrong thing is still caught.
    """
    problems: list = []
    if isinstance(scheme, type) or callable(scheme):
        try:
            model = scheme(**kwargs)
        except Exception as exc:
            return [f"building the model failed: {exc!r}"]
    else:
        model = scheme

    if not isinstance(model, DataL1):
        problems.append(
            "model does not satisfy the DataL1 protocol (needs config, "
            "stats, geometry, write_policy, access, set_evict_hook)"
        )
        return problems

    config = model.config
    name = getattr(config, "name", None)
    if not isinstance(name, str) or not name:
        problems.append("config.name must be a non-empty string")
    geometry = getattr(config, "geometry", None)
    for attr in ("n_sets", "associativity", "block_size", "block_offset_bits"):
        if not isinstance(getattr(geometry, attr, None), int):
            problems.append(f"config.geometry.{attr} must be an int")
    if model.write_policy not in ("writeback", "writethrough"):
        problems.append(
            "write_policy must be 'writeback' or 'writethrough', "
            f"got {model.write_policy!r}"
        )
    snapshot = getattr(model.stats, "snapshot", None)
    if not callable(snapshot):
        problems.append("stats must provide a snapshot() method")
    else:
        try:
            snap = snapshot()
            dict(snap)
        except Exception as exc:
            problems.append(f"stats.snapshot() must yield a mapping: {exc!r}")

    try:
        model.set_evict_hook(lambda *_args, **_kw: None)
    except Exception as exc:
        problems.append(f"set_evict_hook(callable) raised: {exc!r}")

    try:
        for addr, is_write in ((0, True), (0, False), (1 << 16, False)):
            outcome = model.access(addr, is_write, 0)
            if not isinstance(getattr(outcome, "hit", None), bool):
                problems.append("access() outcome needs a bool 'hit'")
                break
            latency = getattr(outcome, "latency", "missing")
            if latency is not None and not isinstance(latency, int):
                problems.append("access() outcome needs int-or-None 'latency'")
                break
            if not hasattr(outcome, "replica_fill"):
                problems.append("access() outcome needs 'replica_fill'")
                break
    except Exception as exc:
        problems.append(f"access() raised on a demand access: {exc!r}")

    target = getattr(model, "injection_target", model)
    if target is not model and not isinstance(target, InjectionTarget):
        problems.append(
            "injection_target must satisfy InjectionTarget "
            "(injector/monitor/scrubber slots + access)"
        )
    return problems


__all__ = ["DL1Outcome", "DataL1", "InjectionTarget", "check_scheme"]
