"""The documented plugin protocol: what a dL1 scheme model must provide.

The scheme registry (:mod:`repro.core.registry`) turns names into
*models* — objects the memory hierarchy drives one demand access at a
time.  This module is the single, frozen definition of that contract,
so external scheme packages can implement it and register themselves
without importing anything from ``repro.core``'s internals:

* :class:`DataL1` is the structural interface every model must satisfy
  (the hierarchy, the experiment runner and the energy model consume
  exactly this surface and nothing more);
* :class:`DL1Outcome` is the value a model returns per access;
* :class:`InjectionTarget` is the *observer* surface — fault injection,
  scrubbing and vulnerability monitoring attach to the object a model
  exposes as ``injection_target`` (the model itself when it owns the
  data array, the inner core cache for wrapper models such as the
  rcache / victim-cache baselines).

Registering an external scheme is three steps (DESIGN.md §10 has the
worked recipe):

1. implement a model satisfying :class:`DataL1` (and, if it should
   support error injection, expose an :class:`InjectionTarget`);
2. wrap it in a factory ``build(**kwargs) -> model``;
3. call :func:`repro.core.registry.register` with a ``SchemeEntry``
   carrying the factory plus a ``SchemeInfo`` metadata record.

After that the scheme is usable everywhere a built-in one is: from
:class:`~repro.harness.spec.ExperimentSpec`, sweeps, figures, Monte
Carlo campaigns, the CLI and the simulation service — all of which
resolve names through the registry and drive models only through this
protocol.

This module deliberately imports nothing from the rest of ``repro`` so
it can be imported from anywhere (including ``repro.cache.hierarchy``)
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, runtime_checkable


@dataclass(frozen=True)
class DL1Outcome:
    """What the data L1 did with one demand access."""

    hit: bool
    # Load-hit (or replica-fill) latency; ``None`` means the request must
    # be satisfied by the next level.
    latency: Optional[int]
    replica_fill: bool = False


@runtime_checkable
class DataL1(Protocol):
    """Structural interface of a simulatable dL1 scheme model.

    Attributes
    ----------
    config:
        The model's configuration object.  The experiment runner reads
        ``config.name`` (the reported scheme name), ``config.geometry``
        (a :class:`~repro.cache.set_assoc.CacheGeometry`, priced by the
        energy model) and ``config.track_data`` (whether bit-accurate
        storage backs error injection).
    stats:
        A :class:`~repro.cache.stats.CacheStats`-compatible counter
        object; its ``snapshot()`` becomes ``SimulationResult.dl1``.
    geometry:
        The dL1 geometry (usually ``config.geometry``); the hierarchy
        derives block-offset shifts from it.
    write_policy:
        ``"writeback"`` or ``"writethrough"`` — routes store traffic
        through the write buffer in write-through mode.
    """

    config: object
    stats: object
    geometry: object
    write_policy: str

    def access(self, addr: int, is_write: bool, now: int) -> DL1Outcome:
        """Serve one demand access at cycle *now*; never raises."""
        ...

    def set_evict_hook(self, hook: Callable[..., None]) -> None:
        """Install the hierarchy's eviction callback (dirty writebacks)."""
        ...


@runtime_checkable
class InjectionTarget(Protocol):
    """The observer surface of a model's real data array.

    A model that wraps an inner cache (the rcache / victim-cache
    baselines) exposes the inner array as ``injection_target``; models
    that *are* the array (``ICRCache``) are their own target — callers
    use ``getattr(model, "injection_target", model)``.  Observers
    attach by plain attribute assignment:

    * ``target.injector`` — a fault injector with ``advance(now)``
      (:class:`repro.errors.injector.FaultInjector` assigns itself);
    * ``target.monitor`` — an observer with ``observe(now)``, called at
      the start of every demand access
      (:class:`repro.reliability.vulnerability.VulnerabilityMonitor`);
    * ``target.scrubber`` — a background scrubber with ``advance(now)``
      (:class:`repro.errors.scrubber.Scrubber`).

    All three slots are ``None`` until attached; the model must consult
    them on its demand path when they are set.
    """

    injector: object
    monitor: object
    scrubber: object

    def access(self, addr: int, is_write: bool, now: int) -> DL1Outcome: ...


__all__ = ["DL1Outcome", "DataL1", "InjectionTarget"]
