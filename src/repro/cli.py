"""Command-line interface: run experiments and figures from the shell.

Installed as the ``repro-icr`` console script::

    repro-icr list
    repro-icr run gzip "ICR-P-PS(S)" --instructions 100000
    repro-icr run vortex BaseP --error-rate 1e-2
    repro-icr compare mcf --relaxed
    repro-icr figure fig09 --instructions 40000 --jobs 4
    repro-icr campaign --benchmark mcf --schemes "ICR-P-PS(S),BaseP" --trials 50

``campaign`` runs a Monte Carlo fault-injection campaign: N seeded
trials per (benchmark, scheme, error-rate) cell, reported as means with
bootstrap confidence intervals (see :mod:`repro.harness.campaign`).  It
checkpoints after every round and resumes automatically when re-run
with the same configuration.

``run``, ``compare`` and ``figure`` all execute through the parallel
runner (:mod:`repro.harness.runner`): ``--jobs N`` fans the experiment
grid over N worker processes (``--jobs 1`` stays fully in-process, so
pdb/coverage keep working), and results are persisted in the
content-addressed cache under ``~/.cache/repro`` (``--cache-dir`` to
relocate, ``--no-cache`` to bypass).  A one-line metrics summary — jobs,
cache hits, sims/sec — is printed to stderr so stdout stays a clean,
serial-identical table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import recovery
from repro.core.config import VictimPolicy
from repro.core.registry import (
    normalize_scheme_name,
    registered_schemes,
    scheme_info,
)
from repro.core.schemes import ALL_SCHEMES
from repro.errors.models import MODELS
from repro.harness.cache import ResultCache
from repro.harness.figures import AGGRESSIVE, ALL_FIGURES, RELAXED, run_figure
from repro.harness.report import format_table, percent
from repro.harness.runner import Job, ParallelRunner
from repro.harness.spec import ExperimentSpec
from repro.workloads.spec2000 import BENCHMARKS


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: all cores; 1 = in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )


def _add_backend_flag(
    parser: argparse.ArgumentParser, *, allow_auto: bool = False
) -> None:
    choices = ("object", "array", "auto") if allow_auto else ("object", "array")
    extra = (
        "; 'auto' resolves per campaign cell, preferring 'array' "
        "wherever the kernel supports the spec"
        if allow_auto
        else ""
    )
    parser.add_argument(
        "--backend",
        choices=choices,
        default="object",
        help="simulation kernel: 'object' (the CacheBlock reference "
        "implementation) or 'array' (the struct-of-arrays kernel, "
        f"bit-identical where supported and substantially faster){extra}",
    )


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    cache = None
    if not args.no_cache:
        cache = ResultCache(cache_dir=args.cache_dir)
    return ParallelRunner(jobs=args.jobs, cache=cache, progress=sys.stderr.isatty())


def _report_metrics(runner: ParallelRunner) -> None:
    print(runner.stats.summary(), file=sys.stderr)
    recovered = recovery.summary()
    if recovered:
        print(recovered, file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-icr",
        description="ICR (DSN 2003) reproduction: simulate dL1 schemes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes and figures")

    run = sub.add_parser("run", help="run one (benchmark, scheme) experiment")
    run.add_argument("benchmark", choices=BENCHMARKS)
    run.add_argument("scheme")
    run.add_argument("--instructions", type=int, default=100_000)
    run.add_argument("--decay-window", type=int, default=None)
    run.add_argument(
        "--victim",
        choices=[p.value for p in VictimPolicy],
        default=None,
    )
    run.add_argument("--leave-replicas", action="store_true")
    run.add_argument(
        "--placement",
        choices=("distance", "power2", "ring"),
        default=None,
        help="replica placement policy (default: the paper's distance walk)",
    )
    run.add_argument(
        "--replication-factor",
        type=int,
        default=None,
        metavar="N",
        help="ring placement: replicas per line",
    )
    run.add_argument(
        "--virtual-nodes",
        type=int,
        default=None,
        help="ring placement: ring points per set",
    )
    run.add_argument(
        "--ring-attempts",
        type=int,
        default=None,
        help="placement fallback walk length (ring/power2)",
    )
    run.add_argument(
        "--ring-hash",
        choices=("mix", "identity"),
        default=None,
        help="ring position hash (identity = distance-equivalent layout)",
    )
    run.add_argument("--error-rate", type=float, default=0.0)
    run.add_argument(
        "--error-model",
        choices=sorted(MODELS),
        default="random",
    )
    run.add_argument("--vulnerability", action="store_true")
    _add_backend_flag(run)
    run.add_argument(
        "--profile",
        action="store_true",
        help="profile the simulation with cProfile; top-20 cumulative "
        "entries go to stderr (results are unaffected)",
    )
    _add_runner_flags(run)

    compare = sub.add_parser("compare", help="run all ten schemes on a benchmark")
    compare.add_argument("benchmark", choices=BENCHMARKS)
    compare.add_argument("--instructions", type=int, default=100_000)
    compare.add_argument(
        "--relaxed",
        action="store_true",
        help="decay window 1000 + dead-first (Section 5.4) instead of aggressive",
    )
    _add_backend_flag(compare)
    _add_runner_flags(compare)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("figure_id", choices=sorted(ALL_FIGURES))
    figure.add_argument("--instructions", type=int, default=60_000)
    _add_runner_flags(figure)

    campaign = sub.add_parser(
        "campaign",
        help="Monte Carlo fault-injection campaign with confidence intervals",
    )
    campaign.add_argument(
        "--benchmark",
        action="append",
        required=True,
        metavar="NAME[,NAME...]",
        help="benchmark(s); repeat the flag or comma-separate",
    )
    campaign.add_argument(
        "--schemes",
        action="append",
        required=True,
        metavar="SCHEME[,SCHEME...]",
        help="scheme(s); repeat the flag or comma-separate",
    )
    campaign.add_argument(
        "--error-rate",
        action="append",
        type=float,
        default=None,
        metavar="P",
        help="per-cycle fault probability cell(s); default 1e-2",
    )
    campaign.add_argument("--trials", type=int, default=50, metavar="N")
    campaign.add_argument("--min-trials", type=int, default=8, metavar="N")
    campaign.add_argument("--batch-size", type=int, default=10, metavar="N")
    campaign.add_argument(
        "--target-half-width",
        type=float,
        default=None,
        metavar="W",
        help="adaptive stopping: stop a cell when the CI half-width of "
        "the unrecoverable-load fraction drops below W",
    )
    campaign.add_argument("--ci-level", type=float, default=0.95)
    campaign.add_argument("--instructions", type=int, default=40_000)
    campaign.add_argument(
        "--error-model", choices=sorted(MODELS), default="random"
    )
    campaign.add_argument("--seed", type=int, default=20_000)
    campaign.add_argument("--vulnerability", action="store_true")
    campaign.add_argument("--scrub-period", type=int, default=None)
    campaign.add_argument(
        "--relaxed",
        action="store_true",
        help="apply the Section 5.4 relaxed knobs to non-Base schemes",
    )
    campaign.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-trial wall-clock budget (crashed/hung trials are "
        "retried with a fresh seed)",
    )
    campaign.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint file (default: .repro-campaign/<digest>.json; "
        "an interrupted campaign resumes from it)",
    )
    campaign.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="disable checkpointing entirely",
    )
    campaign.add_argument(
        "--trial-log",
        default=None,
        metavar="PATH",
        help="append raw per-trial results as JSONL",
    )
    campaign.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the full campaign report as JSON",
    )
    campaign.add_argument(
        "--scheduler",
        choices=("round", "stealing"),
        default="round",
        help="execution discipline: synchronous rounds, or the "
        "continuous work-stealing scheduler (identical report, better "
        "worker utilization, mid-flight convergence cancellation)",
    )
    campaign.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="work-stealing only: cap on queued+running trials "
        "(default 4x the worker count)",
    )
    campaign.add_argument(
        "--share-dir",
        default=None,
        metavar="DIR",
        help="work-stealing only: cooperate with other engines through "
        "lease/record files in DIR (they partition the cell grid and "
        "warm each other's caches)",
    )
    _add_backend_flag(campaign, allow_auto=True)
    _add_runner_flags(campaign)

    serve = sub.add_parser(
        "serve",
        help="run the simulation job server (HTTP+JSON, see repro.service)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--queue-dir",
        default=".repro-service",
        metavar="DIR",
        help="persistent job queue directory (jobs survive restarts)",
    )
    serve.add_argument(
        "--scheduler",
        choices=("round", "stealing"),
        default="stealing",
        help="campaign execution discipline (default: stealing)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget",
    )
    _add_runner_flags(serve)

    submit = sub.add_parser(
        "submit", help="submit one experiment to a running server"
    )
    submit.add_argument("benchmark", choices=BENCHMARKS)
    submit.add_argument("scheme")
    submit.add_argument("--instructions", type=int, default=100_000)
    submit.add_argument("--error-rate", type=float, default=0.0)
    submit.add_argument(
        "--error-model", choices=sorted(MODELS), default="random"
    )
    submit.add_argument("--vulnerability", action="store_true")
    _add_backend_flag(submit)
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8642)
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return instead of waiting for the result",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="how long to wait for the result (with waiting enabled)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the seeded fault-injection scenario suite "
        "(byte-identical reports under injected failures)",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fault-plan seed (every scenario replays deterministically)",
    )
    chaos.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="run only NAME (repeatable; default: every scenario)",
    )
    chaos.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    chaos.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="scenario sandbox directory (default: a fresh temp dir)",
    )

    status = sub.add_parser(
        "status", help="inspect a running server (jobs, telemetry)"
    )
    status.add_argument(
        "job_id",
        nargs="?",
        default=None,
        help="job id to inspect (omit for the job table + telemetry)",
    )
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=8642)

    return parser


def _cmd_list() -> int:
    print("benchmarks:", ", ".join(BENCHMARKS))
    print("schemes   :")
    for name in registered_schemes():
        info = scheme_info(name)
        print(f"  {name:<16} {info.description}")
    print("figures   :", ", ".join(sorted(ALL_FIGURES)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scheme_kwargs = {}
    if args.decay_window is not None:
        scheme_kwargs["decay_window"] = args.decay_window
    if args.victim is not None:
        scheme_kwargs["victim_policy"] = VictimPolicy(args.victim)
    if args.leave_replicas:
        scheme_kwargs["leave_replicas_on_evict"] = True
    if args.placement is not None:
        scheme_kwargs["placement"] = args.placement
    if args.replication_factor is not None:
        scheme_kwargs["replication_factor"] = args.replication_factor
    if args.virtual_nodes is not None:
        scheme_kwargs["virtual_nodes"] = args.virtual_nodes
    if args.ring_attempts is not None:
        scheme_kwargs["ring_attempts"] = args.ring_attempts
    if args.ring_hash is not None:
        scheme_kwargs["ring_hash"] = args.ring_hash
    runner = _make_runner(args)
    try:
        spec = ExperimentSpec(
            benchmark=args.benchmark,
            scheme=args.scheme,
            n_instructions=args.instructions,
            error_rate=args.error_rate,
            error_model=args.error_model,
            measure_vulnerability=args.vulnerability,
            backend=args.backend,
            scheme_kwargs=scheme_kwargs,
        )
    except ValueError as exc:  # unknown scheme name, from the registry
        print(str(exc), file=sys.stderr)
        return 2

    def _simulate():
        return runner.run_one(spec)

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        result = profiler.runcall(_simulate)
        pstats.Stats(profiler, stream=sys.stderr).sort_stats(
            "cumulative"
        ).print_stats(20)
    else:
        result = _simulate()
    print(f"{result.scheme} on {result.benchmark} ({result.instructions:,} instr)")
    print(f"  cycles            : {result.cycles:,} (CPI {result.cpi:.3f})")
    print(f"  dL1 miss rate     : {percent(result.miss_rate)}")
    print(f"  replication able  : {percent(result.replication_ability)}")
    print(f"  loads w/ replica  : {percent(result.loads_with_replica)}")
    print(f"  L1+L2 energy      : {result.energy.total_nj / 1e3:.1f} uJ")
    if args.error_rate > 0:
        d = result.dl1
        print(
            f"  faults            : {d['errors_injected']} injected, "
            f"{d['load_errors_detected']} detected, "
            f"{d['load_errors_unrecoverable']} unrecoverable"
        )
    if result.vulnerability is not None:
        print(
            f"  AVF (vulnerable)  : {percent(result.vulnerability.vulnerable_fraction)}"
        )
    _report_metrics(runner)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    knobs = RELAXED if args.relaxed else AGGRESSIVE
    runner = _make_runner(args)
    grid = [
        Job(
            args.benchmark,
            scheme,
            dict(
                n_instructions=args.instructions,
                backend=args.backend,
                **(knobs if scheme_info(scheme).accepts_icr_knobs else {}),
            ),
        )
        for scheme in ALL_SCHEMES
    ]
    results = runner.run(grid)
    base_cycles = results[0].cycles
    rows = [
        [r.scheme, r.cycles / base_cycles, r.miss_rate, r.loads_with_replica]
        for r in results
    ]
    print(
        format_table(
            ["scheme", "norm_cycles", "miss_rate", "loads_w_replica"], rows
        )
    )
    _report_metrics(runner)
    return 0


def _split_flag(values, cast=str) -> list:
    """Flatten repeated/comma-separated flag values."""
    out = []
    for value in values or []:
        for part in str(value).split(","):
            part = part.strip()
            if part:
                out.append(cast(part))
    return out


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.harness.campaign import CampaignConfig, create_engine

    benchmarks = _split_flag(args.benchmark)
    unknown = [b for b in benchmarks if b not in BENCHMARKS]
    if unknown:
        print(
            f"unknown benchmark(s): {', '.join(unknown)} "
            f"(choose from {', '.join(BENCHMARKS)})",
            file=sys.stderr,
        )
        return 2
    try:
        schemes = [normalize_scheme_name(s) for s in _split_flag(args.schemes)]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    error_rates = args.error_rate if args.error_rate is not None else [1e-2]
    config = CampaignConfig(
        benchmarks=tuple(benchmarks),
        schemes=tuple(schemes),
        error_rates=tuple(error_rates),
        trials=args.trials,
        min_trials=args.min_trials,
        batch_size=args.batch_size,
        target_half_width=args.target_half_width,
        ci_level=args.ci_level,
        seed0=args.seed,
        n_instructions=args.instructions,
        error_model=args.error_model,
        measure_vulnerability=args.vulnerability,
        scrub_period=args.scrub_period,
        backend=args.backend,
        scheme_kwargs=RELAXED if args.relaxed else {},
    )
    checkpoint = None
    if not args.no_checkpoint:
        checkpoint = args.checkpoint or (
            f".repro-campaign/{config.digest()}.json"
        )
        print(f"[campaign] checkpoint: {checkpoint}", file=sys.stderr)
    runner = _make_runner(args)
    if args.timeout is not None:
        runner.timeout = args.timeout
    engine_kwargs = dict(
        checkpoint_path=checkpoint,
        trial_log_path=args.trial_log,
        verbose=True,
    )
    if args.scheduler == "stealing":
        engine_kwargs["max_inflight"] = args.max_inflight
        engine_kwargs["share_dir"] = args.share_dir
    engine = create_engine(
        config, runner, scheduler=args.scheduler, **engine_kwargs
    )
    if engine.resumed:
        print("[campaign] resumed from checkpoint", file=sys.stderr)
    report = engine.run()
    print(report.to_table())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"[campaign] report written to {args.json}", file=sys.stderr)
    print(_telemetry_line(engine.telemetry()), file=sys.stderr)
    _report_metrics(runner)
    return 0


def _telemetry_line(t: dict) -> str:
    """One stderr line of scheduler telemetry after a campaign."""
    line = (
        f"[campaign] scheduler={t['scheduler']} · "
        f"{t['trials_committed']} committed · "
        f"{t['checkpoint_writes']} checkpoint writes"
    )
    if t["scheduler"] == "stealing":
        line += (
            f" · {t['utilization'] * 100:.0f}% util · "
            f"{t['steals']} steals · "
            f"{t['cancelled_savings']} cancelled · "
            f"{t['speculative_duplicates']} dups"
        )
        if t["records_adopted"] or t["helper_trials"]:
            line += (
                f" · {t['records_adopted']} adopted · "
                f"{t['helper_trials']} helper trials"
            )
    return line


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        queue_dir=args.queue_dir,
        campaign_scheduler=args.scheduler,
        timeout=args.timeout,
    )
    print(
        f"[serve] listening on http://{config.host}:{config.port} "
        f"(queue: {config.queue_dir})",
        file=sys.stderr,
    )
    serve(config)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    try:
        spec = ExperimentSpec(
            benchmark=args.benchmark,
            scheme=args.scheme,
            n_instructions=args.instructions,
            error_rate=args.error_rate,
            error_model=args.error_model,
            measure_vulnerability=args.vulnerability,
            backend=args.backend,
        )
    except ValueError as exc:  # unknown scheme name, from the registry
        print(str(exc), file=sys.stderr)
        return 2
    client = ServiceClient(host=args.host, port=args.port)
    try:
        submitted = client.submit(spec)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 2 if exc.status == 400 else 1
    except OSError as exc:
        print(
            f"cannot reach server at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    job = submitted["job"]
    print(
        f"[submit] job {job['id']} {job['state']} "
        f"({submitted['submission']})",
        file=sys.stderr,
    )
    if args.no_wait:
        print(job["id"])
        return 0
    payload = client.wait(job["id"], timeout=args.timeout)
    job = payload["job"]
    if job["state"] != "done":
        print(f"job failed: {job.get('error')}", file=sys.stderr)
        return 1
    from repro.harness.cache import result_from_dict

    result = result_from_dict(payload["result"])
    print(f"{result.scheme} on {result.benchmark} ({result.instructions:,} instr)")
    print(f"  cycles            : {result.cycles:,} (CPI {result.cpi:.3f})")
    print(f"  dL1 miss rate     : {percent(result.miss_rate)}")
    print(f"  loads w/ replica  : {percent(result.loads_with_replica)}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.job_id is not None:
            payload = client.job(args.job_id)
            job = payload["job"]
            print(
                f"{job['id']}  {job['kind']}  {job['state']}"
                + (f"  error: {job['error']}" if job["error"] else "")
            )
            return 0
        telemetry = client.telemetry()
        jobs = client.jobs()
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"cannot reach server at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    for job in jobs:
        print(f"{job['id']}  {job['kind']}  {job['state']}")
    store = telemetry["store"]
    print(
        f"[status] {telemetry['submissions']} submissions · "
        f"{telemetry['dedup_hits']} deduped · "
        f"{telemetry['cache_served']} cache-served · "
        f"queue depth {telemetry['queue_depth']} · "
        f"store hit-rate {store['hit_rate'] * 100:.0f}%",
        file=sys.stderr,
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Lazy import: scenarios pulls in the whole harness + service.
    from repro.chaos import scenarios

    if args.list:
        for name, fn in scenarios.SCENARIOS.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<18} {summary}")
        return 0
    try:
        if args.workdir is not None:
            results = scenarios.run_suite(
                args.scenario, workdir=args.workdir, seed=args.seed
            )
        else:
            import tempfile

            with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
                results = scenarios.run_suite(
                    args.scenario, workdir=tmp, seed=args.seed
                )
    except ValueError as exc:  # unknown --scenario name
        print(str(exc), file=sys.stderr)
        return 2
    failed = [r for r in results if not r.passed]
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        print(f"[chaos] {mark}  {r.name:<18} {r.duration:6.2f}s  {r.detail}")
    print(
        f"[chaos] seed={args.seed}: {len(results) - len(failed)}/{len(results)} "
        "scenarios passed",
        file=sys.stderr,
    )
    recovered = recovery.summary()
    if recovered:
        print(recovered, file=sys.stderr)
    return 1 if failed else 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    result = run_figure(args.figure_id, runner=runner, n=args.instructions)
    print(result.to_table())
    _report_metrics(runner)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
    except BrokenPipeError:  # e.g. `repro-icr list | head`
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
