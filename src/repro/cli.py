"""Command-line interface: run experiments and figures from the shell.

Installed as the ``repro-icr`` console script::

    repro-icr list
    repro-icr run gzip "ICR-P-PS(S)" --instructions 100000
    repro-icr run vortex BaseP --error-rate 1e-2
    repro-icr compare mcf --relaxed
    repro-icr figure fig09 --instructions 40000 --jobs 4

``run``, ``compare`` and ``figure`` all execute through the parallel
runner (:mod:`repro.harness.runner`): ``--jobs N`` fans the experiment
grid over N worker processes (``--jobs 1`` stays fully in-process, so
pdb/coverage keep working), and results are persisted in the
content-addressed cache under ``~/.cache/repro`` (``--cache-dir`` to
relocate, ``--no-cache`` to bypass).  A one-line metrics summary — jobs,
cache hits, sims/sec — is printed to stderr so stdout stays a clean,
serial-identical table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.config import VictimPolicy
from repro.core.schemes import ALL_SCHEMES
from repro.harness.cache import ResultCache
from repro.harness.figures import AGGRESSIVE, ALL_FIGURES, RELAXED, run_figure
from repro.harness.report import format_table, percent
from repro.harness.runner import Job, ParallelRunner
from repro.workloads.spec2000 import BENCHMARKS


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: all cores; 1 = in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    cache = None
    if not args.no_cache:
        cache = ResultCache(cache_dir=args.cache_dir)
    return ParallelRunner(jobs=args.jobs, cache=cache, progress=sys.stderr.isatty())


def _report_metrics(runner: ParallelRunner) -> None:
    print(runner.stats.summary(), file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-icr",
        description="ICR (DSN 2003) reproduction: simulate dL1 schemes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes and figures")

    run = sub.add_parser("run", help="run one (benchmark, scheme) experiment")
    run.add_argument("benchmark", choices=BENCHMARKS)
    run.add_argument("scheme")
    run.add_argument("--instructions", type=int, default=100_000)
    run.add_argument("--decay-window", type=int, default=None)
    run.add_argument(
        "--victim",
        choices=[p.value for p in VictimPolicy],
        default=None,
    )
    run.add_argument("--leave-replicas", action="store_true")
    run.add_argument("--error-rate", type=float, default=0.0)
    run.add_argument(
        "--error-model",
        choices=["random", "direct", "adjacent", "column"],
        default="random",
    )
    run.add_argument("--vulnerability", action="store_true")
    run.add_argument(
        "--profile",
        action="store_true",
        help="profile the simulation with cProfile; top-20 cumulative "
        "entries go to stderr (results are unaffected)",
    )
    _add_runner_flags(run)

    compare = sub.add_parser("compare", help="run all ten schemes on a benchmark")
    compare.add_argument("benchmark", choices=BENCHMARKS)
    compare.add_argument("--instructions", type=int, default=100_000)
    compare.add_argument(
        "--relaxed",
        action="store_true",
        help="decay window 1000 + dead-first (Section 5.4) instead of aggressive",
    )
    _add_runner_flags(compare)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("figure_id", choices=sorted(ALL_FIGURES))
    figure.add_argument("--instructions", type=int, default=60_000)
    _add_runner_flags(figure)

    return parser


def _cmd_list() -> int:
    print("benchmarks:", ", ".join(BENCHMARKS))
    print("schemes   :", ", ".join(ALL_SCHEMES))
    print("           plus: BaseECC-spec, BaseP-WT")
    print("figures   :", ", ".join(sorted(ALL_FIGURES)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.decay_window is not None:
        kwargs["decay_window"] = args.decay_window
    if args.victim is not None:
        kwargs["victim_policy"] = VictimPolicy(args.victim)
    if args.leave_replicas:
        kwargs["leave_replicas_on_evict"] = True
    runner = _make_runner(args)

    def _simulate():
        return runner.run_one(
            args.benchmark,
            args.scheme,
            n_instructions=args.instructions,
            error_rate=args.error_rate,
            error_model=args.error_model,
            measure_vulnerability=args.vulnerability,
            **kwargs,
        )

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        result = profiler.runcall(_simulate)
        pstats.Stats(profiler, stream=sys.stderr).sort_stats(
            "cumulative"
        ).print_stats(20)
    else:
        result = _simulate()
    print(f"{result.scheme} on {result.benchmark} ({result.instructions:,} instr)")
    print(f"  cycles            : {result.cycles:,} (CPI {result.cpi:.3f})")
    print(f"  dL1 miss rate     : {percent(result.miss_rate)}")
    print(f"  replication able  : {percent(result.replication_ability)}")
    print(f"  loads w/ replica  : {percent(result.loads_with_replica)}")
    print(f"  L1+L2 energy      : {result.energy.total_nj / 1e3:.1f} uJ")
    if args.error_rate > 0:
        d = result.dl1
        print(
            f"  faults            : {d['errors_injected']} injected, "
            f"{d['load_errors_detected']} detected, "
            f"{d['load_errors_unrecoverable']} unrecoverable"
        )
    if result.vulnerability is not None:
        print(
            f"  AVF (vulnerable)  : {percent(result.vulnerability.vulnerable_fraction)}"
        )
    _report_metrics(runner)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    knobs = RELAXED if args.relaxed else AGGRESSIVE
    runner = _make_runner(args)
    grid = [
        Job(
            args.benchmark,
            scheme,
            dict(
                n_instructions=args.instructions,
                **({} if scheme.startswith("Base") else knobs),
            ),
        )
        for scheme in ALL_SCHEMES
    ]
    results = runner.run(grid)
    base_cycles = results[0].cycles
    rows = [
        [r.scheme, r.cycles / base_cycles, r.miss_rate, r.loads_with_replica]
        for r in results
    ]
    print(
        format_table(
            ["scheme", "norm_cycles", "miss_rate", "loads_w_replica"], rows
        )
    )
    _report_metrics(runner)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    result = run_figure(args.figure_id, runner=runner, n=args.instructions)
    print(result.to_table())
    _report_metrics(runner)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "figure":
            return _cmd_figure(args)
    except BrokenPipeError:  # e.g. `repro-icr list | head`
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
