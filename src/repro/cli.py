"""Command-line interface: run experiments and figures from the shell.

Installed as the ``repro-icr`` console script::

    repro-icr list
    repro-icr run gzip "ICR-P-PS(S)" --instructions 100000
    repro-icr run vortex BaseP --error-rate 1e-2
    repro-icr compare mcf --relaxed
    repro-icr figure fig09 --instructions 40000
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.config import VictimPolicy
from repro.core.schemes import ALL_SCHEMES
from repro.harness.experiment import run_experiment
from repro.harness.figures import AGGRESSIVE, ALL_FIGURES, RELAXED
from repro.harness.report import format_table, percent
from repro.workloads.spec2000 import BENCHMARKS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-icr",
        description="ICR (DSN 2003) reproduction: simulate dL1 schemes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes and figures")

    run = sub.add_parser("run", help="run one (benchmark, scheme) experiment")
    run.add_argument("benchmark", choices=BENCHMARKS)
    run.add_argument("scheme")
    run.add_argument("--instructions", type=int, default=100_000)
    run.add_argument("--decay-window", type=int, default=None)
    run.add_argument(
        "--victim",
        choices=[p.value for p in VictimPolicy],
        default=None,
    )
    run.add_argument("--leave-replicas", action="store_true")
    run.add_argument("--error-rate", type=float, default=0.0)
    run.add_argument(
        "--error-model",
        choices=["random", "direct", "adjacent", "column"],
        default="random",
    )
    run.add_argument("--vulnerability", action="store_true")

    compare = sub.add_parser("compare", help="run all ten schemes on a benchmark")
    compare.add_argument("benchmark", choices=BENCHMARKS)
    compare.add_argument("--instructions", type=int, default=100_000)
    compare.add_argument(
        "--relaxed",
        action="store_true",
        help="decay window 1000 + dead-first (Section 5.4) instead of aggressive",
    )

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("figure_id", choices=sorted(ALL_FIGURES))
    figure.add_argument("--instructions", type=int, default=60_000)

    return parser


def _cmd_list() -> int:
    print("benchmarks:", ", ".join(BENCHMARKS))
    print("schemes   :", ", ".join(ALL_SCHEMES))
    print("           plus: BaseECC-spec, BaseP-WT")
    print("figures   :", ", ".join(sorted(ALL_FIGURES)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.decay_window is not None:
        kwargs["decay_window"] = args.decay_window
    if args.victim is not None:
        kwargs["victim_policy"] = VictimPolicy(args.victim)
    if args.leave_replicas:
        kwargs["leave_replicas_on_evict"] = True
    result = run_experiment(
        args.benchmark,
        args.scheme,
        n_instructions=args.instructions,
        error_rate=args.error_rate,
        error_model=args.error_model,
        measure_vulnerability=args.vulnerability,
        **kwargs,
    )
    print(f"{result.scheme} on {result.benchmark} ({result.instructions:,} instr)")
    print(f"  cycles            : {result.cycles:,} (CPI {result.cpi:.3f})")
    print(f"  dL1 miss rate     : {percent(result.miss_rate)}")
    print(f"  replication able  : {percent(result.replication_ability)}")
    print(f"  loads w/ replica  : {percent(result.loads_with_replica)}")
    print(f"  L1+L2 energy      : {result.energy.total_nj / 1e3:.1f} uJ")
    if args.error_rate > 0:
        d = result.dl1
        print(
            f"  faults            : {d['errors_injected']} injected, "
            f"{d['load_errors_detected']} detected, "
            f"{d['load_errors_unrecoverable']} unrecoverable"
        )
    if result.vulnerability is not None:
        print(
            f"  AVF (vulnerable)  : {percent(result.vulnerability.vulnerable_fraction)}"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    knobs = RELAXED if args.relaxed else AGGRESSIVE
    rows = []
    base_cycles: Optional[int] = None
    for scheme in ALL_SCHEMES:
        extra = {} if scheme.startswith("Base") else knobs
        r = run_experiment(
            args.benchmark, scheme, n_instructions=args.instructions, **extra
        )
        if base_cycles is None:
            base_cycles = r.cycles
        rows.append(
            [scheme, r.cycles / base_cycles, r.miss_rate, r.loads_with_replica]
        )
    print(
        format_table(
            ["scheme", "norm_cycles", "miss_rate", "loads_w_replica"], rows
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    fn = ALL_FIGURES[args.figure_id]
    result = fn(n=args.instructions)
    print(result.to_table())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "figure":
            return _cmd_figure(args)
    except BrokenPipeError:  # e.g. `repro-icr list | head`
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
