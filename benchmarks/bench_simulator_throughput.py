"""Micro-benchmarks of the simulator itself (proper pytest-benchmark use).

These track the throughput of the hot paths — cache accesses, SEC-DED
encode/decode, pipeline scheduling, trace generation — so performance
regressions in the substrate are visible independently of the figure
suite.
"""

import random

from repro.cache.hierarchy import MemoryHierarchy
from repro.cache.set_assoc import CacheGeometry, SetAssociativeCache
from repro.coding.hamming import decode, encode
from repro.core.schemes import make_cache
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.harness.runner import Job, ParallelRunner
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec2000 import profile_for


def test_plain_cache_access_throughput(benchmark):
    cache = SetAssociativeCache(CacheGeometry(16 * 1024, 4, 64))
    rng = random.Random(1)
    addrs = [rng.randrange(1 << 22) & ~7 for _ in range(20_000)]

    def run():
        for now, addr in enumerate(addrs):
            cache.access(addr, now & 3 == 0, now)

    benchmark(run)


def test_icr_cache_access_throughput(benchmark):
    cache = make_cache("ICR-P-PS(S)", decay_window=0)
    rng = random.Random(2)
    hot = [rng.randrange(1 << 20) & ~7 for _ in range(128)]
    addrs = [
        rng.choice(hot) if rng.random() < 0.8 else rng.randrange(1 << 22) & ~7
        for _ in range(20_000)
    ]

    def run():
        for now, addr in enumerate(addrs):
            cache.access(addr, now & 3 == 0, now)

    benchmark(run)


def test_secded_encode_throughput(benchmark):
    words = [((i * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)) for i in range(2_000)]
    benchmark(lambda: [encode(w) for w in words])


def test_secded_decode_throughput(benchmark):
    codewords = [
        encode((i * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)) for i in range(2_000)
    ]
    benchmark(lambda: [decode(c) for c in codewords])


def test_pipeline_throughput(benchmark):
    trace = WorkloadGenerator(profile_for("gzip")).generate(30_000)

    def run():
        pipeline = OutOfOrderPipeline(MemoryHierarchy(make_cache("BaseP")))
        return pipeline.run(trace).cycles

    benchmark(run)


def test_trace_generation_throughput(benchmark):
    generator = WorkloadGenerator(profile_for("gcc"))
    benchmark(lambda: generator.generate(30_000))


def _end_to_end_grid(backend):
    return [
        Job(bench, scheme, dict(n_instructions=30_000, backend=backend))
        for bench in ("gzip", "mcf")
        for scheme in ("BaseP", "ICR-P-PS(S)")
    ]


def test_end_to_end_sims_per_sec(benchmark):
    """End-to-end runner throughput (jobs=1, result cache disabled).

    This is the number the acceptance bar in BENCH_simulator.json tracks:
    whole simulations per second through the serial in-process path —
    trace lookup, pipeline, hierarchy and stats extraction included.
    """
    grid = _end_to_end_grid("object")

    def run():
        runner = ParallelRunner(jobs=1, cache=None)
        runner.run(grid)
        return runner.stats.sims_per_sec

    benchmark(run)


def test_end_to_end_sims_per_sec_array(benchmark):
    """Same grid through the struct-of-arrays kernel (backend="array").

    One untimed warm-up pass first: it fills the trace memo and the
    phase-1 prestage memo and builds the native phase-2 kernel, all
    one-time costs that would otherwise be charged to the first timed
    round.  The steady-state number here against its object twin above
    is the array kernel's speedup claim (>= 3x end to end).
    """
    grid = _end_to_end_grid("array")
    ParallelRunner(jobs=1, cache=None).run(list(grid))

    def run():
        runner = ParallelRunner(jobs=1, cache=None)
        runner.run(grid)
        return runner.stats.sims_per_sec

    benchmark(run)
