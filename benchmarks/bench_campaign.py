"""Campaign smoke target: a tiny Monte Carlo fault-injection campaign.

Runs a deliberately small campaign (two schemes, one benchmark, a
handful of trials) through :mod:`repro.harness.campaign` under **both**
schedulers — the synchronous round-barrier engine and the continuous
work-stealing engine — asserts their reports are byte-identical, and
records per-scheduler trials/sec plus scheduler telemetry (worker
utilization, steals, cancelled-trial savings) under
``benchmarks/results/``.

A second, adaptive-stopping campaign measures the headline scheduler
win: with ``batch_size=1`` and a bootstrap half-width target, the round
engine degenerates into one barrier per trial while the stealing engine
pipelines speculative trials past the firm frontier and cancels them on
convergence.  The wall-clock ratio (round / stealing) is recorded as
``adaptive.speedup`` in ``BENCH_campaign.json``.

This is the artifact the CI campaign-smoke job uploads; it is sized to
finish in well under a minute so it can run on every push without
gating merges.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py
    PYTHONPATH=src python benchmarks/bench_campaign.py --trials 20 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def _run_once(config, scheduler, jobs, **engine_kwargs):
    """One fresh, uncached campaign run; returns (report, telemetry, secs)."""
    from repro.harness.campaign import create_engine
    from repro.harness.runner import ParallelRunner

    runner = ParallelRunner(jobs=jobs, cache=None)
    engine = create_engine(config, runner, scheduler=scheduler, **engine_kwargs)
    start = time.perf_counter()
    report = engine.run()
    elapsed = time.perf_counter() - start
    return report, engine.telemetry(), elapsed


def _scheduler_entry(report, telemetry, elapsed):
    trials = sum(len(o.records) for o in report.outcomes)
    return {
        "elapsed_s": round(elapsed, 3),
        "trials": trials,
        "trials_per_sec": round(trials / elapsed, 2) if elapsed else None,
        "telemetry": telemetry,
        # Multi-host cooperation: how much of the helper-trial effort
        # (trials run for cells owned by another engine) actually warmed
        # the shared result cache with fresh simulations.
        "helper_warming": {
            "submitted": telemetry.get("helper_trials", 0),
            "completed": telemetry.get("helper_completed", 0),
            "warmed": telemetry.get("helper_warmed", 0),
            "warm_rate": round(telemetry.get("helper_warm_rate", 0.0), 4),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="gzip", help="workload profile")
    parser.add_argument(
        "--schemes", default="BaseP,ICR-P-PS(S)", help="comma-separated schemes"
    )
    parser.add_argument("--error-rate", type=float, default=1e-2)
    parser.add_argument("--trials", type=int, default=12, help="trials per cell")
    parser.add_argument("--instructions", type=int, default=20_000)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--adaptive-jobs",
        type=int,
        default=4,
        help="worker processes for the adaptive-stopping comparison",
    )
    parser.add_argument(
        "--adaptive-trials",
        type=int,
        default=48,
        help="trial cap per cell in the adaptive-stopping comparison",
    )
    parser.add_argument(
        "--adaptive-instructions",
        type=int,
        default=5_000,
        help="instructions per trial in the adaptive-stopping comparison "
        "(short trials make the per-barrier overhead visible)",
    )
    parser.add_argument(
        "--skip-adaptive",
        action="store_true",
        help="skip the adaptive-stopping scheduler comparison",
    )
    args = parser.parse_args(argv)

    from repro.harness.campaign import CampaignConfig

    config = CampaignConfig(
        benchmarks=(args.benchmark,),
        schemes=tuple(args.schemes.split(",")),
        error_rates=(args.error_rate,),
        trials=args.trials,
        batch_size=max(4, args.trials // 2),
        n_instructions=args.instructions,
    )

    # -- smoke campaign under both schedulers ------------------------------
    schedulers = {}
    reports = {}
    for scheduler in ("round", "stealing"):
        report, telemetry, elapsed = _run_once(config, scheduler, args.jobs)
        reports[scheduler] = report
        schedulers[scheduler] = _scheduler_entry(report, telemetry, elapsed)
        print(
            f"[{scheduler:>8}] {schedulers[scheduler]['trials']} trials "
            f"in {elapsed:.1f}s "
            f"({schedulers[scheduler]['trials_per_sec']} trials/sec, "
            f"jobs={args.jobs})"
        )

    byte_identical = reports["round"].to_json() == reports["stealing"].to_json()
    if not byte_identical:
        print("FAIL: round and stealing reports differ", file=sys.stderr)
    report = reports["round"]

    # -- adaptive stopping: round barriers vs stealing pipeline ------------
    adaptive = None
    if not args.skip_adaptive:
        adaptive_config = CampaignConfig(
            benchmarks=(args.benchmark,),
            schemes=tuple(args.schemes.split(",")),
            error_rates=(args.error_rate,),
            trials=args.adaptive_trials,
            min_trials=8,
            batch_size=1,
            target_half_width=1.15e-3,
            n_instructions=args.adaptive_instructions,
        )
        adaptive = {
            "config": {
                "trials": adaptive_config.trials,
                "batch_size": adaptive_config.batch_size,
                "target_half_width": adaptive_config.target_half_width,
                "jobs": args.adaptive_jobs,
            }
        }
        adaptive_reports = {}
        for scheduler in ("round", "stealing"):
            extra = {"lookahead_batches": 8} if scheduler == "stealing" else {}
            a_report, a_tel, a_elapsed = _run_once(
                adaptive_config, scheduler, args.adaptive_jobs, **extra
            )
            adaptive_reports[scheduler] = a_report
            adaptive[scheduler] = _scheduler_entry(a_report, a_tel, a_elapsed)
        adaptive["byte_identical"] = (
            adaptive_reports["round"].to_json()
            == adaptive_reports["stealing"].to_json()
        )
        speedup = (
            adaptive["round"]["elapsed_s"] / adaptive["stealing"]["elapsed_s"]
            if adaptive["stealing"]["elapsed_s"]
            else None
        )
        adaptive["speedup"] = round(speedup, 2) if speedup else None
        savings = adaptive["stealing"]["telemetry"].get("cancelled_savings", 0)
        print(
            f"[adaptive] round {adaptive['round']['elapsed_s']}s vs "
            f"stealing {adaptive['stealing']['elapsed_s']}s -> "
            f"{adaptive['speedup']}x speedup, "
            f"{savings} cancelled trials saved, "
            f"byte_identical={adaptive['byte_identical']}"
        )
        if not adaptive["byte_identical"]:
            print("FAIL: adaptive reports differ across schedulers", file=sys.stderr)
            byte_identical = False

    table = report.to_table()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_campaign.txt").write_text(table + "\n")
    payload = {
        "report": json.loads(report.to_json()),
        "byte_identical": byte_identical,
        "schedulers": schedulers,
        "adaptive": adaptive,
    }
    (RESULTS_DIR / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(table)

    # Shape check: every ICR cell must be at least as resilient as the
    # baseline cell sharing its (benchmark, error_rate).
    ulf = {
        o.cell: o.metric_ci("unrecoverable_load_fraction", config)
        for o in report.outcomes
    }
    ok = byte_identical
    for cell, ci in ulf.items():
        if ci is None or cell.scheme.startswith("Base"):
            continue
        for base_cell, base_ci in ulf.items():
            if (
                base_ci is not None
                and base_cell.scheme.startswith("Base")
                and base_cell.benchmark == cell.benchmark
                and base_cell.error_rate == cell.error_rate
                and ci.mean > base_ci.mean + 1e-9
            ):
                print(
                    f"FAIL: {cell.scheme} ulf {ci.mean:.4f} > "
                    f"{base_cell.scheme} {base_ci.mean:.4f}",
                    file=sys.stderr,
                )
                ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
