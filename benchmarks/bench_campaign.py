"""Campaign smoke target: a tiny Monte Carlo fault-injection campaign.

Runs a deliberately small campaign (two schemes, one benchmark, a
handful of trials) through :mod:`repro.harness.campaign`, records the
per-cell summary table and the full JSON report under
``benchmarks/results/``, and sanity-checks the paper's headline claim —
the ICR scheme's unrecoverable-load fraction must not exceed the
baseline's at the same error rate.

This is the artifact the CI campaign-smoke job uploads; it is sized to
finish in well under a minute so it can run on every push without
gating merges.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py
    PYTHONPATH=src python benchmarks/bench_campaign.py --trials 20 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="gzip", help="workload profile")
    parser.add_argument(
        "--schemes", default="BaseP,ICR-P-PS(S)", help="comma-separated schemes"
    )
    parser.add_argument("--error-rate", type=float, default=1e-2)
    parser.add_argument("--trials", type=int, default=12, help="trials per cell")
    parser.add_argument("--instructions", type=int, default=20_000)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    args = parser.parse_args(argv)

    from repro.harness.campaign import CampaignConfig, run_campaign
    from repro.harness.runner import ParallelRunner

    config = CampaignConfig(
        benchmarks=(args.benchmark,),
        schemes=tuple(args.schemes.split(",")),
        error_rates=(args.error_rate,),
        trials=args.trials,
        batch_size=max(4, args.trials // 2),
        n_instructions=args.instructions,
    )
    start = time.perf_counter()
    report = run_campaign(config, ParallelRunner(jobs=args.jobs, cache=None))
    elapsed = time.perf_counter() - start

    table = report.to_table()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_campaign.txt").write_text(table + "\n")
    (RESULTS_DIR / "BENCH_campaign.json").write_text(report.to_json())
    print(table)
    total = sum(len(o.ok_records()) for o in report.outcomes)
    print(f"\n{total} ok trials in {elapsed:.1f}s "
          f"({total / elapsed:.1f} trials/sec, jobs={args.jobs})")

    # Shape check: every ICR cell must be at least as resilient as the
    # baseline cell sharing its (benchmark, error_rate).
    ulf = {
        o.cell: o.metric_ci("unrecoverable_load_fraction", config)
        for o in report.outcomes
    }
    ok = True
    for cell, ci in ulf.items():
        if ci is None or cell.scheme.startswith("Base"):
            continue
        for base_cell, base_ci in ulf.items():
            if (
                base_ci is not None
                and base_cell.scheme.startswith("Base")
                and base_cell.benchmark == cell.benchmark
                and base_cell.error_rate == cell.error_rate
                and ci.mean > base_ci.mean + 1e-9
            ):
                print(
                    f"FAIL: {cell.scheme} ulf {ci.mean:.4f} > "
                    f"{base_cell.scheme} {base_ci.mean:.4f}",
                    file=sys.stderr,
                )
                ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
