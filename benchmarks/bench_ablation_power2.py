"""Ablation — the power-2 placement fallback of Section 3.1."""

from conftest import run_once

from repro.harness.figures import ablation_power2


def test_ablation_power2(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_power2(n=n_instructions))
    record(result)
    ability = result.column("replication_ability")
    # Monotone in attempts, with diminishing increments.
    assert all(b >= a - 1e-9 for a, b in zip(ability, ability[1:]))
    first_gain = ability[1] - ability[0]
    late_gain = ability[-1] - ability[-2]
    assert late_gain <= first_gain + 0.02
