"""Figure 6 — replication ability, LS vs S triggers."""

from conftest import run_once

from repro.harness.figures import figure_06


def test_fig06(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_06(n=n_instructions))
    record(result)
    for _, ls, s in result.rows:
        assert 0.0 <= ls <= 1.0 and 0.0 <= s <= 1.0
