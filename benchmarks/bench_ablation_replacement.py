"""Ablation — does ICR depend on true-LRU replacement? (extension)

The paper's cache is true LRU.  Hardware L1s often ship tree-PLRU or
random replacement; this bench checks that ICR's coverage and cost
survive the approximation.
"""

from conftest import run_once

from repro.harness.figures import ablation_replacement





def test_ablation_replacement(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_replacement(n=n_instructions))
    record(result)
    lwr = dict(zip(result.column("replacement"), result.column("loads_with_replica")))
    # The approximations stay in the same coverage league as true LRU.
    assert lwr["plru"] > 0.5 * lwr["lru"]
    assert lwr["random"] > 0.3 * lwr["lru"]
