"""Ablation — all four transient-error models (Section 5.5)."""

from conftest import run_once

from repro.harness.figures import ablation_error_models


def test_ablation_error_models(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_error_models(n=n_instructions))
    record(result)
    for model, base_p, base_sil, icr_p, icr_sil, icr_ecc in result.rows:
        # Paper: "the overall results are similar" — counting both
        # unrecoverable and *silent* losses, the ordering holds under
        # every model.  (Adjacent in-byte double flips defeat parity
        # silently, so the silent column must be included for fairness.)
        assert icr_p + icr_sil <= base_p + base_sil + 0.05
        assert icr_ecc <= icr_p + icr_sil + 0.05
