"""Figure 2 — loads with replica, single vs multiple placement attempts."""

from conftest import run_once

from repro.harness.figures import figure_01, figure_02


def test_fig02(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_02(n=n_instructions))
    record(result)
    averages = result.averages()
    # Paper: "negligible improvement from multiple attempts" — the gain in
    # loads-with-replica is far smaller than the gain in raw ability.
    ability = figure_01(n=n_instructions).averages()
    ability_gain = ability["multi_attempt"] - ability["single_attempt"]
    lwr_gain = averages["multi_attempt"] - averages["single_attempt"]
    assert lwr_gain < ability_gain
    assert averages["single_attempt"] > 0.4  # hot data replicated regardless
