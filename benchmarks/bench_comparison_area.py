"""Comparison — storage/leakage cost of each reliability option.

The paper's closing argument (Section 6): ICR needs no additional
storage, while the alternatives pay in area and leakage.  This bench
tabulates the exact bit arithmetic.
"""

from conftest import run_once

from repro.harness.figures import comparison_area





def test_comparison_area(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: comparison_area(n=n_instructions))
    record(result)
    fractions = dict(
        zip(result.column("option"), result.column("fraction_of_dl1"))
    )
    assert fractions["ICR (flag + decay counters)"] < 0.01
    assert all(
        f > 0.01 for name, f in fractions.items() if not name.startswith("ICR")
    )
