"""Figure 8 — miss-rate cost of replication (Base vs LS vs S)."""

from conftest import run_once

from repro.harness.figures import figure_08


def test_fig08(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_08(n=n_instructions))
    record(result)
    for _, base, ls, s in result.rows:
        # Paper: "Both ICR-*(LS) and ICR-*(S) increase the number of dL1
        # misses", LS more than S.
        assert s >= base - 1e-9
        assert ls >= s - 1e-9
