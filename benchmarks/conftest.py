"""Shared fixtures for the figure-reproduction benchmark suite.

Every ``bench_fig*.py`` module regenerates one figure of the paper via
:mod:`repro.harness.figures`, records the table under
``benchmarks/results/`` and asserts the figure's *shape* (who wins, in
which direction).  Timing is collected with pytest-benchmark in a single
round — the interesting output is the table, not the wall-clock.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Trace length used by the figure benchmarks.  Large enough for stable
#: metrics (see tests/test_integration_convergence.py), small enough that
#: the whole suite finishes in minutes.
BENCH_INSTRUCTIONS = 60_000


@pytest.fixture
def record():
    """Persist a FigureResult table and echo it to the terminal."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = result.figure_id.replace(" ", "").lower()
        table = result.to_table()
        (RESULTS_DIR / f"{stem}.txt").write_text(table + "\n")
        (RESULTS_DIR / f"{stem}.json").write_text(result.to_json() + "\n")
        print("\n" + table)
        return result

    return _record


@pytest.fixture
def n_instructions():
    return BENCH_INSTRUCTIONS


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
