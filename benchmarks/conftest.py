"""Shared fixtures for the figure-reproduction benchmark suite.

Every ``bench_fig*.py`` module regenerates one figure of the paper via
:mod:`repro.harness.figures`, records the table under
``benchmarks/results/`` and asserts the figure's *shape* (who wins, in
which direction).  Timing is collected with pytest-benchmark in a single
round — the interesting output is the table, not the wall-clock.

The suite runs on the parallel execution engine
(:mod:`repro.harness.runner`), configured through the environment:

``REPRO_BENCH_JOBS``
    Worker processes (default 1 = serial, in-process — identical to the
    historical behavior).  With more than one, each figure's job grid is
    prefetched through the worker pool before the figure function
    replays it, so the recorded tables are bit-identical either way.
``REPRO_BENCH_CACHE``
    Set to ``1`` to persist results in the content-addressed cache
    (``REPRO_CACHE_DIR`` or ``~/.cache/repro``); re-running the suite
    after an interrupted run then only simulates the missing figures.
    Off by default so benchmark timings stay honest.
``REPRO_PERF_SMOKE``
    Set to ``1`` by the CI perf-smoke job: forces serial in-process
    execution with no result cache, overriding the two knobs above, so
    the recorded throughput numbers measure the simulator and nothing
    else.
"""

import os
import pathlib

import pytest

from repro.harness import figures as figures_mod
from repro.harness.cache import ResultCache
from repro.harness.figures import ALL_FIGURES
from repro.harness.runner import ParallelRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Trace length used by the figure benchmarks.  Large enough for stable
#: metrics (see tests/test_integration_convergence.py), small enough that
#: the whole suite finishes in minutes.
BENCH_INSTRUCTIONS = 60_000


def _engine_from_env():
    """The session's ParallelRunner, or None for plain serial execution."""
    if os.environ.get("REPRO_PERF_SMOKE", "") == "1":
        # Perf-smoke runs time the simulator itself: serial, uncached.
        return None
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
    cache_on = os.environ.get("REPRO_BENCH_CACHE", "") == "1"
    if jobs <= 1 and not cache_on:
        return None
    cache = ResultCache() if cache_on else None
    return ParallelRunner(jobs=jobs, cache=cache)


@pytest.fixture(scope="session")
def engine():
    """Session-wide execution engine (None = direct serial calls)."""
    runner = _engine_from_env()
    yield runner
    if runner is not None and runner.stats.jobs:
        print("\n" + runner.stats.summary())


def _figure_id_for(module_name: str):
    """Map ``bench_fig05_vertical_horizontal`` -> ``fig05`` (or None)."""
    stem = module_name.removeprefix("bench_")
    candidates = [fid for fid in ALL_FIGURES if stem.startswith(fid)]
    return max(candidates, key=len) if candidates else None


@pytest.fixture(autouse=True)
def _parallel_prefetch(request, engine):
    """Warm the engine's cache for this module's figure, then replay.

    With ``REPRO_BENCH_JOBS > 1`` the figure's whole job grid is traced
    and fanned out over the worker pool *before* the benchmarked call;
    the benchmarked figure function then replays from the in-memory memo.
    With a serial engine (or none) this only installs the execution
    context, preserving the historical behavior exactly.
    """
    if engine is None:
        yield
        return
    figure_id = _figure_id_for(request.node.module.__name__)
    if (
        engine.jobs > 1
        and figure_id is not None
        and figure_id not in figures_mod.PREFETCH_UNSAFE
    ):
        collector = figures_mod._JobCollector()
        with figures_mod.execution_context(collector):
            ALL_FIGURES[figure_id](n=BENCH_INSTRUCTIONS)
        engine.run(collector.jobs)
    with figures_mod.execution_context(engine):
        yield


@pytest.fixture
def record():
    """Persist a FigureResult table and echo it to the terminal."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = result.figure_id.replace(" ", "").lower()
        table = result.to_table()
        (RESULTS_DIR / f"{stem}.txt").write_text(table + "\n")
        (RESULTS_DIR / f"{stem}.json").write_text(result.to_json() + "\n")
        print("\n" + table)
        return result

    return _record


@pytest.fixture
def n_instructions():
    return BENCH_INSTRUCTIONS


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
