"""Comparison — ICR vs a dedicated Kim & Somani-style R-Cache.

The paper's Section 5.2: "hot data items are getting automatically
replicated (we do not need a separate cache for achieving this compared
to that needed by [11])".  This bench measures both sides: duplicate
coverage of a 2KB dedicated side cache vs ICR's in-cache replicas.
"""

from conftest import run_once

from repro.harness.figures import comparison_rcache

from repro.baselines.rcache import run_rcache_baseline
from repro.harness.experiment import run_experiment
from repro.harness.figures import FigureResult
from repro.workloads.spec2000 import BENCHMARKS




def test_comparison_rcache(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: comparison_rcache(n=n_instructions))
    record(result)
    averages = result.averages()
    icr = averages["icr_loads_with_replica"]
    rcache = averages["rcache_loads_with_duplicate"]
    # Same league: ICR within 2x either way of the dedicated cache, at
    # zero dedicated area.
    assert icr > 0.4 * rcache
