"""Comparison — ICR vs a dedicated Kim & Somani-style R-Cache.

The paper's Section 5.2: "hot data items are getting automatically
replicated (we do not need a separate cache for achieving this compared
to that needed by [11])".  This bench measures both sides: duplicate
coverage of a 2KB dedicated side cache vs ICR's in-cache replicas.

The R-Cache side runs through the registered ``rcache`` scheme (the
figure resolves it via the registry like any other scheme);
``test_rcache_registry_matches_standalone`` pins that path to the
standalone :func:`~repro.baselines.rcache.run_rcache_baseline` loop
exactly, so the figure's numbers are the baseline's numbers.
"""

from conftest import run_once

from repro.baselines.rcache import run_rcache_baseline
from repro.harness.experiment import run_experiment
from repro.harness.figures import comparison_rcache
from repro.harness.spec import ExperimentSpec


def test_comparison_rcache(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: comparison_rcache(n=n_instructions))
    record(result)
    averages = result.averages()
    icr = averages["icr_loads_with_replica"]
    rcache = averages["rcache_loads_with_duplicate"]
    # Same league: ICR within 2x either way of the dedicated cache, at
    # zero dedicated area.
    assert icr > 0.4 * rcache


def test_rcache_registry_matches_standalone(n_instructions):
    for bench in ("gzip", "mcf"):
        standalone = run_rcache_baseline(bench, n_instructions=n_instructions)
        via_registry = run_experiment(
            ExperimentSpec(bench, "rcache", n_instructions=n_instructions)
        )
        assert (
            via_registry.loads_with_replica == standalone.loads_with_duplicate
        ), bench
