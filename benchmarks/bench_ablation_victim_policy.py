"""Ablation — the four victim policies of Section 3.1."""

from conftest import run_once

from repro.harness.figures import ablation_victim_policy


def test_ablation_victim_policy(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_victim_policy(n=n_instructions))
    record(result)
    ability = dict(zip(result.column("policy"), result.column("replication_ability")))
    # dead-first can only widen the candidate set.
    assert ability["dead-first"] >= ability["dead-only"]
    # replica-only cannot bootstrap (no replicas exist to displace).
    assert ability["replica-only"] == 0.0
