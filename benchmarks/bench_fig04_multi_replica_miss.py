"""Figure 4 — miss-rate cost of creating a second replica."""

from conftest import run_once

from repro.harness.figures import figure_04


def test_fig04(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_04(n=n_instructions))
    record(result)
    averages = result.averages()
    # Paper: "the space taken by these multiple copies can evict more
    # useful blocks thereby worsening the locality and increasing miss
    # rates."
    assert averages["two_replicas"] >= averages["one_replica"]
