"""Figure 1 — replication ability, single vs multiple placement attempts."""

from conftest import run_once

from repro.harness.figures import figure_01


def test_fig01(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_01(n=n_instructions))
    record(result)
    for _, single, multi in result.rows:
        assert 0.0 <= single <= 1.0
        # Paper: "the multiple attempt strategy does allow a higher
        # probability of replicating cache lines."
        assert multi >= single
    averages = result.averages()
    assert averages["multi_attempt"] > averages["single_attempt"]
