"""Figure 15 — replicas left in place serve misses (performance mode)."""

from conftest import run_once

from repro.harness.figures import figure_15


def test_fig15(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_15(n=n_instructions))
    record(result)
    averages = result.averages()
    # Paper: ICR-P-PS(S)+leave provides "as good performance as BaseP";
    # mcf even beats BaseP thanks to replica fills.
    assert averages["ICR-P-PS(S)+leave"] < 1.03
    mcf_row = [r for r in result.rows if r[0] == "mcf"][0]
    assert mcf_row[2] > mcf_row[3] or mcf_row[3] < 1.0  # beats BaseECC at least
    assert averages["BaseECC"] > averages["ICR-ECC-PS(S)+leave"]
