"""Figure 16 — write-through BaseP vs write-back ICR-P-PS(S)."""

from conftest import run_once

from repro.harness.figures import figure_16


def test_fig16(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_16(n=n_instructions))
    record(result)
    averages = result.averages()
    # Paper: ICR is faster on average (write-buffer stalls) and the
    # write-through hierarchy burns much more L1+L2 energy.
    assert averages["wt_cycles_ratio"] >= 1.0
    assert averages["wt_energy_ratio"] > 1.3
