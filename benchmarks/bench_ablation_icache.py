"""Ablation — parity-only iL1 reliability (the paper's Section 1 claim)."""

from conftest import run_once

from repro.harness.figures import ablation_icache


def test_ablation_icache(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_icache(n=n_instructions))
    record(result)
    for _, injected, detected, recovered, unrecoverable in result.rows:
        # Read-only contents: detection alone suffices.
        assert unrecoverable == 0
        assert recovered == detected
