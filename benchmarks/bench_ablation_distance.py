"""Ablation — replica distance choice (Section 5.1 text)."""

from conftest import run_once

from repro.harness.figures import ablation_distance


def test_ablation_distance(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_distance(n=n_instructions))
    record(result)
    lwr = dict(zip(result.column("distance"), result.column("loads_with_replica")))
    # Paper: Distance-7 indistinguishable from Distance-N/2.
    assert abs(lwr["7"] - lwr["N/2"]) < 0.15
