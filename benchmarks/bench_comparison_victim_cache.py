"""Comparison — ICR leave-in-place mode vs a dedicated victim cache.

Section 5.6 says leaving replicas behind "can thus make the cache appear
to have higher associativity sometimes [18]".  The classical alternative
is a dedicated fully-associative victim cache; this bench compares the
speedups over BaseP side by side.
"""

from conftest import run_once

from repro.harness.figures import comparison_victim_cache

from repro.baselines.victim_cache import run_victim_cache_baseline
from repro.harness.experiment import run_experiment
from repro.harness.figures import RELAXED, FigureResult
from repro.workloads.spec2000 import BENCHMARKS




def test_comparison_victim_cache(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: comparison_victim_cache(n=n_instructions))
    record(result)
    vc = result.averages()["victim_cache"]
    icr = result.averages()["ICR-P-PS(S)+leave"]
    # Both stay at or below ~BaseP on average; ICR tracks the dedicated
    # structure within a couple percent without its area.
    assert vc <= 1.01 and icr <= 1.02
    assert abs(icr - vc) < 0.05
