"""Comparison — ICR leave-in-place mode vs a dedicated victim cache.

Section 5.6 says leaving replicas behind "can thus make the cache appear
to have higher associativity sometimes [18]".  The classical alternative
is a dedicated fully-associative victim cache; this bench compares the
speedups over BaseP side by side.

The victim-cache side runs through the registered ``victim-cache``
scheme; ``test_victim_cache_registry_matches_standalone`` pins that
path cycle-for-cycle to the standalone
:func:`~repro.baselines.victim_cache.run_victim_cache_baseline` runner.
"""

from conftest import run_once

from repro.baselines.victim_cache import run_victim_cache_baseline
from repro.harness.experiment import run_experiment
from repro.harness.figures import comparison_victim_cache
from repro.harness.spec import ExperimentSpec


def test_comparison_victim_cache(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: comparison_victim_cache(n=n_instructions))
    record(result)
    vc = result.averages()["victim_cache"]
    icr = result.averages()["ICR-P-PS(S)+leave"]
    # Both stay at or below ~BaseP on average; ICR tracks the dedicated
    # structure within a couple percent without its area.
    assert vc <= 1.01 and icr <= 1.02
    assert abs(icr - vc) < 0.05


def test_victim_cache_registry_matches_standalone(n_instructions):
    for bench in ("gzip", "mcf"):
        standalone = run_victim_cache_baseline(
            bench, n_instructions=n_instructions
        )
        via_registry = run_experiment(
            ExperimentSpec(bench, "victim-cache", n_instructions=n_instructions)
        )
        assert via_registry.cycles == standalone.cycles, bench
        assert via_registry.miss_rate == standalone.miss_rate, bench
