"""Figure 5 — vertical (N/2) vs horizontal (0) replication."""

from conftest import run_once

from repro.harness.figures import figure_05


def test_fig05(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_05(n=n_instructions))
    record(result)
    averages = result.averages()
    # Paper: "little difference between these schemes".
    assert abs(averages["vertical_N/2"] - averages["horizontal_0"]) < 0.25
