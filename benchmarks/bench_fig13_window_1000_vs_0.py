"""Figure 13 — ability and loads-with-replica, window 1000 vs 0."""

from conftest import run_once

from repro.harness.figures import figure_13


def test_fig13(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_13(n=n_instructions))
    record(result)
    averages = result.averages()
    # Paper: loads-with-replica is not significantly different between the
    # two windows (the relaxed run also switches to dead-first, which
    # recovers placement options).
    assert abs(averages["lwr_w1000"] - averages["lwr_w0"]) < 0.25
