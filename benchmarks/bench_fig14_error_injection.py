"""Figure 14 — unrecoverable loads under random fault injection (vortex)."""

from conftest import run_once

from repro.harness.figures import figure_14


def test_fig14(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_14(n=n_instructions))
    record(result)
    for rate, base_p, icr_p, icr_ecc, base_ecc in result.rows:
        # Paper: "the ICR schemes exhibit much better error resilient
        # behavior compared to BaseP"; ECC on the unreplicated remainder
        # is stronger still.
        assert icr_p <= base_p + 1e-9
        assert icr_ecc <= icr_p + 1e-9
    # At the highest rate the separation must be strict.
    top = result.rows[0]
    assert top[2] < top[1]
