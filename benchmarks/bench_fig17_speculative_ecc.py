"""Figure 17 — speculative-load BaseECC vs performance-mode ICR-P-PS(S)."""

from conftest import run_once

from repro.harness.figures import figure_17


def test_fig17(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_17(n=n_instructions))
    record(result)
    averages = result.averages()
    # Paper: ICR still wins cycles slightly (replica fills vs plain misses)
    # and the energy gap grows when parity gets relatively cheaper.
    assert averages["spec_cycles_ratio"] >= 0.97
    assert averages["energy_ratio_10_30"] > averages["energy_ratio_15_30"]
