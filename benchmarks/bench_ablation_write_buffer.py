"""Ablation — write-buffer depth for the write-through dL1 (Section 5.8)."""

from conftest import run_once

from repro.harness.figures import ablation_write_buffer


def test_ablation_write_buffer(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_write_buffer(n=n_instructions))
    record(result)
    stalls = result.column("stall_cycles")
    # Deeper buffers stall (weakly) less.
    assert stalls[0] >= stalls[-1]
