"""Figure 10 — replication ability / loads-with-replica vs decay window."""

from conftest import run_once

from repro.harness.figures import figure_10


def test_fig10(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_10(n=n_instructions))
    record(result)
    ability = result.column("replication_ability")
    lwr = result.column("loads_with_replica")
    # Paper: "the replication ability reduces with an increasing decay
    # window size ... the corresponding effect on the loads with replicas
    # is negligible."
    assert ability[-1] <= ability[0]
    assert abs(lwr[0] - lwr[-1]) < 0.25
