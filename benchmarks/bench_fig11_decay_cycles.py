"""Figure 11 — normalized execution cycles vs decay window (vpr)."""

from conftest import run_once

from repro.harness.figures import figure_11


def test_fig11(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_11(n=n_instructions))
    record(result)
    icr_p = result.column("ICR-P-PS(S)")
    # Paper: larger windows displace fewer live blocks -> cheaper.
    assert icr_p[-1] <= icr_p[0] + 0.01
    # "less than 4% for 1000 cycle window size".
    w1000_index = result.column("decay_window").index(1000)
    assert icr_p[w1000_index] < 1.06
