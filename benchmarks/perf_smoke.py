"""Perf-smoke harness: substrate throughput, tracked across PRs.

Measures the simulator's hot-path throughput with plain ``time.perf_counter``
loops (no pytest-benchmark dependency) and appends one labelled entry to
``benchmarks/results/BENCH_simulator.json``.  The JSON keeps the whole
*trajectory* — one entry per measurement run — so a perf PR can point at its
before/after pair and CI can watch for regressions without failing builds.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py --label after-tag-index
    PYTHONPATH=src python benchmarks/perf_smoke.py --check        # print last two

Metrics (higher is better):

``plain_cache_accesses_per_sec``
    ``SetAssociativeCache.access`` micro-loop (the L2/iL1 demand path).
``icr_cache_accesses_per_sec``
    ``ICRCache.access`` micro-loop on the headline ICR-P-PS(S) scheme —
    the same workload as ``test_icr_cache_access_throughput``.
``base_cache_accesses_per_sec``
    ``ICRCache.access`` micro-loop on BaseP (exercises the fast path).
``end_to_end_sims_per_sec``
    Whole simulations per second through ``ParallelRunner`` (jobs=1, result
    cache disabled, traces pre-generated): pipeline + hierarchy + dL1.
``end_to_end_sims_per_sec_array``
    The same grid under ``backend="array"`` (the struct-of-arrays kernel),
    measured warm — trace memo, prestage memo and the native phase-2
    kernel are primed by an untimed pass.  The ratio against the object
    number above is the array kernel's end-to-end speedup.
``cold_sweep_sims_per_sec``
    Same grid but with cold in-process trace memo (includes trace
    generation / trace-cache time, the sweep-level view).
``trace_generation_instr_per_sec``
    Raw ``WorkloadGenerator.generate`` throughput.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_simulator.json"


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock of *repeats* calls (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _micro_addresses(seed: int, n: int = 20_000):
    import random

    rng = random.Random(seed)
    hot = [rng.randrange(1 << 20) & ~7 for _ in range(128)]
    return [
        rng.choice(hot) if rng.random() < 0.8 else rng.randrange(1 << 22) & ~7
        for _ in range(n)
    ]


def bench_plain_cache(repeats: int) -> float:
    import random

    from repro.cache.set_assoc import CacheGeometry, SetAssociativeCache

    rng = random.Random(1)
    addrs = [rng.randrange(1 << 22) & ~7 for _ in range(20_000)]

    def run():
        cache = SetAssociativeCache(CacheGeometry(16 * 1024, 4, 64))
        for now, addr in enumerate(addrs):
            cache.access(addr, now & 3 == 0, now)

    return len(addrs) / _best_of(run, repeats)


def bench_icr_cache(scheme: str, repeats: int) -> float:
    from repro.core.schemes import make_cache

    addrs = _micro_addresses(seed=2)

    def run():
        cache = make_cache(scheme, decay_window=0)
        for now, addr in enumerate(addrs):
            cache.access(addr, now & 3 == 0, now)

    return len(addrs) / _best_of(run, repeats)


def bench_end_to_end(repeats: int, *, cold: bool, backend: str = "object") -> float:
    """Simulations per second through the jobs=1, cache-disabled runner."""
    from repro.harness.runner import Job, ParallelRunner
    from repro.workloads.generator import trace_for
    from repro.workloads.spec2000 import profile_for

    n_instructions = 30_000
    grid = [
        Job(bench, scheme, dict(n_instructions=n_instructions, backend=backend))
        for bench in ("gzip", "mcf")
        for scheme in ("BaseP", "ICR-P-PS(S)")
    ]
    if not cold:
        for bench in ("gzip", "mcf"):
            trace_for(profile_for(bench), n_instructions)
        if backend == "array":
            # Prime the one-time costs the warm metric must not pay:
            # phase-1 prestage memo and the native phase-2 build.
            ParallelRunner(jobs=1, cache=None).run(list(grid))

    def run():
        if cold:
            trace_for.cache_clear()
        ParallelRunner(jobs=1, cache=None).run(list(grid))

    return len(grid) / _best_of(run, repeats)


def bench_trace_generation(repeats: int) -> float:
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.spec2000 import profile_for

    n = 30_000
    generator = WorkloadGenerator(profile_for("gcc"))
    return n / _best_of(lambda: generator.generate(n), repeats)


def collect_metrics(repeats: int) -> dict[str, float]:
    return {
        "plain_cache_accesses_per_sec": bench_plain_cache(repeats),
        "icr_cache_accesses_per_sec": bench_icr_cache("ICR-P-PS(S)", repeats),
        "base_cache_accesses_per_sec": bench_icr_cache("BaseP", repeats),
        "end_to_end_sims_per_sec": bench_end_to_end(repeats, cold=False),
        "end_to_end_sims_per_sec_array": bench_end_to_end(
            repeats, cold=False, backend="array"
        ),
        "cold_sweep_sims_per_sec": bench_end_to_end(repeats, cold=True),
        "trace_generation_instr_per_sec": bench_trace_generation(repeats),
    }


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                cwd=Path(__file__).parent,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except Exception:
        return "unknown"


def load_trajectory() -> dict:
    if BENCH_JSON.exists():
        try:
            return json.loads(BENCH_JSON.read_text())
        except ValueError:
            pass
    return {"format": 1, "entries": []}


def _backend_info() -> dict[str, str]:
    """Which simulation kernels this entry measured, and their flavor."""
    from repro.core import _native

    return {
        "object": "pure-python",
        "array": (
            "native-phase2" if _native.available() else "python-phase2"
        ),
    }


def append_entry(label: str, metrics: dict[str, float]) -> dict:
    trajectory = load_trajectory()
    entry = {
        "label": label,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "backends": _backend_info(),
        "metrics": {k: round(v, 1) for k, v in metrics.items()},
    }
    # Re-running a label overwrites its entry (keeps the trajectory one
    # point per milestone instead of accumulating duplicates).
    entries = trajectory["entries"]
    entries[:] = [e for e in entries if e.get("label") != label]
    entries.append(entry)
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n")
    return entry


def print_comparison(trajectory: dict, stream=sys.stdout) -> None:
    entries = trajectory.get("entries", [])
    if not entries:
        print("no entries recorded", file=stream)
        return
    last = entries[-1]
    prev = entries[-2] if len(entries) >= 2 else None
    print(f"latest: {last['label']} ({last['git_rev']})", file=stream)
    for name, value in last["metrics"].items():
        line = f"  {name:34s} {value:>14,.1f}"
        if prev and name in prev.get("metrics", {}):
            before = prev["metrics"][name]
            if before > 0:
                line += f"   ({value / before:.2f}x vs {prev['label']})"
        print(line, file=stream)


def check_within(
    trajectory: dict,
    fraction: float,
    metric: str = "end_to_end_sims_per_sec",
    stream=sys.stderr,
) -> bool:
    """Is the latest *metric* within *fraction* of the previous entry?

    Compares the trajectory's last entry against the one before it (the
    committed baseline when CI re-measures under a fixed label).  An
    *improvement* always passes; only a drop beyond ``fraction`` fails.
    With fewer than two entries there is nothing to compare — passes.
    """
    entries = trajectory.get("entries", [])
    if len(entries) < 2:
        print(f"assert-within: no baseline entry for {metric}", file=stream)
        return True
    current = entries[-1].get("metrics", {}).get(metric)
    baseline = entries[-2].get("metrics", {}).get(metric)
    if not current or not baseline:
        print(f"assert-within: metric {metric!r} missing", file=stream)
        return True
    ratio = current / baseline
    ok = ratio >= 1.0 - fraction
    print(
        f"assert-within: {metric} {current:,.1f} vs baseline "
        f"{baseline:,.1f} ({entries[-2]['label']}) = {ratio:.3f}x "
        f"(floor {1.0 - fraction:.2f}x) -> {'OK' if ok else 'REGRESSION'}",
        file=stream,
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="smoke", help="entry label")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--check",
        action="store_true",
        help="only print the recorded trajectory (no measurement)",
    )
    parser.add_argument(
        "--assert-within",
        type=float,
        default=None,
        metavar="FRAC",
        help="exit 1 if end_to_end_sims_per_sec dropped more than FRAC "
        "(e.g. 0.05) below the previous trajectory entry",
    )
    args = parser.parse_args(argv)
    if args.check:
        print_comparison(load_trajectory())
        return 0
    metrics = collect_metrics(args.repeats)
    append_entry(args.label, metrics)
    trajectory = load_trajectory()
    print_comparison(trajectory)
    if args.assert_within is not None:
        if not check_within(trajectory, args.assert_within):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
