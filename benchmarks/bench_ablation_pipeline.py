"""Ablation — where the ECC latency penalty comes from (pipeline params).

Not a paper figure, but the design discussion of Section 1 ("it is
certainly not feasible to provide single cycle latencies for caches of
high-end processors") hinges on how much of a 2-cycle load the
out-of-order window can hide.  This bench sweeps the window parameters
and reports the BaseECC/BaseP cycle ratio at each point.
"""

from conftest import run_once

from repro.harness.figures import ablation_pipeline

from repro.cpu.pipeline import PipelineConfig
from repro.harness.experiment import MachineConfig, run_experiment
from repro.harness.spec import ExperimentSpec


def _ecc_ratio(n, **pipe_kwargs):
    machine = MachineConfig(pipeline=PipelineConfig(**pipe_kwargs))
    base = run_experiment(
        ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=n, machine=machine)
    )
    ecc = run_experiment(
        ExperimentSpec.from_kwargs("gzip", "BaseECC", n_instructions=n, machine=machine)
    )
    return ecc.cycles / base.cycles




def test_ablation_pipeline(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_pipeline(n=n_instructions))
    record(result)
    ratios = result.column("BaseECC/BaseP")
    # Every configuration pays something for ECC.
    assert all(r > 1.0 for r in ratios)
    # Pointer-style load chains serialize at the load latency, so *no*
    # window hides them — the absolute penalty is constant and the narrow,
    # throughput-bound machine shows the smallest *relative* ratio.
    assert ratios[0] <= ratios[1] + 0.02
    assert abs(ratios[-1] - ratios[1]) < 0.05
