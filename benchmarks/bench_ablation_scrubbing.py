"""Ablation — background scrubbing vs error accumulation (extension).

Scrubbing converts latent single-bit faults back into clean state before
a second strike can pair them into an uncorrectable double.  BaseECC
benefits most: accumulated doubles are its only loss mode.
"""

from conftest import run_once

from repro.harness.figures import ablation_scrubbing


RATE = 5e-2  # intense, to make accumulation visible in a short run




def test_ablation_scrubbing(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_scrubbing(n=n_instructions))
    record(result)
    for _, no_scrub, scrub_10k, scrub_2k in result.rows:
        assert scrub_2k <= no_scrub
        assert scrub_10k <= no_scrub + 1  # monotone up to one-event noise
