"""CI smoke test for the simulation job server.

Boots a real server on an ephemeral port, fires two identical specs
from concurrent clients, and checks the service contract end to end:

* exactly **one** simulation ran (the second submission deduped or hit
  the result store);
* both clients received results **byte-identical** to a direct
  in-process ``run_experiment(spec)``;
* a warm resubmission is answered from the read-through cache without
  the runner's ``simulated`` counter moving.

Exit code 0 on success, 1 with a diagnostic on any violation.  Run as::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading


def main() -> int:
    from repro.api import ExperimentSpec, run_experiment
    from repro.service import ServiceClient, ServiceConfig, ServiceThread

    spec = ExperimentSpec("gzip", "ICR-P-PS(S)", n_instructions=20_000)
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        config = ServiceConfig(port=0, workers=1, queue_dir=tmp)
        with ServiceThread(config) as st:
            results: list = [None, None]
            errors: list = []

            def submit(i: int) -> None:
                try:
                    client = ServiceClient(port=st.port)
                    results[i] = client.run(spec, timeout=300)
                except Exception as exc:
                    errors.append(f"client {i}: {exc!r}")

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)

            client = ServiceClient(port=st.port)
            telemetry = client.telemetry()
            resubmitted = client.submit(spec)
            after = client.telemetry()

        if errors:
            failures.extend(errors)
        direct = run_experiment(spec)
        for i, result in enumerate(results):
            if result is None:
                failures.append(f"client {i} got no result")
            elif result.to_dict() != direct.to_dict():
                failures.append(
                    f"client {i} result differs from direct run_experiment"
                )
        simulated = telemetry["runner"]["simulated"]
        if simulated != 1:
            failures.append(
                f"expected exactly 1 simulation for 2 identical concurrent "
                f"submissions, runner reports {simulated}"
            )
        if resubmitted["submission"] != "cached":
            failures.append(
                "warm resubmission was "
                f"{resubmitted['submission']!r}, expected 'cached'"
            )
        if after["runner"]["simulated"] != simulated:
            failures.append("warm resubmission touched the runner")

        summary = {
            "simulated": simulated,
            "submissions": after["submissions"],
            "dedup_hits": after["dedup_hits"],
            "cache_served": after["cache_served"],
            "store_hit_rate": after["store"]["hit_rate"],
            "byte_identical": not failures,
        }
        print(json.dumps(summary, indent=2))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
