"""Figure 9 — normalized execution cycles, all ten schemes, aggressive."""

from conftest import run_once

from repro.harness.figures import figure_09


def test_fig09(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_09(n=n_instructions))
    record(result)
    averages = result.averages()
    # Ordering claims of Section 5.2.
    assert averages["BaseP"] == 1.0
    assert averages["BaseECC"] > averages["ICR-P-PS(S)"]
    assert averages["ICR-ECC-PS(S)"] > averages["ICR-P-PS(S)"]
    assert averages["BaseECC"] > averages["ICR-ECC-PS(S)"]
    # PP schemes pay 2-cycle loads on replicated lines.
    assert averages["ICR-P-PP(S)"] > averages["ICR-P-PS(S)"]
    # The headline scheme stays within a few percent of BaseP.
    assert averages["ICR-P-PS(S)"] < 1.08
