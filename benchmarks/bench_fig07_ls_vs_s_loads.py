"""Figure 7 — loads with replica, LS vs S triggers."""

from conftest import run_once

from repro.harness.figures import figure_07


def test_fig07(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_07(n=n_instructions))
    record(result)
    averages = result.averages()
    # Paper: majority of read hits find replicas; LS replicates read-only
    # data that S cannot.
    assert averages["S"] > 0.5
    assert averages["LS"] >= averages["S"]
