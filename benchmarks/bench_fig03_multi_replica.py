"""Figure 3 — ability to create one vs two replicas."""

from conftest import run_once

from repro.harness.figures import figure_03


def test_fig03(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_03(n=n_instructions))
    record(result)
    for _, one, two in result.rows:
        # Creating both replicas can never be easier than creating one.
        assert two <= one + 1e-9
    # Paper: two copies achievable a modest fraction of the time (~12%).
    assert 0.0 < result.averages()["two_replicas"] < 0.6
