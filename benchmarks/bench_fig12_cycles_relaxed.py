"""Figure 12 — normalized cycles with the relaxed configuration."""

from conftest import run_once

from repro.harness.figures import figure_12


def test_fig12(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: figure_12(n=n_instructions))
    record(result)
    averages = result.averages()
    # Paper averages: BaseECC +30.9%, ICR-P-PS(S) +2.4%, ICR-ECC-PS(S)
    # +10.2% — we assert the ordering and the small-overhead claims.
    assert averages["BaseECC"] > averages["ICR-ECC-PS(S)"] > averages["ICR-P-PS(S)"]
    assert averages["ICR-P-PS(S)"] < 1.05
