"""Ablation — dL1 size/associativity sensitivity (Section 5.7)."""

from conftest import run_once

from repro.harness.figures import ablation_cache_params


def test_ablation_cache_params(benchmark, record, n_instructions):
    result = run_once(benchmark, lambda: ablation_cache_params(n=n_instructions))
    record(result)
    rows = {r[0]: r for r in result.rows}
    # Bigger caches miss less.
    assert rows["64KB/4way"][3] <= rows["8KB/4way"][3]
    # Paper: "the increase in the loads with replicas is not that
    # significant ... even in a small cache, we are replicating the data
    # that is really the most in demand."
    lwr = [r[2] for r in result.rows]
    assert max(lwr) - min(lwr) < 0.35
    assert min(lwr) > 0.4
