"""Tests for the generic sweep utilities."""

from types import SimpleNamespace

import pytest

from repro.harness.sweeps import SweepResult, decay_window_sweep, scheme_sweep, sweep


class TestSweep:
    def test_points_by_label(self):
        result = sweep(
            "decay_window",
            [("0", {"decay_window": 0}), ("1000", {"decay_window": 1000})],
            ["gzip"],
            n_instructions=5_000,
        )
        assert set(result.results) == {("gzip", "0"), ("gzip", "1000")}

    def test_metric_extraction(self):
        result = sweep(
            "w", [("0", {"decay_window": 0})], ["gzip"], n_instructions=5_000
        )
        metrics = result.metric("miss_rate")
        assert ("gzip", "0") in metrics
        assert 0.0 <= metrics[("gzip", "0")] <= 1.0

    def test_base_kwargs_merged(self):
        result = sweep(
            "w",
            [("x", {})],
            ["gzip"],
            n_instructions=5_000,
            base_kwargs={"decay_window": 1000},
        )
        # Runs without error; the base kwargs reached make_config.
        assert len(result.results) == 1

    def test_table_renders(self):
        result = sweep(
            "w", [("0", {"decay_window": 0})], ["gzip"], n_instructions=5_000
        )
        table = result.table(["miss_rate", "loads_with_replica"])
        assert "gzip" in table and "miss_rate" in table


class TestSweepResultProtocol:
    def _stub(self):
        result = SweepResult(parameter="w")
        result.results[("gzip", "0")] = SimpleNamespace(gain=-0.25, score=1.0)
        result.results[("gzip", "1000")] = SimpleNamespace(
            gain=float("nan"), score=12.5
        )
        return result

    def test_len(self):
        assert len(self._stub()) == 2
        assert len(SweepResult(parameter="w")) == 0

    def test_iter_yields_pairs_in_insertion_order(self):
        pairs = list(self._stub())
        assert [key for key, _ in pairs] == [("gzip", "0"), ("gzip", "1000")]
        assert pairs[0][1].score == 1.0

    def test_table_aligns_negative_and_nan(self):
        table = self._stub().table(["gain", "score"])
        lines = table.splitlines()
        # Every line is the same width: negative signs and NaN cells
        # must not shift the columns.
        assert len({len(line) for line in lines}) == 1
        # Numeric cells are right-justified within the "gain" column
        # (width 6 from "-0.250"), so "nan" is padded on the left.
        assert "-0.250" in table
        assert "   nan" in table
        assert " 1.000" in table and "12.500" in table


class TestSweepParallel:
    def test_parallel_sweep_matches_serial(self):
        points = [("0", {"decay_window": 0}), ("1000", {"decay_window": 1000})]
        serial = sweep("w", points, ["gzip"], n_instructions=5_000)
        parallel = sweep("w", points, ["gzip"], n_instructions=5_000, jobs=2)
        assert serial.results == parallel.results

    def test_sweep_accepts_injected_runner(self):
        from repro.harness.runner import ParallelRunner

        runner = ParallelRunner(jobs=1)
        result = sweep(
            "w", [("0", {"decay_window": 0})], ["gzip"],
            n_instructions=5_000, runner=runner,
        )
        assert len(result) == 1
        assert runner.stats.simulated == 1


class TestDecayWindowSweep:
    def test_labels_are_windows(self):
        result = decay_window_sweep(
            ["gzip"], windows=(0, 1000), n_instructions=5_000
        )
        labels = {label for _, label in result.results}
        assert labels == {"0", "1000"}


class TestSchemeSweep:
    def test_scheme_labels(self):
        result = scheme_sweep(
            ["gzip"], ["BaseP", "BaseECC"], n_instructions=5_000
        )
        assert ("gzip", "BaseP") in result.results
        assert ("gzip", "BaseECC") in result.results

    def test_per_scheme_kwargs(self):
        result = scheme_sweep(
            ["gzip"],
            ["BaseP", "ICR-P-PS(S)"],
            n_instructions=5_000,
            scheme_kwargs=lambda s: {} if s == "BaseP" else {"decay_window": 500},
        )
        assert len(result.results) == 2


class TestBarChart:
    def test_bar_chart_renders(self):
        from repro.harness.report import bar_chart

        chart = bar_chart(["a", "bb"], [1.0, 0.5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        from repro.harness.report import bar_chart

        assert bar_chart([], []) == ""

    def test_bar_chart_mismatched_rejected(self):
        from repro.harness.report import bar_chart

        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_zero_values(self):
        from repro.harness.report import bar_chart

        chart = bar_chart(["a"], [0.0])
        assert "#" not in chart
