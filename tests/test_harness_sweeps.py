"""Tests for the generic sweep utilities."""

import pytest

from repro.harness.sweeps import decay_window_sweep, scheme_sweep, sweep


class TestSweep:
    def test_points_by_label(self):
        result = sweep(
            "decay_window",
            [("0", {"decay_window": 0}), ("1000", {"decay_window": 1000})],
            ["gzip"],
            n_instructions=5_000,
        )
        assert set(result.results) == {("gzip", "0"), ("gzip", "1000")}

    def test_metric_extraction(self):
        result = sweep(
            "w", [("0", {"decay_window": 0})], ["gzip"], n_instructions=5_000
        )
        metrics = result.metric("miss_rate")
        assert ("gzip", "0") in metrics
        assert 0.0 <= metrics[("gzip", "0")] <= 1.0

    def test_base_kwargs_merged(self):
        result = sweep(
            "w",
            [("x", {})],
            ["gzip"],
            n_instructions=5_000,
            base_kwargs={"decay_window": 1000},
        )
        # Runs without error; the base kwargs reached make_config.
        assert len(result.results) == 1

    def test_table_renders(self):
        result = sweep(
            "w", [("0", {"decay_window": 0})], ["gzip"], n_instructions=5_000
        )
        table = result.table(["miss_rate", "loads_with_replica"])
        assert "gzip" in table and "miss_rate" in table


class TestDecayWindowSweep:
    def test_labels_are_windows(self):
        result = decay_window_sweep(
            ["gzip"], windows=(0, 1000), n_instructions=5_000
        )
        labels = {label for _, label in result.results}
        assert labels == {"0", "1000"}


class TestSchemeSweep:
    def test_scheme_labels(self):
        result = scheme_sweep(
            ["gzip"], ["BaseP", "BaseECC"], n_instructions=5_000
        )
        assert ("gzip", "BaseP") in result.results
        assert ("gzip", "BaseECC") in result.results

    def test_per_scheme_kwargs(self):
        result = scheme_sweep(
            ["gzip"],
            ["BaseP", "ICR-P-PS(S)"],
            n_instructions=5_000,
            scheme_kwargs=lambda s: {} if s == "BaseP" else {"decay_window": 500},
        )
        assert len(result.results) == 2


class TestBarChart:
    def test_bar_chart_renders(self):
        from repro.harness.report import bar_chart

        chart = bar_chart(["a", "bb"], [1.0, 0.5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        from repro.harness.report import bar_chart

        assert bar_chart([], []) == ""

    def test_bar_chart_mismatched_rejected(self):
        from repro.harness.report import bar_chart

        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_zero_values(self):
        from repro.harness.report import bar_chart

        chart = bar_chart(["a"], [0.0])
        assert "#" not in chart
