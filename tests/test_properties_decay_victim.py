"""Hypothesis properties for the decay predictor and victim selection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.block import CacheBlock
from repro.core.config import VictimPolicy
from repro.core.decay import SATURATION_TICKS, DeadBlockPredictor
from repro.core.victim import find_replica_victim


class TestDecayProperties:
    @given(
        window=st.integers(min_value=1, max_value=100_000),
        last=st.integers(min_value=0, max_value=10**7),
        gap=st.integers(min_value=0, max_value=10**7),
    )
    @settings(max_examples=200)
    def test_counter_monotone_in_time(self, window, last, gap):
        predictor = DeadBlockPredictor(window)
        block = CacheBlock()
        block.fill(0x1, last)
        early = predictor.counter_value(block, last + gap)
        late = predictor.counter_value(block, last + gap + window)
        assert late >= early
        assert 0 <= early <= SATURATION_TICKS

    @given(
        window=st.integers(min_value=1, max_value=100_000),
        last=st.integers(min_value=0, max_value=10**7),
    )
    @settings(max_examples=200)
    def test_dead_no_later_than_window(self, window, last):
        """Aligned ticks can only make death *earlier*, never later."""
        predictor = DeadBlockPredictor(window)
        block = CacheBlock()
        block.fill(0x1, last)
        # Saturation needs 4 ticks; for windows < 4 cycles the 1-cycle
        # tick granularity dominates, hence the max() in the bound.
        bound = last + SATURATION_TICKS * predictor.tick_period + predictor.tick_period
        assert predictor.is_dead(
            block, max(bound, last + window + predictor.tick_period)
        )

    @given(
        window=st.integers(min_value=8, max_value=100_000),
        last=st.integers(min_value=0, max_value=10**7),
    )
    @settings(max_examples=200)
    def test_alive_immediately_after_access(self, window, last):
        predictor = DeadBlockPredictor(window)
        block = CacheBlock()
        block.fill(0x1, last)
        assert not predictor.is_dead(block, last)


def _random_set(draw_spec):
    blocks = []
    for addr, valid, replica, dead_stamp, lru in draw_spec:
        b = CacheBlock()
        if valid:
            b.fill(addr, dead_stamp)
            b.is_replica = replica
        b.lru_stamp = lru
        blocks.append(b)
    return blocks


SET_SPECS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=50),  # addr
        st.booleans(),  # valid
        st.booleans(),  # replica
        st.integers(min_value=0, max_value=1000),  # last access
        st.integers(min_value=0, max_value=100),  # lru stamp
    ),
    min_size=1,
    max_size=8,
)


class TestVictimProperties:
    @given(spec=SET_SPECS, policy=st.sampled_from(list(VictimPolicy)))
    @settings(max_examples=300)
    def test_victim_is_always_legal(self, spec, policy):
        """Whatever comes back respects the policy's category rules."""
        predictor = DeadBlockPredictor(500)
        now = 2000  # far enough that last_access <= 1000 is dead
        ways = _random_set(spec)
        victim = find_replica_victim(ways, policy, predictor, now)
        if victim is None:
            return
        assert victim.valid  # invalid frames are excluded by default
        if policy is VictimPolicy.DEAD_ONLY:
            assert not victim.is_replica
            assert predictor.is_dead(victim, now)
        elif policy is VictimPolicy.REPLICA_ONLY:
            assert victim.is_replica
        else:
            assert victim.is_replica or predictor.is_dead(victim, now)

    @given(spec=SET_SPECS)
    @settings(max_examples=200)
    def test_dead_first_and_replica_first_agree_on_feasibility(self, spec):
        """Both fallback policies succeed or fail together."""
        predictor = DeadBlockPredictor(500)
        ways_a = _random_set(spec)
        ways_b = _random_set(spec)
        a = find_replica_victim(ways_a, VictimPolicy.DEAD_FIRST, predictor, 2000)
        b = find_replica_victim(ways_b, VictimPolicy.REPLICA_FIRST, predictor, 2000)
        assert (a is None) == (b is None)

    @given(spec=SET_SPECS, policy=st.sampled_from(list(VictimPolicy)))
    @settings(max_examples=200)
    def test_excluded_block_never_chosen(self, spec, policy):
        predictor = DeadBlockPredictor(0)
        ways = _random_set(spec)
        protected = ways[0]
        victim = find_replica_victim(
            ways, policy, predictor, 2000, exclude_block=protected
        )
        assert victim is not protected
