"""The pluggable replica-placement layer (repro.core.placement).

Covers the policy objects themselves (spec validation, ring windows,
distance resolution), the paper-pin equivalence — an identity-hash ring
with N=1 places replicas exactly where the paper's distance walk does —
and the end-to-end plumbing: scheme knobs, CLI, campaign, sweep, and the
HTTP service all accept ring placement.
"""

import pytest

from repro.core.config import ICRConfig, ReplicationTrigger
from repro.core.placement import (
    DistanceWalk,
    HashRing,
    PlacementSpec,
    PowerOfTwoMultiAttempt,
    build_placement,
    mix64,
)
from repro.core.schemes import make_cache, make_config
from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec


class TestPlacementSpec:
    def test_defaults_are_the_distance_walk(self):
        spec = PlacementSpec()
        assert spec.kind == "distance"
        assert spec.replication_factor == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "nope"},
            {"replication_factor": 0},
            {"virtual_nodes": 0},
            {"attempts": 0},
            {"hash_mode": "sha"},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PlacementSpec(**kwargs)

    def test_base_schemes_reject_placement(self):
        with pytest.raises(ValueError, match="base schemes"):
            ICRConfig(
                name="bad",
                trigger=ReplicationTrigger.NONE,
                placement=PlacementSpec(kind="ring"),
            )
        with pytest.raises(ValueError):
            make_config("BaseP", placement="ring")


class TestDistanceWalk:
    def test_built_when_placement_is_none(self):
        config = make_config("ICR-P-PS(S)")
        policy = build_placement(config)
        assert isinstance(policy, DistanceWalk)
        assert policy.home_pure
        assert policy.distances == config.resolved_distances()

    def test_power2_is_the_section_55_sequence(self):
        policy = build_placement(
            make_config("ICR-P-PS(S)", placement="power2", ring_attempts=4)
        )
        assert isinstance(policy, PowerOfTwoMultiAttempt)
        n = make_config("ICR-P-PS(S)").geometry.n_sets
        assert policy.distances[0] == n // 2
        assert len(policy.distances) == 4


class TestHashRing:
    def test_window_excludes_home_and_has_no_duplicates(self):
        ring = HashRing(64, replication_factor=3, virtual_nodes=8)
        for addr in range(0, 64 * 64, 7):
            window, pos_map, walks = ring.lookup(addr)
            home = addr & 63
            assert home not in window
            assert len(set(window)) == len(window) == ring.window_len
            assert pos_map == {s: i for i, s in enumerate(window)}

    def test_replica_walks_slide_over_the_window(self):
        ring = HashRing(64, replication_factor=3, attempts=4)
        window, _, walks = ring.lookup(12345)
        assert len(walks) == 3
        for i, walk in enumerate(walks):
            assert walk == window[i : i + 4]

    def test_preferred_sets_disjoint_across_replicas(self):
        ring = HashRing(64, replication_factor=3, attempts=4)
        _, _, walks = ring.lookup(999)
        preferred = [w[0] for w in walks]
        assert len(set(preferred)) == 3

    def test_lookup_is_memoized(self):
        ring = HashRing(64)
        assert ring.lookup(42) is ring.lookup(42)

    def test_identity_mode_is_the_successor_walk(self):
        ring = HashRing(
            64, replication_factor=1, virtual_nodes=1,
            attempts=3, hash_mode="identity",
        )
        for addr in (0, 5, 63, 64 + 7):
            home = addr & 63
            window, _, walks = ring.lookup(addr)
            assert window == tuple((home + d) % 64 for d in (1, 2, 3))
            assert walks == (window,)

    def test_consistent_hashing_property(self):
        """Doubling the sets moves only a fraction of first choices."""
        small = HashRing(64, virtual_nodes=8)
        large = HashRing(128, virtual_nodes=8)
        addrs = range(0, 200_000, 37)
        moved = sum(
            1
            for a in addrs
            if small.lookup(a)[0][0] != large.lookup(a)[0][0]
        )
        total = len(list(addrs))
        # A full rehash would move ~63/64 of lines (≈98%); the ring must
        # do structurally better.  (The home-set exclusion and the set
        # index changing with n_sets add churn beyond the ideal 1/2.)
        assert moved / total < 0.9

    def test_mix64_is_deterministic_and_64bit(self):
        assert mix64(0x1234) == mix64(0x1234)
        assert 0 <= mix64(2**80) < 2**64
        assert mix64(1) != mix64(2)

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            HashRing(1)


class TestPaperPin:
    """ICR-Ring-1 in identity mode IS the paper's distance walk."""

    @pytest.mark.parametrize("attempts", [1, 3])
    def test_ring_n1_identity_equals_distance_walk(self, attempts):
        distances = tuple(range(1, attempts + 1))
        ring_spec = ExperimentSpec.from_kwargs(
            "gzip",
            "ICR-Ring-1",
            n_instructions=10_000,
            virtual_nodes=1,
            ring_hash="identity",
            ring_attempts=attempts,
        )
        walk_spec = ExperimentSpec.from_kwargs(
            "gzip",
            "ICR-P-PS(S)",
            n_instructions=10_000,
            replica_distances=distances,
        )
        ring = run_experiment(ring_spec).to_dict()
        walk = run_experiment(walk_spec).to_dict()
        # Identical placement ⇒ identical everything but the label.
        assert ring.pop("scheme") == "ICR-Ring-1"
        assert walk.pop("scheme") == "ICR-P-PS(S)"
        assert ring == walk


class TestRingEndToEnd:
    def test_ring_scheme_runs_and_replicates(self):
        result = run_experiment(
            ExperimentSpec("gzip", "ICR-Ring-2", n_instructions=10_000)
        )
        assert result.dl1["replication_successes"] > 0
        # Factor 2: the extra replicas land in the second-replica counters.
        assert result.dl1["second_replica_attempts"] > 0
        assert result.loads_with_replica > 0

    def test_factor_scales_replicas_placed(self):
        def dl1(scheme):
            spec = ExperimentSpec(
                "gzip",
                scheme,
                n_instructions=10_000,
                scheme_kwargs=(("decay_window", 0),),
            )
            return run_experiment(spec).dl1

        one, three = dl1("ICR-Ring-1"), dl1("ICR-Ring-3")
        # N=1 never attempts extra replicas; N=3 attempts two per line.
        assert one["second_replica_attempts"] == 0
        assert three["second_replica_attempts"] > three["replication_attempts"]
        assert three["second_replica_successes"] > 0

    def test_knobs_change_the_cache_key(self):
        base = ExperimentSpec.from_kwargs("gzip", "ICR-Ring-2")
        knobbed = ExperimentSpec.from_kwargs(
            "gzip", "ICR-Ring-2", virtual_nodes=2
        )
        assert base.key() != knobbed.key()

    def test_cli_run_accepts_placement_flags(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(
            [
                "run", "gzip", "ICR-P-PS(S)",
                "--instructions", "5000",
                "--placement", "ring",
                "--replication-factor", "2",
                "--virtual-nodes", "4",
                "--ring-attempts", "3",
            ]
        )
        assert code == 0
        assert "loads w/ replica" in capsys.readouterr().out

    def test_campaign_runs_ring_scheme(self, tmp_path, monkeypatch):
        from repro.harness.campaign import CampaignConfig, run_campaign

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = run_campaign(
            CampaignConfig(
                benchmarks=("gzip",),
                schemes=("ICR-Ring-2",),
                trials=3,
                min_trials=3,
                n_instructions=8_000,
            )
        )
        (outcome,) = report.outcomes
        assert outcome.cell.scheme == "ICR-Ring-2"
        assert len(outcome.ok_records()) == 3

    def test_service_runs_ring_spec(self, tmp_path, monkeypatch):
        from repro.service import ServiceClient, ServiceConfig, ServiceThread

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = ExperimentSpec.from_kwargs(
            "gzip", "ICR-Ring-2", n_instructions=5000, virtual_nodes=4
        )
        config = ServiceConfig(
            port=0, workers=1, queue_dir=tmp_path / "queue"
        )
        with ServiceThread(config) as st:
            served = ServiceClient(port=st.port).run(spec, timeout=120)
        assert served.to_dict() == run_experiment(spec).to_dict()

    def test_replication_factor_sweep(self, tmp_path, monkeypatch):
        from repro.harness.sweeps import replication_factor_sweep

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        result = replication_factor_sweep(
            ["gzip"], factors=(1, 2), n_instructions=6_000
        )
        assert set(result.results) == {("gzip", "1"), ("gzip", "2")}
        for r in result.results.values():
            assert r.dl1["replication_attempts"] > 0


class TestSilentStoreSuppression:
    def test_rate_tracks_the_configured_fraction(self):
        cache = make_cache("BaseECC-SW", silent_store_fraction=0.5)
        for now in range(4000):
            cache.access(0, True, now)  # same line: all store hits
        stats = cache.stats
        assert stats.silent_stores > 0
        rate = stats.silent_stores / stats.store_hits
        assert 0.40 < rate < 0.60

    def test_silent_hits_skip_the_ecc_write(self):
        noisy = run_experiment(
            ExperimentSpec("gzip", "BaseECC", n_instructions=10_000)
        )
        silent = run_experiment(
            ExperimentSpec("gzip", "BaseECC-SW", n_instructions=10_000)
        )
        assert silent.dl1["silent_stores"] > 0
        assert noisy.dl1["silent_stores"] == 0
        # Every silent store saves an array write + ECC generate and
        # leaves clean lines clean (fewer writebacks).
        assert silent.dl1["array_writes"] < noisy.dl1["array_writes"]
        assert silent.dl1["ecc_generates"] < noisy.dl1["ecc_generates"]
        assert silent.dl1["writebacks"] <= noisy.dl1["writebacks"]

    def test_fraction_zero_is_plain_baseecc_traffic(self):
        base = run_experiment(
            ExperimentSpec("gzip", "BaseECC", n_instructions=8_000)
        ).to_dict()
        off = run_experiment(
            ExperimentSpec.from_kwargs(
                "gzip",
                "BaseECC-SW",
                n_instructions=8_000,
                silent_store_fraction=0.0,
            )
        ).to_dict()
        assert base.pop("scheme") == "BaseECC"
        assert off.pop("scheme") == "BaseECC-SW"
        assert base == off

    def test_suppression_needs_a_non_replicating_scheme(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(
                make_config("ICR-P-PS(S)"), silent_store_suppression=True
            )

    def test_fraction_must_be_a_probability(self):
        with pytest.raises(ValueError):
            make_config("BaseECC-SW", silent_store_fraction=1.5)
