"""Tests for the background scrubber extension."""

import pytest

from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config
from repro.errors.injector import FaultInjector
from repro.errors.models import FaultSite
from repro.errors.scrubber import Scrubber
from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec


def make_cache(scheme="BaseECC", **kwargs):
    kwargs.setdefault("track_data", True)
    kwargs.setdefault("replicate_into_invalid", True)
    kwargs.setdefault("decay_window", 0)
    return ICRCache(make_config(scheme, **kwargs))


def site_of(cache, byte_addr, word=0, bit=0):
    block_addr = cache.geometry.block_addr(byte_addr)
    set_index = cache.geometry.set_index(block_addr)
    for way, block in enumerate(cache.sets[set_index]):
        if block.valid and block.block_addr == block_addr and not block.is_replica:
            return FaultSite(set_index, way, word, bit)
    raise AssertionError("block not resident")


class TestConstruction:
    def test_requires_track_data(self):
        cache = ICRCache(make_config("BaseECC"))
        with pytest.raises(ValueError):
            Scrubber(cache, period=100)

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            Scrubber(make_cache(), period=0)


class TestRepairPaths:
    def test_ecc_single_bit_scrubbed(self):
        cache = make_cache("BaseECC")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        scrubber = Scrubber(cache, period=100)
        injector.force_fault(site_of(cache, 0, word=5, bit=3))
        cache.access(64 * 64, False, 150)  # triggers the due scrub pass
        assert scrubber.stats.passes == 1
        assert scrubber.stats.corrected_ecc == 1
        # The latent fault is gone: loading word 5 sees no error.
        outcome = cache.probe(0).words[5].read()
        assert not outcome.error_detected

    def test_scrub_prevents_double_accumulation(self):
        """Two faults separated by a scrub pass never pair into a double."""
        cache = make_cache("BaseECC")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        Scrubber(cache, period=100)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        cache.access(64 * 64, False, 150)  # scrub repairs fault 1
        injector.force_fault(site_of(cache, 0, word=0, bit=9))
        cache.access(0, False, 160)  # single-bit -> corrected on load
        assert cache.stats.load_errors_unrecoverable == 0

    def test_without_scrub_doubles_accumulate(self):
        cache = make_cache("BaseECC")
        cache.access(0, True, 0)
        injector = FaultInjector(cache, 0.0)
        injector.force_fault(site_of(cache, 0, word=0, bit=3))
        injector.force_fault(site_of(cache, 0, word=0, bit=9))
        cache.access(0, False, 160)
        assert cache.stats.load_errors_unrecoverable == 1

    def test_parity_line_repaired_from_replica(self):
        cache = make_cache("ICR-P-PS(S)")
        cache.access(0, True, 0)  # dirty + replicated
        injector = FaultInjector(cache, 0.0)
        scrubber = Scrubber(cache, period=100)
        injector.force_fault(site_of(cache, 0, word=2, bit=1))
        cache.access(64 * 64, False, 150)
        assert scrubber.stats.repaired_from_replica == 1

    def test_clean_parity_line_refetched(self):
        cache = make_cache("BaseP")
        cache.access(0, False, 0)  # clean
        injector = FaultInjector(cache, 0.0)
        scrubber = Scrubber(cache, period=100)
        injector.force_fault(site_of(cache, 0, word=2, bit=1))
        cache.access(64 * 64, False, 150)
        assert scrubber.stats.repaired_from_l2 == 1

    def test_dirty_parity_unreplicated_reported(self):
        cache = make_cache("BaseP")
        cache.access(0, True, 0)  # dirty
        injector = FaultInjector(cache, 0.0)
        scrubber = Scrubber(cache, period=100)
        injector.force_fault(site_of(cache, 0, word=2, bit=1))
        cache.access(64 * 64, False, 150)
        assert scrubber.stats.uncorrectable_found == 1


class TestEndToEnd:
    def test_scrubbing_reduces_baseecc_losses_at_high_rates(self):
        kwargs = dict(n_instructions=40_000, error_rate=5e-2, error_seed=3)
        plain = run_experiment(
            ExperimentSpec.from_kwargs("vortex", "BaseECC", **kwargs)
        )
        scrubbed = run_experiment(
            ExperimentSpec.from_kwargs(
                "vortex", "BaseECC", scrub_period=2_000, **kwargs
            )
        )
        assert (
            scrubbed.dl1["load_errors_unrecoverable"]
            <= plain.dl1["load_errors_unrecoverable"]
        )

    def test_period_controls_pass_count(self):
        cache = make_cache()
        cache.access(0, True, 0)
        scrubber = Scrubber(cache, period=10)
        cache.access(0, False, 105)
        assert scrubber.stats.passes == 10
