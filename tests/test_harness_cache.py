"""Tests for the content-addressed result cache."""

import json

import pytest

from repro.harness.cache import (
    ReadThroughCache,
    ResultCache,
    UncacheableJobError,
    code_version,
    job_key,
    result_from_dict,
    result_to_dict,
)
from repro.harness.experiment import MachineConfig, run_experiment
from repro.harness.runner import Job, ParallelRunner
from repro.harness.spec import ExperimentSpec
from repro.workloads.spec2000 import profile_for

N = 4_000


class TestResultRoundTrip:
    def test_plain_result(self):
        result = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "ICR-P-PS(S)", n_instructions=N)
        )
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored == result
        assert restored.cpi == result.cpi  # derived properties survive too

    def test_error_injection_result(self):
        result = run_experiment(ExperimentSpec.from_kwargs(
            "vortex", "BaseP", n_instructions=N, error_rate=0.01, error_seed=9
        ))
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored == result
        assert restored.dl1["errors_injected"] == result.dl1["errors_injected"]

    def test_vulnerability_report_survives(self):
        result = run_experiment(ExperimentSpec.from_kwargs(
            "gzip", "BaseP", n_instructions=N, measure_vulnerability=True
        ))
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored.vulnerability == result.vulnerability
        assert (
            restored.vulnerability.vulnerable_fraction
            == result.vulnerability.vulnerable_fraction
        )

    def test_icache_counters_survive(self):
        result = run_experiment(ExperimentSpec.from_kwargs(
            "gzip", "BaseP", n_instructions=N, icache_error_rate=1e-3
        ))
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored.l1i == result.l1i

    def test_unknown_format_rejected(self):
        result = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=N)
        )
        data = result_to_dict(result)
        data["format"] = 999
        with pytest.raises(ValueError):
            result_from_dict(data)


class TestJobKey:
    BASE = ("gzip", "ICR-P-PS(S)", {"n_instructions": N})

    def _key(self, benchmark="gzip", scheme="ICR-P-PS(S)", **kwargs):
        kwargs.setdefault("n_instructions", N)
        return job_key(benchmark, scheme, kwargs)

    def test_stable_across_calls(self):
        assert self._key() == self._key()

    def test_sensitive_to_scheme(self):
        assert self._key(scheme="BaseP") != self._key()

    def test_sensitive_to_scheme_kwargs(self):
        assert self._key(decay_window=1000) != self._key()
        assert self._key(replica_distances=("N/4",)) != self._key()

    def test_sensitive_to_trace_seed(self):
        assert self._key(trace_seed=1) != self._key()

    def test_sensitive_to_instruction_count(self):
        assert self._key(n_instructions=N + 1) != self._key()

    def test_sensitive_to_error_parameters(self):
        base = self._key()
        assert self._key(error_rate=0.01) != base
        assert self._key(error_rate=0.01, error_seed=1) != self._key(
            error_rate=0.01
        )
        assert self._key(error_rate=0.01, error_model="column") != self._key(
            error_rate=0.01
        )

    def test_explicit_defaults_share_the_omitted_key(self):
        # run_experiment(error_rate=0.0) and run_experiment() are the same
        # simulation, so they must share one cache entry.
        explicit = self._key(
            error_rate=0.0,
            error_model="random",
            error_seed=12345,
            trace_seed=0,
            warmup_instructions=0,
            machine=None,
        )
        assert explicit == self._key()
        assert self._key(machine=MachineConfig()) == self._key()

    def test_profile_object_matches_benchmark_name(self):
        assert job_key(
            profile_for("gzip"), "BaseP", {"n_instructions": N}
        ) == job_key("gzip", "BaseP", {"n_instructions": N})

    def test_code_version_is_a_stable_digest(self):
        version = code_version()
        assert len(version) == 16
        assert version == code_version()
        int(version, 16)  # hex digest

    def test_unrepresentable_values_rejected(self):
        with pytest.raises(UncacheableJobError):
            job_key("gzip", "BaseP", {"victim_picker": lambda b: b})
        with pytest.raises(UncacheableJobError):
            job_key("gzip", "BaseP", {"weight": float("nan")})


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=N)
        )
        key = job_key("gzip", "BaseP", {"n_instructions": N})
        cache.put(key, result)
        assert cache.get(key) == result
        assert cache.hits == 1 and cache.stores == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 32) is None
        assert cache.misses == 1

    def test_corrupted_entry_recomputes_not_crashes(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        job = Job("gzip", "BaseP", dict(n_instructions=N))
        expected = runner.run([job])[0]

        # Truncate the entry on disk, then rebuild through a new runner:
        # the corrupt file must be treated as a miss and replaced.
        path = ResultCache(tmp_path).path_for(job.key())
        assert path.exists()
        path.write_text('{"format": 1, "benchmark": "gz')

        fresh = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        recomputed = fresh.run([job])[0]
        assert recomputed == expected
        assert fresh.cache.corrupt == 1
        assert fresh.stats.simulated == 1
        # The rebuilt entry is valid again.
        assert ResultCache(tmp_path).get(job.key()) == expected

    def test_disabled_cache_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        result = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=N)
        )
        cache.put("ab" * 16, result)
        assert cache.get("ab" * 16) is None
        assert list(tmp_path.iterdir()) == []

    def test_env_var_sets_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "from-env"))
        cache = ResultCache()
        assert cache.cache_dir == tmp_path / "from-env"

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 30
        assert cache.path_for(key).parent.name == "ab"


class TestNoCacheBypass:
    def test_runner_without_cache_never_touches_disk(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache=None)
        runner.run([Job("gzip", "BaseP", dict(n_instructions=N))])
        assert list(tmp_path.iterdir()) == []
        assert runner.stats.simulated == 1

    def test_uncacheable_jobs_still_run(self, tmp_path, monkeypatch):
        # A job with no stable key must execute normally, bypassing both
        # memo and disk, and be counted in the uncacheable stat.
        monkeypatch.setattr(Job, "key", lambda self: None)
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        results = runner.run([Job("gzip", "BaseP", dict(n_instructions=N))])
        assert results[0].scheme == "BaseP"
        assert runner.stats.uncacheable == 1
        assert runner.stats.simulated == 1
        assert list(tmp_path.iterdir()) == []


class TestReadThroughCache:
    """The in-memory LRU tier the simulation service serves from."""

    def _result(self, n=N):
        return run_experiment(
            ExperimentSpec("gzip", "BaseP", n_instructions=n)
        )

    def test_read_through_populates_memory_tier(self, tmp_path):
        backing = ResultCache(tmp_path)
        result = self._result()
        backing.put("ab" * 16, result)
        store = ReadThroughCache(backing)
        assert not store.contains_in_memory("ab" * 16)
        first = store.get("ab" * 16)  # disk -> memory
        assert first.to_dict() == result.to_dict()
        assert store.contains_in_memory("ab" * 16)
        stats = store.stats()
        assert stats["backing_hits"] == 1
        assert stats["memory_hits"] == 0
        second = store.get("ab" * 16)  # now a pure memory hit
        assert second is first
        assert store.stats()["memory_hits"] == 1

    def test_put_writes_through_to_backing(self, tmp_path):
        backing = ResultCache(tmp_path)
        store = ReadThroughCache(backing)
        result = self._result()
        store.put("cd" * 16, result)
        assert backing.get("cd" * 16) is not None

    def test_warm_is_memory_only(self, tmp_path):
        backing = ResultCache(tmp_path)
        store = ReadThroughCache(backing)
        store.warm("ef" * 16, self._result())
        assert store.contains_in_memory("ef" * 16)
        assert backing.get("ef" * 16) is None

    def test_miss_everywhere_is_none(self, tmp_path):
        store = ReadThroughCache(ResultCache(tmp_path))
        assert store.get("99" * 16) is None
        assert ReadThroughCache(None).get("99" * 16) is None

    def test_lru_eviction_per_shard(self):
        store = ReadThroughCache(None, shards=1, capacity_per_shard=2)
        result = self._result()
        store.warm("aaaa", result)
        store.warm("bbbb", result)
        store.get("aaaa")  # make "bbbb" the LRU entry
        store.warm("cccc", result)  # evicts "bbbb"
        assert store.contains_in_memory("aaaa")
        assert not store.contains_in_memory("bbbb")
        assert store.contains_in_memory("cccc")
        assert store.stats()["evictions"] == 1

    def test_keys_spread_across_shards(self):
        store = ReadThroughCache(None, shards=4, capacity_per_shard=8)
        result = self._result()
        for i in range(16):
            store.warm(f"{i:04x}{'0' * 28}", result)
        occupied = [
            s for s in store.stats()["per_shard"] if s["entries"] > 0
        ]
        assert len(occupied) > 1

    def test_stats_hit_rate(self):
        store = ReadThroughCache(None, shards=1, capacity_per_shard=4)
        store.warm("aaaa", self._result())
        store.get("aaaa")
        store.get("ffff")
        stats = store.stats()
        assert stats["memory_hits"] == 1
        assert stats["memory_misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            ReadThroughCache(None, shards=0)
        with pytest.raises(ValueError):
            ReadThroughCache(None, capacity_per_shard=0)
