"""Tests for cache-state checkpointing."""

import random

import pytest

from repro.cache.checkpoint import restore_checkpoint, take_checkpoint
from repro.cache.set_assoc import CacheGeometry, SetAssociativeCache
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config


def warm_plain_cache():
    cache = SetAssociativeCache(CacheGeometry(2 * 1024, 2, 64))
    rng = random.Random(5)
    for now in range(300):
        cache.access(rng.randrange(1 << 14) & ~7, rng.random() < 0.3, now)
    return cache


def warm_icr_cache():
    cache = ICRCache(make_config("ICR-P-PS(S)", decay_window=0))
    rng = random.Random(7)
    for now in range(600):
        cache.access(rng.randrange(1 << 15) & ~7, rng.random() < 0.3, now)
    return cache


def contents(cache):
    return {
        (si, w, b.block_addr, b.dirty, b.is_replica)
        for si, w, b in cache.iter_valid_blocks()
    }


class TestRoundTrip:
    def test_plain_cache_roundtrip(self):
        source = warm_plain_cache()
        snapshot = take_checkpoint(source)
        target = SetAssociativeCache(CacheGeometry(2 * 1024, 2, 64))
        restore_checkpoint(target, snapshot)
        assert contents(target) == contents(source)

    def test_icr_cache_roundtrip_preserves_links(self):
        source = warm_icr_cache()
        snapshot = take_checkpoint(source)
        target = ICRCache(make_config("ICR-P-PS(S)", decay_window=0))
        restore_checkpoint(target, snapshot)
        assert contents(target) == contents(source)
        # Link integrity in the restored cache.
        for _, _, block in target.iter_valid_blocks():
            for replica in block.replica_refs:
                assert replica.primary_ref is block
            if block.is_replica and block.primary_ref is not None:
                assert block in block.primary_ref.replica_refs

    def test_restored_cache_behaves_identically(self):
        source = warm_plain_cache()
        snapshot = take_checkpoint(source)
        target = SetAssociativeCache(CacheGeometry(2 * 1024, 2, 64))
        restore_checkpoint(target, snapshot)
        rng = random.Random(9)
        for now in range(300, 500):
            addr = rng.randrange(1 << 14) & ~7
            write = rng.random() < 0.3
            assert source.access(addr, write, now) == target.access(addr, write, now)

    def test_snapshot_is_immutable_against_future_accesses(self):
        source = warm_plain_cache()
        snapshot = take_checkpoint(source)
        before = snapshot.valid_lines
        for now in range(300, 400):
            source.access(now * 64, True, now)
        assert snapshot.valid_lines == before


class TestValidation:
    def test_shape_mismatch_rejected(self):
        snapshot = take_checkpoint(warm_plain_cache())
        other = SetAssociativeCache(CacheGeometry(4 * 1024, 4, 64))
        with pytest.raises(ValueError):
            restore_checkpoint(other, snapshot)

    def test_restore_clears_previous_contents(self):
        snapshot = take_checkpoint(warm_plain_cache())
        target = SetAssociativeCache(CacheGeometry(2 * 1024, 2, 64))
        target.access(0xDEAD00, True, 0)
        restore_checkpoint(target, snapshot)
        assert target.probe(0xDEAD00 >> 6) is None
