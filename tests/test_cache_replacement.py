"""Tests for the replacement-policy variants."""

import pytest

from repro.cache.block import CacheBlock
from repro.cache.replacement import (
    FIFO,
    RandomReplacement,
    TreePLRU,
    TrueLRU,
    make_replacement_policy,
)
from repro.cache.set_assoc import CacheGeometry, SetAssociativeCache


def valid_ways(n):
    ways = []
    for i in range(n):
        b = CacheBlock()
        b.fill(i, 0)
        b.lru_stamp = i
        return_ways = ways.append(b)
    return ways


class TestFactory:
    def test_all_policies_constructible(self):
        for name in ("lru", "fifo", "random", "plru"):
            assert make_replacement_policy(name, 4).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_replacement_policy("belady", 4)

    def test_plru_needs_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRU(3)


class TestTrueLRU:
    def test_invalid_first(self):
        ways = valid_ways(2) + [CacheBlock()]
        assert TrueLRU().victim_way(0, ways) == 2

    def test_min_stamp(self):
        ways = valid_ways(4)
        ways[2].lru_stamp = -5
        assert TrueLRU().victim_way(0, ways) == 2


class TestFIFO:
    def test_round_robin_fill_order(self):
        policy = FIFO()
        ways = valid_ways(2)
        first = policy.victim_way(0, ways)
        second = policy.victim_way(0, ways)
        third = policy.victim_way(0, ways)
        assert first != second
        assert third == first  # wrapped around

    def test_touch_is_ignored(self):
        policy = FIFO()
        ways = valid_ways(2)
        a = policy.victim_way(0, ways)
        policy.on_touch(0, a)  # touching must not refresh
        b = policy.victim_way(0, ways)
        assert b != a


class TestRandom:
    def test_deterministic_sequence(self):
        ways = valid_ways(4)
        a = RandomReplacement(seed=1)
        b = RandomReplacement(seed=1)
        seq_a = [a.victim_way(0, ways) for _ in range(20)]
        seq_b = [b.victim_way(0, ways) for _ in range(20)]
        assert seq_a == seq_b

    def test_covers_all_ways(self):
        ways = valid_ways(4)
        policy = RandomReplacement(seed=7)
        seen = {policy.victim_way(0, ways) for _ in range(100)}
        assert seen == {0, 1, 2, 3}


class TestTreePLRU:
    def test_textbook_sequence(self):
        # Touch 0, 2, 1, 3: every subtree bit now points at way 0 — the
        # canonical tree-PLRU walk-through.
        policy = TreePLRU(4)
        ways = valid_ways(4)
        for way in (0, 2, 1, 3):
            policy.on_touch(0, way)
        assert policy.victim_way(0, ways) == 0

    def test_never_victimizes_most_recent(self):
        policy = TreePLRU(4)
        ways = valid_ways(4)
        for way in (3, 1, 0, 2):
            policy.on_touch(0, way)
            assert policy.victim_way(0, ways) != way

    def test_single_way_degenerate(self):
        policy = TreePLRU(1)
        ways = valid_ways(1)
        assert policy.victim_way(0, ways) == 0

    def test_alternating_touches(self):
        policy = TreePLRU(2)
        ways = valid_ways(2)
        policy.on_touch(0, 0)
        assert policy.victim_way(0, ways) == 1
        policy.on_touch(0, 1)
        assert policy.victim_way(0, ways) == 0

    def test_per_set_state_independent(self):
        policy = TreePLRU(2)
        ways = valid_ways(2)
        policy.on_touch(0, 0)
        # Set 1 was never touched; default victim there is way 0.
        assert policy.victim_way(1, ways) == 0
        assert policy.victim_way(0, ways) == 1


class TestIntegration:
    def _run(self, replacement, accesses=400):
        import random

        rng = random.Random(3)
        cache = SetAssociativeCache(
            CacheGeometry(2 * 1024, 4, 64), replacement=replacement
        )
        hits = 0
        hot = [rng.randrange(64) * 64 for _ in range(24)]
        for now in range(accesses):
            addr = rng.choice(hot) if rng.random() < 0.8 else rng.randrange(1 << 16)
            if cache.access(addr, False, now):
                hits += 1
        return hits, cache

    @pytest.mark.parametrize("replacement", ["lru", "fifo", "random", "plru"])
    def test_every_policy_runs_clean(self, replacement):
        hits, cache = self._run(replacement)
        assert hits > 0
        assert cache.stats.accesses == 400

    def test_plru_close_to_lru(self):
        lru_hits, _ = self._run("lru")
        plru_hits, _ = self._run("plru")
        assert plru_hits >= lru_hits * 0.85  # good approximation

    def test_icr_runs_with_plru(self):
        from repro.harness.experiment import run_experiment
        from repro.harness.spec import ExperimentSpec

        result = run_experiment(ExperimentSpec.from_kwargs(
            "gzip", "ICR-P-PS(S)", n_instructions=10_000, replacement="plru"
        ))
        assert result.cycles > 0
        assert result.replication_ability >= 0.0
