"""Smoke/shape tests for the per-figure harness (small trace lengths)."""


from repro.harness.figures import (
    ALL_FIGURES,
    ablation_victim_policy,
    figure_01,
    figure_07,
    figure_09,
    figure_10,
    figure_16,
)

SMALL = 15_000
BENCH_SUBSET = ("gzip", "mcf")


class TestRegistry:
    def test_every_paper_figure_present(self):
        for i in range(1, 18):
            assert f"fig{i:02d}" in ALL_FIGURES

    def test_ablations_present(self):
        assert "ablation_distance" in ALL_FIGURES
        assert "ablation_victim_policy" in ALL_FIGURES


class TestFigureShapes:
    def test_figure_01_columns(self):
        result = figure_01(n=SMALL, benchmarks=BENCH_SUBSET)
        assert result.columns == ["benchmark", "single_attempt", "multi_attempt"]
        assert len(result.rows) == 2
        for _, single, multi in result.rows:
            assert 0.0 <= single <= 1.0
            assert multi >= single  # more attempts never reduce ability

    def test_figure_07_ls_vs_s(self):
        result = figure_07(n=SMALL, benchmarks=BENCH_SUBSET)
        for _, ls, s in result.rows:
            assert 0.0 <= s <= 1.0 and 0.0 <= ls <= 1.0

    def test_figure_09_normalized_to_basep(self):
        result = figure_09(n=SMALL, benchmarks=("gzip",), schemes=("BaseP", "BaseECC"))
        row = result.rows[0]
        assert row[1] == 1.0  # BaseP normalizes to itself
        assert row[2] > 1.0  # BaseECC slower

    def test_figure_10_window_sweep(self):
        result = figure_10(n=SMALL)
        windows = result.column("decay_window")
        assert windows[0] == 0 and windows[-1] == 10000

    def test_figure_16_ratios_positive(self):
        result = figure_16(n=SMALL, benchmarks=("gzip",))
        _, cycles_ratio, energy_ratio = result.rows[0]
        assert cycles_ratio > 0.5
        assert energy_ratio > 1.0  # write-through burns more energy

    def test_tables_render(self):
        result = figure_01(n=SMALL, benchmarks=("gzip",))
        table = result.to_table()
        assert "Fig 1" in table
        assert "gzip" in table

    def test_averages(self):
        result = figure_01(n=SMALL, benchmarks=BENCH_SUBSET)
        avgs = result.averages()
        assert set(avgs) == {"single_attempt", "multi_attempt"}

    def test_ablation_victim_policy_rows(self):
        result = ablation_victim_policy(n=SMALL, benchmark="gzip")
        policies = result.column("policy")
        assert set(policies) == {
            "dead-only", "dead-first", "replica-first", "replica-only"
        }


class TestJsonRoundTrip:
    def test_roundtrip(self):
        from repro.harness.figures import FigureResult

        original = FigureResult(
            "Fig X", "title", "claim", ["a", "b"], [["r1", 1.5], ["r2", 2.0]]
        )
        restored = FigureResult.from_json(original.to_json())
        assert restored.figure_id == original.figure_id
        assert restored.columns == original.columns
        assert restored.rows == original.rows

    def test_json_is_valid(self):
        import json

        from repro.harness.figures import comparison_area

        parsed = json.loads(comparison_area().to_json())
        assert parsed["figure_id"] == "Comparison C3"
        assert len(parsed["rows"]) == 4
