"""Tests for the out-of-order scoreboard pipeline and functional units."""

import pytest

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core.schemes import make_cache
from repro.cpu.funits import DEFAULT_SPECS, FunctionalUnits, FUSpec
from repro.cpu.isa import (
    OP_BRANCH,
    OP_FP_MUL,
    OP_INT_ALU,
    OP_INT_MUL,
    OP_LOAD,
    OP_STORE,
    Trace,
)
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineConfig


def build_pipeline(scheme="BaseP", config=None, **scheme_kwargs):
    dl1 = make_cache(scheme, **scheme_kwargs)
    hierarchy = MemoryHierarchy(dl1, HierarchyConfig(model_icache=False))
    return OutOfOrderPipeline(hierarchy, config or PipelineConfig())


def alu_trace(n, dependent=False):
    trace = Trace()
    for i in range(n):
        src = 1 if dependent else 0
        trace.append(OP_INT_ALU, dest=1, src1=src, pc=0x400000 + 4 * i)
    return trace


class TestFunctionalUnits:
    def test_int_alu_pool_has_four_units(self):
        fu = FunctionalUnits()
        starts = [fu.issue(OP_INT_ALU, 0)[0] for _ in range(5)]
        # Four ops start at cycle 0, the fifth waits for a unit.
        assert starts[:4] == [0, 0, 0, 0]
        assert starts[4] == 1

    def test_single_multiplier_serializes(self):
        fu = FunctionalUnits()
        starts = [fu.issue(OP_INT_MUL, 0)[0] for _ in range(3)]
        assert starts == [0, 1, 2]

    def test_latencies_match_specs(self):
        fu = FunctionalUnits()
        assert fu.issue(OP_INT_ALU, 0)[1] == 1
        assert fu.issue(OP_INT_MUL, 0)[1] == 3
        assert fu.issue(OP_FP_MUL, 0)[1] == 4

    def test_custom_specs_override(self):
        fu = FunctionalUnits({"int_alu": FUSpec(count=1, latency=5)})
        assert fu.issue(OP_INT_ALU, 0)[1] == 5
        assert DEFAULT_SPECS["int_alu"].latency == 1  # defaults untouched

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            FUSpec(count=0, latency=1)


class TestThroughputLimits:
    def test_independent_alu_ipc_close_to_width(self):
        pipeline = build_pipeline()
        result = pipeline.run(alu_trace(4000))
        assert result.ipc == pytest.approx(4.0, rel=0.05)

    def test_dependent_chain_ipc_is_one(self):
        pipeline = build_pipeline()
        result = pipeline.run(alu_trace(2000, dependent=True))
        assert result.ipc == pytest.approx(1.0, rel=0.05)

    def test_narrow_width_limits_ipc(self):
        pipeline = build_pipeline(config=PipelineConfig(issue_width=2))
        result = pipeline.run(alu_trace(2000))
        assert result.ipc == pytest.approx(2.0, rel=0.1)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(issue_width=0)


class TestLoadLatencySensitivity:
    def _chained_load_trace(self, n):
        """Loads whose addresses depend on the previous load (chain)."""
        trace = Trace()
        for i in range(n):
            trace.append(OP_LOAD, dest=1, src1=1, pc=0x400000, addr=0x1000)
        return trace

    def test_ecc_loads_slow_chained_trace(self):
        trace = self._chained_load_trace(2000)
        fast = build_pipeline("BaseP").run(trace)
        slow = build_pipeline("BaseECC").run(trace)
        # Chained 1-cycle loads vs 2-cycle loads: ~2x cycles.
        assert slow.cycles / fast.cycles == pytest.approx(2.0, rel=0.1)

    def test_miss_latency_visible(self):
        trace = Trace()
        for i in range(500):
            trace.append(OP_LOAD, dest=1, src1=1, pc=0x400000, addr=i * 4096)
        result = build_pipeline().run(trace)
        # Every load misses L1 and mostly L2: cycles >> instructions.
        assert result.cycles > 500 * 50


class TestStores:
    def test_store_throughput_not_latency_bound(self):
        trace = Trace()
        for i in range(2000):
            trace.append(OP_STORE, src1=0, pc=0x400000, addr=0x1000)
        result = build_pipeline().run(trace)
        # Stores are 1 cycle; mem-port (2) is the limiter, not the cache.
        assert result.ipc >= 1.8

    def test_lsq_limits_outstanding_memory_ops(self):
        config = PipelineConfig(lsq_size=2)
        trace = Trace()
        for i in range(400):
            trace.append(OP_LOAD, dest=0, src1=0, pc=0x400000, addr=i * 4096)
        small = build_pipeline(config=config).run(trace)
        large = build_pipeline(config=PipelineConfig(lsq_size=64)).run(trace)
        assert small.cycles > large.cycles


class TestBranches:
    def _branch_trace(self, n, taken_pattern):
        trace = Trace()
        for i in range(n):
            taken = taken_pattern(i)
            trace.append(
                OP_BRANCH, pc=0x400000, taken=taken, target=0x400100 if taken else 0
            )
        return trace

    def test_predictable_branches_cost_little(self):
        trace = self._branch_trace(2000, lambda i: True)
        result = build_pipeline().run(trace)
        assert result.mispredict_rate < 0.02

    def test_random_branches_mispredict_and_stall(self):
        import random

        rng = random.Random(3)
        flips = [rng.random() < 0.5 for _ in range(2000)]
        trace = self._branch_trace(2000, lambda i: flips[i])
        predictable = build_pipeline().run(self._branch_trace(2000, lambda i: True))
        chaotic = build_pipeline().run(trace)
        assert chaotic.mispredict_rate > 0.2
        assert chaotic.cycles > predictable.cycles * 1.5

    def test_mispredict_penalty_scales_cycles(self):
        import random

        rng = random.Random(3)
        flips = [rng.random() < 0.5 for _ in range(2000)]
        cheap = build_pipeline(config=PipelineConfig(mispredict_penalty=1))
        costly = build_pipeline(config=PipelineConfig(mispredict_penalty=10))
        t1 = self._branch_trace(2000, lambda i: flips[i])
        t2 = self._branch_trace(2000, lambda i: flips[i])
        assert costly.run(t2).cycles > cheap.run(t1).cycles


class TestResultAccounting:
    def test_counts_by_class(self):
        trace = Trace()
        trace.append(OP_LOAD, dest=1, addr=0x1000, pc=0x400000)
        trace.append(OP_STORE, addr=0x1000, pc=0x400004)
        trace.append(OP_BRANCH, pc=0x400008, taken=False)
        trace.append(OP_INT_ALU, dest=2, pc=0x40000C)
        result = build_pipeline().run(trace)
        assert result.instructions == 4
        assert result.loads == 1
        assert result.stores == 1
        assert result.branches == 1

    def test_cycles_positive_and_cpi_sane(self):
        result = build_pipeline().run(alu_trace(100))
        assert result.cycles > 0
        assert 0.2 < result.cpi < 2.0
