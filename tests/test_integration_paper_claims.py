"""Integration tests asserting the paper's qualitative claims end-to-end.

These are the *shape* properties the reproduction must preserve (who wins,
in which direction) — the quantitative record lives in EXPERIMENTS.md.
Moderate trace lengths keep them stable but slower than unit tests.
"""

import pytest

from repro.core.config import VictimPolicy
from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec

N = 60_000
RELAXED = dict(decay_window=1000, victim_policy=VictimPolicy.DEAD_FIRST)


@pytest.fixture(scope="module")
def gzip_runs():
    """Shared runs over the schemes the claims compare."""
    schemes = {
        "BaseP": {},
        "BaseECC": {},
        "ICR-P-PS(S)": {},
        "ICR-P-PS(LS)": {},
        "ICR-P-PP(S)": {},
        "ICR-ECC-PS(S)": {},
    }
    return {
        name: run_experiment(
            ExperimentSpec.from_kwargs("gzip", name, n_instructions=N, **kwargs)
        )
        for name, kwargs in schemes.items()
    }


class TestSection52Claims:
    def test_ecc_costs_cycles(self, gzip_runs):
        """BaseECC's 2-cycle loads stretch execution."""
        assert gzip_runs["BaseECC"].cycles > gzip_runs["BaseP"].cycles * 1.05

    def test_icr_p_ps_close_to_basep(self, gzip_runs):
        """ICR-P-PS(S) within a few percent of BaseP."""
        ratio = gzip_runs["ICR-P-PS(S)"].cycles / gzip_runs["BaseP"].cycles
        assert ratio < 1.06

    def test_icr_ecc_ps_beats_baseecc(self, gzip_runs):
        """ICR-ECC-PS(S) is faster than uniformly-ECC BaseECC."""
        assert gzip_runs["ICR-ECC-PS(S)"].cycles < gzip_runs["BaseECC"].cycles

    def test_pp_slower_than_ps(self, gzip_runs):
        """Parallel replica compare costs 2-cycle loads on replicated lines."""
        assert gzip_runs["ICR-P-PP(S)"].cycles > gzip_runs["ICR-P-PS(S)"].cycles

    def test_ls_replicates_more_than_s(self, gzip_runs):
        ls = gzip_runs["ICR-P-PS(LS)"]
        s = gzip_runs["ICR-P-PS(S)"]
        assert ls.dl1["replication_successes"] > s.dl1["replication_successes"]

    def test_icr_increases_misses(self, gzip_runs):
        """Figure 8: replication displaces blocks, raising miss rates."""
        assert gzip_runs["ICR-P-PS(S)"].miss_rate > gzip_runs["BaseP"].miss_rate

    def test_loads_with_replica_majority(self, gzip_runs):
        """Figure 7: most read hits find a replica."""
        assert gzip_runs["ICR-P-PS(S)"].loads_with_replica > 0.5

    def test_base_schemes_unaffected_by_icr_machinery(self, gzip_runs):
        assert gzip_runs["BaseP"].replication_ability == 0.0
        assert gzip_runs["BaseP"].loads_with_replica == 0.0


class TestSection53Claims:
    def test_larger_window_lowers_ability(self):
        """Figure 10: fewer dead blocks -> fewer replica homes."""
        w0 = run_experiment(
            ExperimentSpec.from_kwargs(
                "vpr", "ICR-P-PS(S)", n_instructions=N, decay_window=0
            )
        )
        w10k = run_experiment(ExperimentSpec.from_kwargs(
            "vpr", "ICR-P-PS(S)", n_instructions=N, decay_window=10_000
        ))
        assert w10k.replication_ability <= w0.replication_ability

    def test_relaxed_window_costs_less_performance(self):
        """Figure 11: a lenient predictor displaces fewer live blocks."""
        base = run_experiment(
            ExperimentSpec.from_kwargs("vpr", "BaseP", n_instructions=N)
        )
        w0 = run_experiment(
            ExperimentSpec.from_kwargs(
                "vpr", "ICR-P-PS(S)", n_instructions=N, decay_window=0
            )
        )
        w1k = run_experiment(ExperimentSpec.from_kwargs(
            "vpr", "ICR-P-PS(S)", n_instructions=N, **RELAXED
        ))
        assert w1k.miss_rate <= w0.miss_rate + 0.005
        assert w1k.cycles <= w0.cycles * 1.02
        assert w1k.cycles / base.cycles < 1.06


class TestSection55Claims:
    def test_icr_more_resilient_than_basep(self):
        """Figure 14 at an intense error rate."""
        kwargs = dict(n_instructions=40_000, error_rate=1e-2, error_seed=99)
        base = run_experiment(ExperimentSpec.from_kwargs("vortex", "BaseP", **kwargs))
        icr = run_experiment(
            ExperimentSpec.from_kwargs("vortex", "ICR-P-PS(S)", **kwargs, **RELAXED)
        )
        assert base.dl1["load_errors_unrecoverable"] > 0
        assert (
            icr.unrecoverable_load_fraction < base.unrecoverable_load_fraction
        )
        assert icr.dl1["load_errors_recovered_replica"] > 0

    def test_baseecc_corrects_singles(self):
        """At moderate rates every single-bit error is corrected."""
        result = run_experiment(ExperimentSpec.from_kwargs(
            "vortex", "BaseECC", n_instructions=40_000, error_rate=1e-3
        ))
        assert result.dl1["load_errors_corrected_ecc"] >= 0
        assert result.dl1["load_errors_detected"] == (
            result.dl1["load_errors_corrected_ecc"]
            + result.dl1["load_errors_recovered_l2"]
            + result.dl1["load_errors_unrecoverable"]
        )


class TestSection56Claims:
    def test_leaving_replicas_serves_misses(self):
        result = run_experiment(ExperimentSpec.from_kwargs(
            "mcf",
            "ICR-P-PS(S)",
            n_instructions=N,
            leave_replicas_on_evict=True,
            **RELAXED,
        ))
        assert result.dl1["replica_fills"] > 0

    def test_mcf_performance_mode_beats_drop_mode(self):
        drop = run_experiment(
            ExperimentSpec.from_kwargs(
                "mcf", "ICR-P-PS(S)", n_instructions=N, **RELAXED
            )
        )
        leave = run_experiment(ExperimentSpec.from_kwargs(
            "mcf",
            "ICR-P-PS(S)",
            n_instructions=N,
            leave_replicas_on_evict=True,
            **RELAXED,
        ))
        assert leave.cycles < drop.cycles


class TestSection58Claims:
    def test_writethrough_slower_and_hotter(self):
        icr = run_experiment(
            ExperimentSpec.from_kwargs(
                "vortex", "ICR-P-PS(S)", n_instructions=N, **RELAXED
            )
        )
        wt = run_experiment(
            ExperimentSpec.from_kwargs("vortex", "BaseP-WT", n_instructions=N)
        )
        assert wt.energy.total_nj > icr.energy.total_nj
        assert wt.write_buffer_stalls >= 0


class TestSection59Claims:
    def test_speculative_loads_recover_baseecc_cycles(self):
        ecc = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseECC", n_instructions=N)
        )
        spec = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseECC-spec", n_instructions=N)
        )
        base = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseP", n_instructions=N)
        )
        assert spec.cycles < ecc.cycles
        assert spec.cycles == base.cycles  # same latencies, same trace

    def test_speculation_does_not_reduce_check_energy(self):
        ecc = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseECC", n_instructions=N)
        )
        spec = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "BaseECC-spec", n_instructions=N)
        )
        assert spec.energy.l1_checks_nj == pytest.approx(
            ecc.energy.l1_checks_nj, rel=0.01
        )
