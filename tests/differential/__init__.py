"""Differential tests: the array kernel against the object reference.

Every test in this package asserts *bit-identity* between the two
simulation backends (``ExperimentSpec(backend="object")`` vs
``backend="array"``) — full :class:`SimulationResult` dictionaries,
per-access outcome streams, golden pins and campaign reports.  Any
divergence, however small, is a bug in one kernel or the other.
"""
