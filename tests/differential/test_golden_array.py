"""The array backend reproduces the checked-in golden pins.

tests/test_golden_results.py pins the headline counters of three
canonical configurations for the object kernel; here the *same* JSON
files are asserted against the array backend.  The golden files are the
fixed point both kernels must hit — a kernel change that moves these
numbers fails the pin, and a divergence between kernels fails one of
the two suites.
"""

import json
import pathlib

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec
from tests.test_golden_results import CONFIGS, N, _snapshot

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_golden_under_array_backend(name):
    benchmark, scheme, kwargs = CONFIGS[name]
    spec = ExperimentSpec.from_kwargs(
        benchmark, scheme, n_instructions=N, backend="array", **kwargs
    )
    got = _snapshot(run_experiment(spec))

    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), f"missing golden file {path}"
    assert got == json.loads(path.read_text())
