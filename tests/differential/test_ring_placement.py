"""Knobbed ring-placement specs: object and array backends agree.

The scheme matrix (test_equivalence_matrix) already covers ICR-Ring-N at
the registry defaults; this file pins the *knobbed* configurations — a
non-default virtual-node count, attempt budget, and hash mode — plus the
ring variant of the generic ICR scheme, so the per-slot candidate tables
built by the two kernels are compared off the defaults too.
"""

import pytest

from repro.core.array_kernel import backend_mode
from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec

N = 12_000

RING_SPECS = [
    # (scheme, scheme_kwargs): non-default ring shapes.
    ("ICR-Ring-2", {"virtual_nodes": 4, "ring_attempts": 3}),
    ("ICR-Ring-3", {"virtual_nodes": 2, "ring_attempts": 5}),
    ("ICR-Ring-1", {"virtual_nodes": 1, "ring_hash": "identity"}),
    # The generic scheme routed onto the ring via the placement knob.
    (
        "ICR-P-PS(S)",
        {"placement": "ring", "replication_factor": 2, "virtual_nodes": 6},
    ),
    # And onto the multi-attempt power-of-two walk.
    ("ICR-P-PS(S)", {"placement": "power2", "ring_attempts": 3}),
]


@pytest.mark.parametrize("scheme,knobs", RING_SPECS)
@pytest.mark.parametrize("bench,trace_seed", [("gzip", 0), ("mcf", 11)])
def test_ring_spec_bit_identical(scheme, knobs, bench, trace_seed):
    spec_obj = ExperimentSpec.from_kwargs(
        bench,
        scheme,
        n_instructions=N,
        trace_seed=trace_seed,
        backend="object",
        **knobs,
    )
    spec_arr = spec_obj.replace(backend="array")
    reference = run_experiment(spec_obj).to_dict()
    candidate = run_experiment(spec_arr).to_dict()
    assert candidate == reference, (
        f"{scheme} {knobs} on {bench} diverges under the "
        f"{backend_mode(spec_arr)} tier"
    )


def test_ring_scheme_takes_batched_tier():
    """Ring schemes stay eligible for the two-phase batched engine."""
    spec = ExperimentSpec("gzip", "ICR-Ring-2", backend="array")
    assert backend_mode(spec) == "array-batched"


def test_silent_ecc_bit_identical():
    """The silent-write-aware base scheme agrees across kernels."""
    spec_obj = ExperimentSpec.from_kwargs(
        "vpr",
        "BaseECC-SW",
        n_instructions=N,
        trace_seed=3,
        backend="object",
        silent_store_fraction=0.25,
    )
    spec_arr = spec_obj.replace(backend="array")
    assert run_experiment(spec_arr).to_dict() == run_experiment(
        spec_obj
    ).to_dict()
