"""The backend knob is part of every result's identity.

Results computed by different kernels must never be conflated, even
though they are bit-identical by contract: the backend participates in
the spec cache key and the campaign digest, so a cache entry or a
checkpoint written under one backend is invisible to the other.  And
when both backends *do* run the same campaign, the final reports are
byte-for-byte equal.
"""

from repro.harness.cache import ResultCache
from repro.harness.campaign import CampaignConfig, CampaignEngine
from repro.harness.experiment import run_experiment
from repro.harness.runner import ParallelRunner
from repro.harness.spec import ExperimentSpec


def _spec(backend):
    return ExperimentSpec(
        "gzip", "ICR-P-PS(S)", n_instructions=5_000, backend=backend
    )


def test_backend_in_spec_key():
    assert _spec("object").key() != _spec("array").key()


def test_mixed_backend_cache_hit_impossible(tmp_path):
    """A result stored under one backend never satisfies the other."""
    cache = ResultCache(cache_dir=tmp_path)
    spec_obj, spec_arr = _spec("object"), _spec("array")
    cache.put(spec_obj.key(), run_experiment(spec_obj))
    assert cache.get(spec_obj.key()) is not None
    assert cache.get(spec_arr.key()) is None


def _campaign_config(backend):
    return CampaignConfig(
        benchmarks=("gzip",),
        schemes=("ICR-P-PS(S)",),
        error_rates=(0.0,),
        trials=4,
        batch_size=2,
        n_instructions=5_000,
        backend=backend,
    )


def test_backend_in_campaign_digest():
    assert _campaign_config("object").digest() != (
        _campaign_config("array").digest()
    )


def test_checkpoint_not_resumed_across_backends(tmp_path):
    """An object-backend checkpoint is stale to an array-backend engine."""
    checkpoint = tmp_path / "campaign.json"
    runner = ParallelRunner(jobs=1, cache=None)
    engine = CampaignEngine(
        _campaign_config("object"), runner, checkpoint_path=checkpoint
    )
    engine.run(max_rounds=1)
    assert checkpoint.exists()

    resumed_same = CampaignEngine(
        _campaign_config("object"), runner, checkpoint_path=checkpoint
    )
    assert resumed_same.resumed

    resumed_other = CampaignEngine(
        _campaign_config("array"), runner, checkpoint_path=checkpoint
    )
    assert not resumed_other.resumed


def test_resumed_array_campaign_matches_uninterrupted(tmp_path):
    """Interrupt + resume changes nothing about the final report."""
    runner = ParallelRunner(jobs=1, cache=None)
    config = _campaign_config("array")
    full = CampaignEngine(config, runner).run().to_json()

    checkpoint = tmp_path / "campaign.json"
    CampaignEngine(config, runner, checkpoint_path=checkpoint).run(
        max_rounds=1
    )
    resumed = CampaignEngine(config, runner, checkpoint_path=checkpoint)
    assert resumed.resumed
    assert resumed.run().to_json() == full


def test_campaign_reports_byte_identical_across_backends():
    """Fault-free campaigns agree to the last byte (modulo the digest).

    The two reports differ *only* in the embedded campaign digest —
    which exists precisely to keep their artifacts apart.
    """
    runner = ParallelRunner(jobs=1, cache=None)
    reports = {}
    for backend in ("object", "array"):
        engine = CampaignEngine(_campaign_config(backend), runner)
        reports[backend] = engine.run().to_json()
    obj = reports["object"].replace(_campaign_config("object").digest(), "X")
    arr = reports["array"].replace(_campaign_config("array").digest(), "X")
    assert obj == arr
