"""Property-based differential tests (hypothesis, seeded).

Hypothesis draws random ICR knob combinations and random access traces;
for every draw the array kernel must match the object kernel exactly —
identical outcome streams at the dL1 level, and identical end-to-end
result dictionaries at the experiment level.  Shrinking then reports
the *smallest* trace that tells the two kernels apart.
"""

import dataclasses

from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.core.array_kernel import ArrayDL1
from repro.core.config import VictimPolicy
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config
from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec

SCHEMES = st.sampled_from(
    ["BaseP", "BaseECC", "ICR-P-PS(S)", "ICR-P-PS(LS)", "ICR-ECC-PP(S)"]
)

_RAW_KNOBS = st.fixed_dictionaries(
    {},
    optional={
        "decay_window": st.sampled_from([0, None, 256, 2048]),
        "victim_policy": st.sampled_from(list(VictimPolicy)),
        "leave_replicas_on_evict": st.booleans(),
        "replicate_into_invalid": st.booleans(),
        "max_replicas": st.sampled_from([1, 2]),
        "replica_distances": st.sampled_from([("N/2",), (0,), ("N/2", 0)]),
    },
)


@st.composite
def knob_combos(draw):
    knobs = draw(_RAW_KNOBS)
    if knobs.get("max_replicas") == 2:
        # A second replica needs its own attempt list (config invariant).
        knobs["second_replica_distances"] = draw(
            st.sampled_from([("N/4",), ("N/4", "N/2")])
        )
    return knobs


KNOBS = knob_combos()

ACCESSES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2047),  # block number
        st.booleans(),  # is_write
    ),
    min_size=1,
    max_size=400,
)


@seed(20030622)  # DSN 2003; fixed so CI failures reproduce locally
@given(scheme=SCHEMES, knobs=KNOBS, accesses=ACCESSES)
@settings(max_examples=60, deadline=None)
def test_random_knobs_random_trace_identical_streams(scheme, knobs, accesses):
    config = make_config(scheme, **knobs)
    reference = ICRCache(config)
    candidate = ArrayDL1(config)
    for now, (block, is_write) in enumerate(accesses):
        addr = block * 64
        assert candidate.access(addr, is_write, now) == reference.access(
            addr, is_write, now
        )
    assert dataclasses.asdict(candidate.stats) == dataclasses.asdict(
        reference.stats
    )


@seed(20030622)
@given(
    bench=st.sampled_from(["gzip", "vpr", "art"]),
    scheme=SCHEMES,
    trace_seed=st.integers(min_value=0, max_value=3),
    warmup=st.sampled_from([0, 1_000]),
)
@settings(max_examples=10, deadline=None)
def test_random_experiments_identical_results(
    bench, scheme, trace_seed, warmup
):
    """End-to-end: full SimulationResult equality on random spec points."""
    spec = ExperimentSpec(
        bench,
        scheme,
        n_instructions=6_000,
        trace_seed=trace_seed,
        warmup_instructions=warmup,
        backend="object",
    )
    reference = run_experiment(spec).to_dict()
    candidate = run_experiment(spec.replace(backend="array")).to_dict()
    assert candidate == reference
