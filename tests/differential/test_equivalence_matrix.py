"""The full scheme matrix: object and array backends are bit-identical.

Runs every registered scheme on several independently-seeded traces
through both backends and compares the complete
``SimulationResult.to_dict()`` — cycles, every cache counter, predictor
stats, energy.  This is the golden-pin contract of the array kernel:
whichever dispatch tier a spec lands on (two-phase batched engine,
per-access SoA dL1, or the object fallback), the numbers must be the
ones the reference implementation produces.
"""

import pytest

from repro.core.array_kernel import backend_mode
from repro.core.registry import registered_schemes
from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec

N = 12_000

#: (benchmark, trace_seed): three genuinely different traces — distinct
#: mixes, distinct seeds — so agreement is not an artifact of one input.
TRACES = [("gzip", 0), ("vpr", 3), ("mcf", 11)]


def _pair(benchmark, scheme, trace_seed, **extra):
    spec = ExperimentSpec(
        benchmark,
        scheme,
        n_instructions=N,
        trace_seed=trace_seed,
        backend="object",
        **extra,
    )
    return spec, spec.replace(backend="array")


@pytest.mark.parametrize("bench,trace_seed", TRACES)
@pytest.mark.parametrize("scheme", registered_schemes())
def test_all_schemes_bit_identical(scheme, bench, trace_seed):
    spec_obj, spec_arr = _pair(bench, scheme, trace_seed)
    reference = run_experiment(spec_obj).to_dict()
    candidate = run_experiment(spec_arr).to_dict()
    assert candidate == reference, (
        f"{scheme} on {bench} (seed {trace_seed}) diverges under the "
        f"{backend_mode(spec_arr)} tier"
    )


def test_warmup_window_bit_identical():
    """The mid-trace stats reset lands on the same instruction."""
    spec_obj, spec_arr = _pair(
        "gzip", "ICR-P-PS(S)", 0, warmup_instructions=3_000
    )
    assert run_experiment(spec_arr).to_dict() == run_experiment(
        spec_obj
    ).to_dict()


def test_backend_mode_tiers():
    """The reported dispatch tier matches the eligibility rules."""

    def mode(scheme, **extra):
        return backend_mode(
            ExperimentSpec("gzip", scheme, backend="array", **extra)
        )

    # Fault-free LRU write-back schemes take the two-phase engine.
    assert mode("BaseP") == "array-batched"
    assert mode("ICR-ECC-PP(LS)") == "array-batched"
    # Write-through and decay need the per-access SoA cache.
    assert mode("BaseP-WT") == "array-soa"
    assert mode("ICR-P-PS(S)", scheme_kwargs={"decay_window": 2048}) == (
        "array-soa"
    )
    # Fault injection and the non-ICR baselines fall back to objects.
    assert mode("ICR-P-PS(S)", error_rate=1e-3) == "object"
    assert mode("rcache") == "object"
    assert mode("victim-cache") == "object"
