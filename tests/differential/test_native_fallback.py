"""The optional native phase-2 kernel and its pure-Python twin agree.

``repro.core._native`` compiles the batched engine's scoreboard loop to
C when a compiler is around and silently falls back to the Python loop
otherwise; both paths must produce the same cycle count to the bit.
These tests force each path in turn and compare against the object
reference, so CI covers whichever path the build machine happens to
exercise plus the one it doesn't.
"""

from repro.core import _native
from repro.harness.experiment import run_experiment
from repro.harness.spec import ExperimentSpec


def _result(backend):
    spec = ExperimentSpec(
        "gzip", "ICR-P-PS(LS)", n_instructions=10_000, backend=backend
    )
    return run_experiment(spec).to_dict()


def test_python_fallback_bit_identical(monkeypatch):
    """With the native kernel disabled, the Python loop must match."""
    monkeypatch.setattr(_native, "phase2_cycles", lambda *a, **k: None)
    assert _result("array") == _result("object")


def test_native_path_bit_identical_when_available():
    """Whatever path is live on this machine matches the reference."""
    assert _result("array") == _result("object")


def test_repro_native_env_gate(monkeypatch):
    """REPRO_NATIVE=0 turns the native kernel off entirely."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    monkeypatch.setattr(_native, "_STATE", [])
    assert not _native.available()
    assert (
        _native.phase2_cycles(
            0, b"", b"", b"", b"", None, None, b"", 4, 3, 64, 32,
            None, None, None, 0,
        )
        is None
    )
