"""Per-access differential: ArrayDL1 and ICRCache agree event by event.

The matrix tests compare end-of-run aggregates; these drive both dL1
implementations through the same access stream and compare every
:class:`~repro.cache.hierarchy.DL1Outcome` as it happens, plus the
eviction callback streams and the final counter state.  A transposition
that cancels out in the totals is caught here.
"""

import dataclasses
import random

import pytest

from repro.core.array_kernel import ArrayDL1
from repro.core.config import VictimPolicy
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config

#: Knob points spanning the ICR design space the kernel supports.
CONFIGS = {
    "basep": ("BaseP", {}),
    "icr_s": ("ICR-P-PS(S)", {}),
    "icr_ls_pp": ("ICR-ECC-PP(LS)", {}),
    "replica_first": (
        "ICR-P-PS(S)",
        {"victim_policy": VictimPolicy.REPLICA_FIRST},
    ),
    "decay": ("ICR-P-PS(LS)", {"decay_window": 512}),
    "never_dead": ("ICR-P-PS(S)", {"decay_window": None}),
    "two_replicas": (
        "ICR-P-PS(S)",
        {"max_replicas": 2, "second_replica_distances": ("N/4",)},
    ),
    "leave_replicas": ("ICR-P-PS(LS)", {"leave_replicas_on_evict": True}),
    "into_invalid": ("ICR-P-PS(S)", {"replicate_into_invalid": True}),
    "horizontal": ("ICR-P-PS(S)", {"replica_distances": (0,)}),
}


def _access_stream(seed, n=4_000):
    """A hot/cold mix over enough sets to exercise eviction and decay."""
    rng = random.Random(seed)
    hot = [rng.randrange(1 << 18) & ~63 for _ in range(96)]
    return [
        (
            rng.choice(hot) if rng.random() < 0.75 else rng.randrange(1 << 22),
            rng.random() < 0.3,
        )
        for _ in range(n)
    ]


@pytest.mark.parametrize("name", sorted(CONFIGS))
@pytest.mark.parametrize("seed", [1, 2])
def test_outcome_streams_identical(name, seed):
    scheme, knobs = CONFIGS[name]
    config = make_config(scheme, **knobs)
    reference = ICRCache(config)
    candidate = ArrayDL1(config)

    ref_evictions, cand_evictions = [], []
    reference.set_evict_hook(ref_evictions.append)
    candidate.set_evict_hook(cand_evictions.append)

    for now, (addr, is_write) in enumerate(_access_stream(seed)):
        expected = reference.access(addr, is_write, now)
        got = candidate.access(addr, is_write, now)
        assert got == expected, f"access {now} (addr={addr:#x})"

    assert cand_evictions == ref_evictions
    assert dataclasses.asdict(candidate.stats) == dataclasses.asdict(
        reference.stats
    )
