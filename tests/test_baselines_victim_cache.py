"""Tests for the victim-cache comparator."""

import pytest

from repro.baselines.victim_cache import (
    VictimCache,
    run_victim_cache_baseline,
)


class TestVictimCacheMechanics:
    def test_insert_extract(self):
        vc = VictimCache(entries=4)
        vc.insert(0x10, dirty=True)
        hit, dirty = vc.extract(0x10)
        assert hit and dirty

    def test_extract_removes(self):
        vc = VictimCache(entries=4)
        vc.insert(0x10, dirty=False)
        vc.extract(0x10)
        hit, _ = vc.extract(0x10)
        assert not hit

    def test_miss_probe(self):
        vc = VictimCache(entries=4)
        hit, dirty = vc.extract(0x99)
        assert not hit and not dirty
        assert vc.stats.probes == 1

    def test_lru_eviction(self):
        vc = VictimCache(entries=2)
        vc.insert(1, False)
        vc.insert(2, False)
        vc.insert(3, False)  # evicts 1
        assert not vc.extract(1)[0]
        assert vc.extract(2)[0]
        assert vc.stats.evictions == 1

    def test_reinsert_refreshes(self):
        vc = VictimCache(entries=2)
        vc.insert(1, False)
        vc.insert(2, False)
        vc.insert(1, True)  # refresh + dirty upgrade
        vc.insert(3, False)  # evicts 2, not 1
        assert vc.extract(1) == (True, True)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            VictimCache(entries=0)


class TestBaselineRun:
    def test_produces_result(self):
        result = run_victim_cache_baseline("gzip", n_instructions=20_000)
        assert result.cycles > 0
        assert 0.0 <= result.victim_hit_rate <= 1.0

    def test_victim_cache_catches_conflict_misses(self):
        result = run_victim_cache_baseline("mcf", n_instructions=30_000)
        assert result.victim_hits > 0

    def test_helps_or_matches_base(self):
        from repro.harness.experiment import run_experiment
        from repro.harness.spec import ExperimentSpec

        base = run_experiment(
            ExperimentSpec.from_kwargs("mcf", "BaseP", n_instructions=30_000)
        )
        vc = run_victim_cache_baseline("mcf", n_instructions=30_000)
        assert vc.cycles <= base.cycles * 1.001

    def test_icr_leave_mode_in_victim_cache_league(self):
        """Section 5.6: ICR's free in-cache victim effect is comparable
        to a dedicated 16-entry victim cache on the conflict-heavy mcf."""
        from repro.harness.experiment import run_experiment
        from repro.harness.spec import ExperimentSpec

        base = run_experiment(
            ExperimentSpec.from_kwargs("mcf", "BaseP", n_instructions=40_000)
        )
        vc = run_victim_cache_baseline("mcf", n_instructions=40_000)
        icr = run_experiment(ExperimentSpec.from_kwargs(
            "mcf",
            "ICR-P-PS(S)",
            n_instructions=40_000,
            decay_window=1000,
            leave_replicas_on_evict=True,
        ))
        vc_gain = 1.0 - vc.cycles / base.cycles
        icr_gain = 1.0 - icr.cycles / base.cycles
        assert icr_gain > 0.3 * vc_gain
