"""Tests for the Table 1 memory hierarchy: latencies and traffic routing."""


from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core.schemes import make_cache


def build(scheme="BaseP", **scheme_kwargs):
    dl1 = make_cache(scheme, **scheme_kwargs)
    hierarchy = MemoryHierarchy(dl1, HierarchyConfig())
    return dl1, hierarchy


class TestLoadLatencies:
    def test_parity_load_hit_is_one_cycle(self):
        _, h = build("BaseP")
        h.load(0x1000, 0)  # miss, warm
        assert h.load(0x1000, 10) == 1

    def test_ecc_load_hit_is_two_cycles(self):
        _, h = build("BaseECC")
        h.load(0x1000, 0)
        assert h.load(0x1000, 10) == 2

    def test_speculative_ecc_load_hit_is_one_cycle(self):
        _, h = build("BaseECC-spec")
        h.load(0x1000, 0)
        assert h.load(0x1000, 10) == 1

    def test_l2_hit_miss_latency(self):
        _, h = build("BaseP")
        # Cold miss: L1 miss + L2 miss -> 6 + 100.
        assert h.load(0x1000, 0) == 106
        # Evict it from L1 by conflicting fills, keep it in L2.
        for i in range(1, 6):
            h.load(0x1000 + i * 64 * 64, i)
        assert h.load(0x1000, 100) == 6

    def test_icr_replicated_load_hit_latencies(self):
        # ICR-ECC-PS: unreplicated lines 2 cycles, replicated lines 1.
        # (replicate_into_invalid lets the replica land in the cold cache.)
        dl1, h = build("ICR-ECC-PS(S)", decay_window=0, replicate_into_invalid=True)
        h.load(0x1000, 0)
        assert h.load(0x1000, 10) == 2  # not yet replicated
        h.store(0x1000, 20)  # triggers replication
        block = dl1.probe(dl1.geometry.block_addr(0x1000))
        assert block.has_replica
        assert h.load(0x1000, 30) == 1

    def test_icr_pp_replicated_load_is_two_cycles(self):
        dl1, h = build("ICR-P-PP(S)", decay_window=0, replicate_into_invalid=True)
        h.load(0x1000, 0)
        h.store(0x1000, 10)
        assert dl1.probe(dl1.geometry.block_addr(0x1000)).has_replica
        assert h.load(0x1000, 20) == 2


class TestStores:
    def test_store_is_one_cycle_even_on_miss(self):
        _, h = build("BaseP")
        assert h.store(0x5000, 0) == 1

    def test_store_miss_still_fetches_line_into_l2(self):
        _, h = build("BaseP")
        h.store(0x5000, 0)
        assert h.l2.stats.loads == 1

    def test_writethrough_store_reaches_l2(self):
        _, h = build("BaseP-WT")
        h.store(0x5000, 0)
        assert h.stats.l2_store_writes == 1

    def test_writethrough_blocks_stay_clean(self):
        dl1, h = build("BaseP-WT")
        h.store(0x5000, 0)
        block = dl1.probe(dl1.geometry.block_addr(0x5000))
        assert not block.dirty

    def test_writethrough_full_buffer_stalls(self):
        _, h = build("BaseP-WT")
        latencies = [h.store(i * 4096, 0) for i in range(12)]
        assert latencies[0] == 1
        assert max(latencies) > 1
        assert h.stats.write_buffer_stall_cycles > 0

    def test_writeback_never_stalls_on_buffer(self):
        _, h = build("BaseP")
        latencies = [h.store(i * 4096, 0) for i in range(12)]
        assert all(latency == 1 for latency in latencies)


class TestWritebackRouting:
    def test_dirty_dl1_victim_written_to_l2(self):
        dl1, h = build("BaseP")
        h.store(0x0, 0)  # dirty block in set 0
        # Fill set 0 (4 ways) with conflicting blocks to evict it.
        for i in range(1, 5):
            h.load(i * 64 * 64, i)
        assert dl1.stats.writebacks == 1
        assert h.l2.stats.stores >= 1

    def test_clean_victims_are_silent(self):
        dl1, h = build("BaseP")
        h.load(0x0, 0)
        for i in range(1, 5):
            h.load(i * 64 * 64, i)
        assert dl1.stats.writebacks == 0


class TestInstructionFetch:
    def test_fetch_hit_is_one_cycle_after_warm(self):
        _, h = build()
        h.fetch(0x400000, 0)
        assert h.fetch(0x400000, 1) == 1

    def test_fetch_charged_once_per_block(self):
        _, h = build()
        h.fetch(0x400000, 0)
        before = h.l1i.stats.accesses
        h.fetch(0x400004, 1)  # same 32-byte block
        assert h.l1i.stats.accesses == before

    def test_fetch_miss_goes_to_l2(self):
        _, h = build()
        latency = h.fetch(0x400000, 0)
        assert latency > 1

    def test_icache_can_be_disabled(self):
        dl1 = make_cache("BaseP")
        h = MemoryHierarchy(dl1, HierarchyConfig(model_icache=False))
        assert h.fetch(0x400000, 0) == 1
        assert h.l1i.stats.accesses == 0


class TestProtectedICache:
    def test_protected_icache_fetch_works(self):
        dl1 = make_cache("BaseP")
        h = MemoryHierarchy(dl1, HierarchyConfig(protected_icache=True))
        first = h.fetch(0x400000, 0)
        assert first > 1  # cold miss
        assert h.fetch(0x400000, 10) == 1  # warm hit

    def test_icache_errors_always_recoverable(self):
        from repro.errors.injector import FaultInjector

        dl1 = make_cache("BaseP")
        h = MemoryHierarchy(dl1, HierarchyConfig(protected_icache=True))
        h.fetch(0x400000, 0)
        injector = FaultInjector(h.l1i, 0.0)
        block = h.l1i.probe(h.l1i.geometry.block_addr(0x400000))
        block.words[0]._cell.flip_data_bit(3)
        h.l1i.stats.errors_injected += 1
        h._last_fetch_block = -1  # force a real iL1 access
        latency = h.fetch(0x400000, 100)
        assert latency > 1  # refetch charged
        assert h.l1i.stats.load_errors_recovered_l2 == 1
        assert h.l1i.stats.load_errors_unrecoverable == 0

    def test_plain_icache_still_default(self):
        dl1 = make_cache("BaseP")
        h = MemoryHierarchy(dl1, HierarchyConfig())
        from repro.cache.set_assoc import SetAssociativeCache

        assert type(h.l1i) is SetAssociativeCache
