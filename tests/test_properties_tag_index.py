"""Property tests for the O(1) lookup indexes and trace memoization.

The tag/replica indexes in :mod:`repro.cache.set_assoc` and
:mod:`repro.core.icr_cache` replace the original linear scans of the
ways.  These tests re-implement those scans as reference oracles and
drive randomized fill/evict/replicate sequences against several ICR
configurations, checking that the indexed lookups always return the
exact block the linear walk would have found.

The second half pins the shared-trace memoization contract: repeated
``(profile, length, seed)`` requests return equal-by-value traces (the
same object in-process, an exact binary round-trip across processes),
while changing the seed changes the trace.
"""

import random

import pytest

from repro.core.config import VictimPolicy
from repro.core.icr_cache import ICRCache
from repro.core.schemes import make_config
from repro.workloads.generator import trace_cache_dir, trace_for, trace_key
from repro.workloads.spec2000 import profile_for


# ---------------------------------------------------------------------------
# reference oracles: the pre-index linear scans
# ---------------------------------------------------------------------------


def _linear_probe(cache, block_addr):
    """The original ``probe``: scan the home set's ways for the primary."""
    home = block_addr % cache.geometry.n_sets
    for block in cache.sets[home]:
        if block.valid and not block.is_replica and block.block_addr == block_addr:
            return block
    return None


def _linear_probe_replica(cache, block_addr):
    """The original ``_probe_replica``: walk the candidate distances."""
    n_sets = cache.geometry.n_sets
    home = block_addr % n_sets
    for distance in cache._all_distances:
        target = (home + distance) % n_sets
        for block in cache.sets[target]:
            if block.valid and block.is_replica and block.block_addr == block_addr:
                return block
    return None


def _check_agreement(cache, addr_pool):
    for addr in addr_pool:
        block_addr = addr >> cache.geometry.block_offset_bits
        assert cache.probe(block_addr) is _linear_probe(cache, block_addr)
        assert cache._probe_replica(block_addr) is _linear_probe_replica(
            cache, block_addr
        )


def _make_icr(**overrides):
    defaults = dict(
        decay_window=0,
        leave_replicas_on_evict=True,
        victim_policy=VictimPolicy.DEAD_FIRST,
    )
    defaults.update(overrides)
    return ICRCache(make_config("ICR-P-PS(S)", **defaults))


@pytest.mark.parametrize(
    "overrides",
    [
        {},
        {"replica_distances": (1, "N/4", "N/2")},
        {"victim_policy": VictimPolicy.REPLICA_FIRST},
        {"leave_replicas_on_evict": False},
        {"replacement": "plru"},
    ],
    ids=["default", "multi-distance", "replica-first", "drop-replicas", "plru"],
)
def test_indexed_lookup_matches_linear_scan(overrides):
    """Randomized access/evict sequences: index == linear scan, always."""
    cache = _make_icr(**overrides)
    rng = random.Random(1234)
    # A pool small enough that sets conflict, replicas form, and leftover
    # replicas get promoted or stranded.
    pool = [rng.randrange(1 << 18) & ~7 for _ in range(400)]
    for now in range(4_000):
        roll = rng.random()
        if roll < 0.9:
            cache.access(rng.choice(pool), rng.random() < 0.4, now)
        else:
            # Evict a random frame directly — primaries, replicas and
            # invalid frames alike — to exercise index invalidation.
            set_index = rng.randrange(cache.geometry.n_sets)
            way = rng.randrange(cache.geometry.associativity)
            cache.evict(cache.sets[set_index][way])
        if now % 250 == 0:
            _check_agreement(cache, rng.sample(pool, 40))
    _check_agreement(cache, pool)
    # Sanity: the sequence actually created replicas at some point.
    assert cache.stats.replication_successes > 0


def test_index_survives_checkpoint_restore():
    """Bulk restores bypass the fill paths; rebuild_tag_index resyncs."""
    from repro.cache.checkpoint import restore_checkpoint, take_checkpoint

    cache = _make_icr()
    rng = random.Random(99)
    pool = [rng.randrange(1 << 18) & ~7 for _ in range(200)]
    for now in range(2_000):
        cache.access(rng.choice(pool), rng.random() < 0.4, now)
    snap = take_checkpoint(cache)
    other = _make_icr()
    restore_checkpoint(other, snap)
    _check_agreement(other, pool)


# ---------------------------------------------------------------------------
# shared-trace memoization
# ---------------------------------------------------------------------------


@pytest.fixture
def trace_cache(tmp_path, monkeypatch):
    """Isolated on-disk trace cache; the in-process memo is cleared."""
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
    trace_for.cache_clear()
    yield tmp_path
    trace_for.cache_clear()


def test_trace_for_memoizes_in_process(trace_cache):
    profile = profile_for("gzip")
    assert trace_for(profile, 2_000) is trace_for(profile, 2_000)


def test_trace_for_disk_round_trip_equal_by_value(trace_cache):
    profile = profile_for("gzip")
    first = trace_for(profile, 2_000)
    assert list(trace_cache.glob("*.icrt")), "trace was not persisted"
    trace_for.cache_clear()  # force the second call through the disk layer
    second = trace_for(profile, 2_000)
    assert second is not first
    assert second == first


def test_trace_for_distinct_when_seed_changes(trace_cache):
    profile = profile_for("gzip")
    assert trace_for(profile, 2_000, seed_offset=0) != trace_for(
        profile, 2_000, seed_offset=1
    )
    assert trace_key(profile, 2_000, 0) != trace_key(profile, 2_000, 1)


def test_trace_key_stable_across_calls(trace_cache):
    profile = profile_for("mcf")
    assert trace_key(profile, 5_000) == trace_key(profile, 5_000)
    assert trace_key(profile, 5_000) != trace_key(profile, 5_001)


def test_corrupt_trace_file_is_regenerated(trace_cache):
    profile = profile_for("gzip")
    first = trace_for(profile, 1_000)
    path = next(trace_cache.glob("*.icrt"))
    path.write_bytes(b"not a trace")
    trace_for.cache_clear()
    assert trace_for(profile, 1_000) == first


def test_trace_cache_disabled_by_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
    assert trace_cache_dir() is None
    trace_for.cache_clear()
    trace_for(profile_for("gzip"), 1_000)
    trace_for.cache_clear()
    assert not list(tmp_path.glob("*.icrt"))
