"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "mcf" in out
        assert "ICR-P-PS(S)" in out
        assert "fig14" in out


class TestRun:
    def test_basic_run(self, capsys):
        assert main(["run", "gzip", "BaseP", "--instructions", "5000"]) == 0
        out = capsys.readouterr().out
        assert "BaseP on gzip" in out
        assert "miss rate" in out

    def test_scheme_knobs(self, capsys):
        code = main(
            [
                "run", "gzip", "ICR-P-PS(S)",
                "--instructions", "5000",
                "--decay-window", "1000",
                "--victim", "dead-first",
                "--leave-replicas",
            ]
        )
        assert code == 0
        assert "loads w/ replica" in capsys.readouterr().out

    def test_error_injection_output(self, capsys):
        main(
            [
                "run", "vortex", "BaseP",
                "--instructions", "10000",
                "--error-rate", "1e-2",
            ]
        )
        out = capsys.readouterr().out
        assert "injected" in out

    def test_vulnerability_output(self, capsys):
        main(["run", "gzip", "BaseP", "--instructions", "5000", "--vulnerability"])
        assert "AVF" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nosuch", "BaseP"])


class TestCompare:
    def test_table_has_all_schemes(self, capsys):
        assert main(["compare", "gzip", "--instructions", "5000"]) == 0
        out = capsys.readouterr().out
        for scheme in ("BaseP", "BaseECC", "ICR-ECC-PP(LS)"):
            assert scheme in out

    def test_relaxed_flag(self, capsys):
        assert main(["compare", "gzip", "--instructions", "5000", "--relaxed"]) == 0


class TestFigure:
    def test_runs_a_figure(self, capsys):
        assert main(["figure", "fig10", "--instructions", "8000"]) == 0
        out = capsys.readouterr().out
        assert "decay window" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
