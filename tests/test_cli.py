"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI tests out of the user's real ~/.cache/repro."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "mcf" in out
        assert "ICR-P-PS(S)" in out
        assert "fig14" in out


class TestRun:
    def test_basic_run(self, capsys):
        assert main(["run", "gzip", "BaseP", "--instructions", "5000"]) == 0
        out = capsys.readouterr().out
        assert "BaseP on gzip" in out
        assert "miss rate" in out

    def test_scheme_knobs(self, capsys):
        code = main(
            [
                "run", "gzip", "ICR-P-PS(S)",
                "--instructions", "5000",
                "--decay-window", "1000",
                "--victim", "dead-first",
                "--leave-replicas",
            ]
        )
        assert code == 0
        assert "loads w/ replica" in capsys.readouterr().out

    def test_error_injection_output(self, capsys):
        main(
            [
                "run", "vortex", "BaseP",
                "--instructions", "10000",
                "--error-rate", "1e-2",
            ]
        )
        out = capsys.readouterr().out
        assert "injected" in out

    def test_vulnerability_output(self, capsys):
        main(["run", "gzip", "BaseP", "--instructions", "5000", "--vulnerability"])
        assert "AVF" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nosuch", "BaseP"])


class TestCompare:
    def test_table_has_all_schemes(self, capsys):
        assert main(["compare", "gzip", "--instructions", "5000"]) == 0
        out = capsys.readouterr().out
        for scheme in ("BaseP", "BaseECC", "ICR-ECC-PP(LS)"):
            assert scheme in out

    def test_relaxed_flag(self, capsys):
        assert main(["compare", "gzip", "--instructions", "5000", "--relaxed"]) == 0


class TestFigure:
    def test_runs_a_figure(self, capsys):
        assert main(["figure", "fig10", "--instructions", "8000"]) == 0
        out = capsys.readouterr().out
        assert "decay window" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestRunnerFlags:
    """--jobs / --no-cache / --cache-dir on run, compare and figure."""

    def test_jobs1_run_stays_in_process(self, capsys, monkeypatch):
        import repro.harness.runner as runner_mod

        monkeypatch.setattr(
            runner_mod,
            "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("pool used")),
        )
        code = main(
            ["run", "gzip", "BaseP", "--instructions", "5000", "--jobs", "1"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "BaseP on gzip" in captured.out
        assert "[runner]" in captured.err

    def test_run_reports_metrics_on_stderr_only(self, capsys):
        main(["run", "gzip", "BaseP", "--instructions", "5000", "--no-cache"])
        captured = capsys.readouterr()
        assert "[runner]" not in captured.out
        assert "1 jobs" in captured.err

    def test_figure_repeat_hits_cache_with_identical_stdout(
        self, capsys, tmp_path
    ):
        argv = [
            "figure", "fig10",
            "--instructions", "5000",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "cache hits" in second.err
        assert "0 simulated" in second.err

    def test_no_cache_leaves_cache_dir_empty(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        main(
            [
                "run", "gzip", "BaseP",
                "--instructions", "5000",
                "--no-cache",
                "--cache-dir", str(cache_dir),
            ]
        )
        assert not cache_dir.exists()

    def test_compare_parallel_matches_serial(self, capsys):
        base = ["compare", "gzip", "--instructions", "5000", "--no-cache"]
        assert main(base + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestUnknownSchemeExitCode:
    """Unknown schemes exit 2 uniformly, with the registry's catalog."""

    def test_run_unknown_scheme_exits_2(self, capsys):
        assert main(["run", "gzip", "no-such-scheme"]) == 2
        err = capsys.readouterr().err
        assert "no-such-scheme" in err
        assert "ICR-P-PS(S)" in err  # the catalog is listed

    def test_campaign_unknown_scheme_exits_2(self, capsys):
        code = main(
            ["campaign", "--benchmark", "gzip", "--schemes", "no-such-scheme"]
        )
        assert code == 2
        assert "registered schemes" in capsys.readouterr().err

    def test_submit_unknown_scheme_exits_2_before_connecting(self, capsys):
        # The spec is validated locally, so this needs no server.
        code = main(
            ["submit", "gzip", "no-such-scheme", "--port", "1"]
        )
        assert code == 2
        assert "no-such-scheme" in capsys.readouterr().err


class TestServiceCommands:
    def test_submit_unreachable_server_exits_1(self, capsys):
        code = main(
            ["submit", "gzip", "BaseP", "--port", "9", "--no-wait"]
        )
        assert code == 1
        assert "cannot reach server" in capsys.readouterr().err

    def test_status_unreachable_server_exits_1(self, capsys):
        assert main(["status", "--port", "9"]) == 1
        assert "cannot reach server" in capsys.readouterr().err

    def test_submit_and_status_against_live_server(self, tmp_path, capsys):
        from repro.service import ServiceConfig, ServiceThread

        config = ServiceConfig(
            port=0, workers=1, queue_dir=tmp_path / "queue"
        )
        with ServiceThread(config) as st:
            port = str(st.port)
            code = main(
                [
                    "submit", "gzip", "BaseP",
                    "--instructions", "5000", "--port", port,
                ]
            )
            captured = capsys.readouterr()
            assert code == 0
            assert "BaseP on gzip" in captured.out
            assert main(["status", "--port", port]) == 0
            captured = capsys.readouterr()
            assert "experiment  done" in captured.out
            assert "1 submissions" in captured.err
