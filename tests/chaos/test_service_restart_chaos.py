"""Service killed mid-campaign resumes from its checkpoint on restart.

The scenario runs the real server in a subprocess, SIGKILLs it after at
least one trial is committed to the campaign checkpoint, restarts it on
the same queue/cache directories, and then proves from the outside:

* the restarted server finishes the job without a client resubmission;
* the ``resumed`` SSE event reports ``trials_committed >= 1``;
* the second life's runner submitted *fewer* jobs than the full trial
  budget (the checkpoint actually saved work — no silent full re-run);
* the final report is byte-identical to an undisturbed reference run.

This is the slowest chaos scenario (two server processes), hence its
own module — everything in-process lives in ``test_chaos_scenarios``.
"""

from repro.chaos import runtime
from repro.chaos.scenarios import run_scenario


def test_service_restart_resumes_from_checkpoint(tmp_path):
    runtime.uninstall()
    try:
        result = run_scenario("service-restart", workdir=tmp_path, seed=0)
    finally:
        runtime.uninstall()
    assert result.passed, result.detail
    assert "resumed" in result.detail
