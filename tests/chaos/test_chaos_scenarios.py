"""The blocking chaos suite: every local scenario must pass.

Each scenario injects one fault family from the fault model (DESIGN.md
§15) into the real execution stack and demands (a) the recovery ledger
prove the fault actually fired and (b) the final campaign report be
byte-identical to an undisturbed reference run.  The scenarios live in
:mod:`repro.chaos.scenarios`; this module is the CI gate around them.

The service-restart scenario (subprocess kill + resume) runs in its own
module, :mod:`tests.chaos.test_service_restart_chaos`, because it is an
order of magnitude slower than the in-process ones.
"""

import json

import pytest

from repro.chaos import runtime
from repro.chaos.plan import FAULT_KINDS, FaultPlan
from repro.chaos.scenarios import SCENARIOS, run_scenario, run_suite

#: Everything except the slow subprocess scenario.
LOCAL_SCENARIOS = [name for name in SCENARIOS if name != "service-restart"]


@pytest.fixture(autouse=True)
def _clean_runtime():
    """Never leak an installed plan between tests (env + cache)."""
    runtime.uninstall()
    yield
    runtime.uninstall()


class TestScenarios:
    @pytest.mark.parametrize("name", LOCAL_SCENARIOS)
    def test_scenario_passes(self, name, tmp_path):
        result = run_scenario(name, workdir=tmp_path, seed=0)
        assert result.passed, f"{name}: {result.detail}"
        assert result.duration >= 0.0

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_suite(["no-such-scenario"], workdir=tmp_path)

    def test_registry_covers_fault_model(self):
        # One scenario per fault family, plus lease takeover and the
        # service restart (which are protocol faults, not plan kinds).
        assert set(SCENARIOS) == {
            "cache-corruption",
            "worker-crash",
            "forced-timeout",
            "torn-checkpoint",
            "disk-full",
            "lease-takeover",
            "service-restart",
        }


class TestFaultPlan:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=7, kill_rate=0.5)
        again = FaultPlan(seed=7, kill_rate=0.5)
        keys = [f"trial-{i}" for i in range(200)]
        assert [plan.decide("kill", k) for k in keys] == [
            again.decide("kill", k) for k in keys
        ]

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=1, kill_rate=0.5)
        b = FaultPlan(seed=2, kill_rate=0.5)
        keys = [f"trial-{i}" for i in range(200)]
        assert [a.decide("kill", k) for k in keys] != [
            b.decide("kill", k) for k in keys
        ]

    def test_rate_extremes(self):
        always = FaultPlan(seed=0, timeout_rate=1.0)
        never = FaultPlan(seed=0, timeout_rate=0.0)
        for i in range(50):
            assert always.decide("timeout", f"k{i}")
            assert not never.decide("timeout", f"k{i}")

    def test_rate_roughly_honored(self):
        plan = FaultPlan(seed=3, corrupt_rate=0.25)
        hits = sum(plan.decide("corrupt", f"k{i}") for i in range(2000))
        assert 350 < hits < 650  # ~500 expected; hash, not luck

    def test_json_round_trip(self):
        plan = FaultPlan(seed=9, kill_rate=0.1, disk_full_rate=0.9)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert json.loads(plan.to_json())["seed"] == 9

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=0, kill_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, corrupt_rate=-0.1)

    def test_unknown_kind_rejected(self):
        plan = FaultPlan(seed=0)
        with pytest.raises(ValueError):
            plan.decide("meteor-strike", "key")

    def test_kind_registry_matches_plan_fields(self):
        plan = FaultPlan(seed=0)
        for kind in FAULT_KINDS:
            assert plan.decide(kind, "key") in (False, True)


class TestRuntime:
    def test_inactive_hooks_are_noops(self, tmp_path):
        assert runtime.active() is None
        assert runtime.check_trial("k") is None
        assert not runtime.damage_cache_entry("k", tmp_path / "x")
        runtime.check_disk_full("cache", "k")  # must not raise
        assert not runtime.tear_checkpoint("k")
        assert runtime.summary() is None

    def test_fault_fires_exactly_once(self, tmp_path):
        runtime.install(FaultPlan(seed=0, timeout_rate=1.0), tmp_path)
        assert runtime.check_trial("trial-A") == "timeout"
        # The retry of the same site must sail through — this is the
        # crux of the byte-identical-report contract.
        assert runtime.check_trial("trial-A") is None
        assert runtime.check_trial("trial-B") == "timeout"
        assert runtime.fired()["timeout"] == 2

    def test_kill_wins_over_timeout(self, tmp_path):
        runtime.install(
            FaultPlan(seed=0, kill_rate=1.0, timeout_rate=1.0), tmp_path
        )
        assert runtime.check_trial("trial-A") == "kill"

    def test_plan_adopted_from_environment(self, tmp_path, monkeypatch):
        plan = FaultPlan(seed=5, corrupt_rate=1.0)
        monkeypatch.setenv(runtime.ENV_PLAN, plan.to_json())
        monkeypatch.setenv(runtime.ENV_SCRATCH, str(tmp_path))
        runtime._STATE.clear()  # simulate a fresh pool worker
        adopted = runtime.active()
        assert adopted == plan

    def test_disk_full_raises_enospc_once(self, tmp_path):
        runtime.install(FaultPlan(seed=0, disk_full_rate=1.0), tmp_path)
        with pytest.raises(OSError) as excinfo:
            runtime.check_disk_full("cache", "key-1")
        assert excinfo.value.errno == 28
        runtime.check_disk_full("cache", "key-1")  # spent: no raise
        with pytest.raises(OSError):
            runtime.check_disk_full("checkpoint", "key-1")  # new site

    def test_damage_truncates_and_corrupts(self, tmp_path):
        runtime.install(
            FaultPlan(seed=0, truncate_rate=1.0, corrupt_rate=1.0), tmp_path
        )
        victim = tmp_path / "entry.json"
        victim.write_text('{"ok": true}')
        assert runtime.damage_cache_entry("k", victim)
        assert victim.read_text() == ""  # truncate wins first
        victim.write_text('{"ok": true}')
        assert runtime.damage_cache_entry("k", victim)
        assert victim.read_bytes().startswith(b"\x00garbage\x00")
