"""Property test: the job queue survives SIGKILL at any point of save().

``PersistentJobQueue.save`` is temp-file + ``os.replace``.  A process
killed at *any* instruction of that sequence must leave the queue
loadable with either the old record or the new one — never a torn file,
never a crash on load.  We emulate every crash point by reproducing the
on-disk state it leaves behind (the only thing a SIGKILL can influence)
and asserting ``load()``'s verdict, with Hypothesis driving how much of
the temp file made it to disk before the "kill".
"""

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.jobs import QUEUED, RUNNING, JobRecord, PersistentJobQueue


def _record(state=QUEUED, attempts=0):
    return JobRecord(
        id="job-aaaa",
        kind="experiment",
        payload={"spec": {"benchmark": "gzip"}},
        state=state,
        created=100.0,
        attempts=attempts,
    )


def _tmp_path(queue, record):
    return queue.path_for(record.id).with_suffix(f".tmp.{os.getpid()}")


def _loaded(root):
    """A *fresh* queue's view of the directory (the post-crash restart)."""
    return {r.id: r for r in PersistentJobQueue(root).load()}


class TestCrashPoints:
    def test_crash_before_tmp_write(self, tmp_path):
        queue = PersistentJobQueue(tmp_path)
        queue.save(_record(attempts=0))
        # Killed before the temp file existed: old record intact.
        records = _loaded(tmp_path)
        assert records["job-aaaa"].attempts == 0

    @settings(max_examples=30, deadline=None)
    @given(cut=st.floats(min_value=0.0, max_value=1.0))
    def test_crash_mid_tmp_write_keeps_old_record(self, tmp_path_factory, cut):
        root = tmp_path_factory.mktemp("queue")
        queue = PersistentJobQueue(root)
        old = _record(attempts=1)
        queue.save(old)
        new_bytes = json.dumps(_record(attempts=2).to_dict()).encode()
        # SIGKILL lands with an arbitrary prefix of the new record in
        # the temp file; the committed .json is untouched.
        _tmp_path(queue, old).write_bytes(
            new_bytes[: int(cut * len(new_bytes))]
        )
        records = _loaded(root)
        assert records["job-aaaa"].attempts == 1
        # The restart swept the orphaned temp file.
        assert list(root.glob("*.tmp.*")) == []

    def test_crash_after_tmp_before_replace(self, tmp_path):
        queue = PersistentJobQueue(tmp_path)
        old = _record(attempts=1)
        queue.save(old)
        new = _record(attempts=2)
        _tmp_path(queue, old).write_text(json.dumps(new.to_dict()))
        records = _loaded(tmp_path)
        assert records["job-aaaa"].attempts == 1  # replace never ran
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_crash_after_replace_keeps_new_record(self, tmp_path):
        queue = PersistentJobQueue(tmp_path)
        queue.save(_record(attempts=1))
        queue.save(_record(attempts=2))  # full save() == crash after replace
        records = _loaded(tmp_path)
        assert records["job-aaaa"].attempts == 2

    def test_running_job_demoted_to_queued_on_load(self, tmp_path):
        queue = PersistentJobQueue(tmp_path)
        queue.save(_record(state=RUNNING))
        records = _loaded(tmp_path)
        assert records["job-aaaa"].state == QUEUED
        assert records["job-aaaa"].started is None

    @settings(max_examples=30, deadline=None)
    @given(cut=st.floats(min_value=0.0, max_value=0.99))
    def test_torn_committed_file_is_skipped_not_raised(
        self, tmp_path_factory, cut
    ):
        # Belt and braces: even if something tears the committed .json
        # itself (bit rot, a non-atomic copy), load() skips it instead
        # of bricking the queue — and healthy neighbours still load.
        root = tmp_path_factory.mktemp("queue")
        queue = PersistentJobQueue(root)
        good = JobRecord(id="job-good", kind="experiment", payload={})
        queue.save(good)
        payload = json.dumps(_record().to_dict())
        torn = payload[: int(cut * len(payload))]
        if torn != payload:  # only plant the file when actually torn
            (root / "job-aaaa.json").write_text(torn)
        records = _loaded(root)
        assert "job-good" in records
