"""The per-cell circuit breaker: systematic crashes stop early, identically.

A cell whose trials *all* exhaust their retry budget (a bogus scheme
knob, a broken native build, a poisoned input) should be declared
broken after ``breaker_threshold`` consecutive exhausted trials instead
of grinding through — and retrying — its entire trial budget.  Because
the breaker is a pure function of the committed records, consulted only
at batch-aligned counts, the round and work-stealing schedulers must
trip it at exactly the same record and emit byte-identical reports.
"""

import pytest

from repro import recovery
from repro.harness.campaign import CampaignConfig, CampaignEngine, create_engine
from repro.harness.runner import ParallelRunner


def _crashing_config(**over):
    """Every ICR trial crashes in the worker (bogus scheme knob)."""
    base = dict(
        benchmarks=("gzip",),
        schemes=("ICR-P-PS(S)",),
        error_rates=(1e-2,),
        trials=12,
        batch_size=3,
        max_trial_retries=0,
        breaker_threshold=3,
        n_instructions=2_500,
        scheme_kwargs={"nosuch_knob": 1},
    )
    base.update(over)
    return CampaignConfig(**base)


class TestBreakerTrips:
    def test_breaker_fails_cell_early_with_diagnostic(self):
        before = recovery.counter("breaker_trips")
        engine = CampaignEngine(_crashing_config())
        report = engine.run()
        (outcome,) = report.outcomes
        assert outcome.broken is not None
        assert "circuit breaker" in outcome.broken
        # Tripped at the first batch boundary: 3 records, not 12.
        assert len(outcome.records) == 3
        assert outcome.summary(engine.config)["broken"] == outcome.broken
        assert engine.telemetry()["breaker_trips"] == 1
        assert recovery.counter("breaker_trips") == before + 1

    def test_zero_threshold_disables_breaker(self):
        config = _crashing_config(breaker_threshold=0, trials=6)
        report = CampaignEngine(config).run()
        (outcome,) = report.outcomes
        assert outcome.broken is None
        assert len(outcome.records) == 6  # ground through the budget

    def test_healthy_cell_never_trips(self):
        config = _crashing_config(
            schemes=("BaseP",),  # ignores the bogus ICR knob
            trials=6,
        )
        report = CampaignEngine(config).run()
        (outcome,) = report.outcomes
        assert outcome.broken is None
        assert len(outcome.ok_records()) == 6

    def test_round_and_stealing_reports_identical(self):
        config = _crashing_config(
            schemes=("BaseP", "ICR-P-PS(S)"),
            trials=6,
        )
        round_report = create_engine(
            config, ParallelRunner(jobs=1), scheduler="round"
        ).run()
        stealing_report = create_engine(
            config, ParallelRunner(jobs=2), scheduler="stealing"
        ).run()
        assert round_report.to_json() == stealing_report.to_json()
        by_scheme = {o.cell.scheme: o for o in round_report.outcomes}
        assert by_scheme["ICR-P-PS(S)"].broken is not None
        assert by_scheme["BaseP"].broken is None

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="breaker_threshold"):
            _crashing_config(breaker_threshold=-1)
