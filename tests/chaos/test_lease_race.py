"""Regression tests for the FileLease double-takeover race.

The old takeover protocol (observe stale → ``unlink`` → create) let two
engines both "win": A unlinks the stale file and creates a fresh lease,
then B's queued unlink removes *A's* lease and B creates its own — two
concurrent holders of the same cell.  The fixed protocol retires the
stale file with an atomic ``os.rename`` to a unique graveyard name, so
exactly one racer proceeds to the ``O_EXCL`` create and a *fresh* lease
can never be swept away.  These tests hammer exactly that interleaving.
"""

import json
import os
import threading
import time

from repro import recovery
from repro.harness.cache import FileLease

TTL = 5.0


def _make_stale(path, owner="ghost:dead:0"):
    path.write_text(json.dumps({"owner": owner, "pid": 0}))
    stale = time.time() - 10 * TTL
    os.utime(path, times=(stale, stale))


class TestDoubleTakeoverRace:
    def test_concurrent_takeover_yields_at_most_one_holder(self, tmp_path):
        # Many iterations: the race window is one syscall wide, so a
        # single round would almost never catch a regression.
        for i in range(25):
            path = tmp_path / f"cell-{i}.lease"
            _make_stale(path)
            leases = [
                FileLease(path, f"racer-{j}:{os.getpid()}:{i}", ttl=TTL)
                for j in range(4)
            ]
            barrier = threading.Barrier(len(leases))
            wins = [False] * len(leases)

            def attempt(idx, lease):
                barrier.wait()
                wins[idx] = lease.acquire()

            threads = [
                threading.Thread(target=attempt, args=(j, lease))
                for j, lease in enumerate(leases)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert sum(wins), f"round {i}: stale lease never broken"
            assert sum(wins) == 1, f"round {i}: {sum(wins)} concurrent holders"
            winner = leases[wins.index(True)]
            assert winner.holder() == winner.owner
            # No graveyard litter left behind.
            assert list(tmp_path.glob("*.broken.*")) == []

    def test_fresh_lease_is_never_broken(self, tmp_path):
        path = tmp_path / "cell.lease"
        holder = FileLease(path, "alive:1:0", ttl=TTL)
        assert holder.acquire()
        rival = FileLease(path, "rival:2:0", ttl=TTL)
        assert not rival._break_stale()
        assert not rival.acquire()
        assert holder.held()

    def test_renew_between_staleness_check_and_rename_is_honored(self, tmp_path):
        # _break_stale re-verifies the mtime *after* the rename (rename
        # preserves it) and restores the file when a renew slipped in.
        path = tmp_path / "cell.lease"
        holder = FileLease(path, "alive:1:0", ttl=TTL)
        assert holder.acquire()
        rival = FileLease(path, "rival:2:0", ttl=TTL)
        assert not rival._break_stale()  # fresh mtime → restored
        assert path.exists()
        assert holder.held()

    def test_takeover_is_counted(self, tmp_path):
        before = recovery.counter("lease_takeovers")
        path = tmp_path / "cell.lease"
        _make_stale(path)
        taker = FileLease(path, "taker:1:0", ttl=TTL)
        assert taker.acquire()
        assert recovery.counter("lease_takeovers") == before + 1
