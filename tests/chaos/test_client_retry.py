"""ServiceClient retry/backoff and SSE reconnection, against a fake server.

A tiny scripted HTTP server stands in for a service that is overloaded
or restarting: it answers each request from a prearranged script (503,
connection drop, partial SSE stream, ...).  The client contract under
test:

* transient failures (gateway-band statuses, connection errors) are
  retried with backoff and counted in the recovery ledger;
* non-retryable statuses (validation 4xx) surface immediately;
* a dropped event stream is reconnected with ``?since=<next seq>`` and
  the caller sees one gapless, duplicate-free sequence.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import pytest

from repro import recovery
from repro.service.client import ServiceClient, ServiceError


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Answers GETs by popping the server's script; records each hit."""

    def do_GET(self):
        server = self.server
        parsed = urlparse(self.path)
        server.hits.append(self.path)
        step = server.script.pop(0) if server.script else ("json", 200, {})
        kind = step[0]
        if kind == "json":
            _, status, payload = step
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif kind == "sse":
            # Emit events starting at ?since= (or the scripted start
            # override), then drop the connection after ``count``
            # events (simulating a server death mid-stream).
            _, count, terminal = step[:3]
            since = int(parse_qs(parsed.query).get("since", ["0"])[0])
            if len(step) > 3:
                since = step[3]
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.end_headers()
            for offset in range(count):
                seq = since + offset
                name = terminal if offset == count - 1 and terminal else "progress"
                event = {"seq": seq, "event": name}
                self.wfile.write(f"data: {json.dumps(event)}\n\n".encode())

    def log_message(self, *args):  # keep pytest output clean
        pass


@pytest.fixture
def scripted_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = []
    server.hits = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _client(server, **kwargs):
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff", 0.01)
    kwargs.setdefault("jitter", 0.0)
    kwargs.setdefault("timeout", 5.0)
    return ServiceClient("127.0.0.1", server.server_address[1], **kwargs)


class TestRequestRetry:
    def test_retries_through_503_and_counts_them(self, scripted_server):
        scripted_server.script = [
            ("json", 503, {"error": "restarting"}),
            ("json", 503, {"error": "restarting"}),
            ("json", 200, {"recovery": {}}),
        ]
        before = recovery.counter("client_retries")
        payload = _client(scripted_server).telemetry()
        assert payload == {"recovery": {}}
        assert len(scripted_server.hits) == 3
        assert recovery.counter("client_retries") == before + 2

    def test_retries_exhausted_raises_last_error(self, scripted_server):
        scripted_server.script = [
            ("json", 503, {"error": "still down"}) for _ in range(3)
        ]
        with pytest.raises(ServiceError) as excinfo:
            _client(scripted_server).telemetry()
        assert excinfo.value.status == 503
        assert excinfo.value.retryable

    def test_validation_error_is_not_retried(self, scripted_server):
        scripted_server.script = [("json", 400, {"error": "bad spec"})]
        with pytest.raises(ServiceError) as excinfo:
            _client(scripted_server).telemetry()
        assert excinfo.value.status == 400
        assert not excinfo.value.retryable
        assert len(scripted_server.hits) == 1

    def test_connection_refused_is_retried_then_raised(self):
        # Nothing listens on this socket: every attempt is an OSError.
        client = ServiceClient(
            "127.0.0.1", 1, retries=1, backoff=0.01, jitter=0.0, timeout=0.5
        )
        before = recovery.counter("client_retries")
        with pytest.raises(OSError):
            client.telemetry()
        assert recovery.counter("client_retries") == before + 1

    def test_health_never_raises(self):
        client = ServiceClient("127.0.0.1", 1, timeout=0.5)
        assert client.health() is False


class TestEventStreamReconnect:
    def test_dropped_stream_resumes_with_since(self, scripted_server):
        # First connection dies after two events; the reconnect must
        # ask for ?since=2 and run to the terminal event.
        scripted_server.script = [
            ("sse", 2, None),
            ("sse", 2, "done"),
        ]
        before = recovery.counter("sse_reconnects")
        events = list(_client(scripted_server).events("j1", timeout=10.0))
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert events[-1]["event"] == "done"
        assert recovery.counter("sse_reconnects") == before + 1
        sinces = [
            parse_qs(urlparse(path).query)["since"][0]
            for path in scripted_server.hits
        ]
        assert sinces == ["0", "2"]

    def test_duplicate_events_are_filtered(self, scripted_server):
        # A server replaying from an older offset must not surface
        # already-delivered events twice.
        scripted_server.script = [
            ("sse", 3, None),  # seqs 0, 1, 2, then the connection dies
            ("sse", 4, "done", 1),  # replays from seq 1: overlap 1, 2
        ]
        events = list(
            _client(scripted_server).events("j1", since=0, timeout=10.0)
        )
        assert [e["seq"] for e in events] == [0, 1, 2, 3, 4]

    def test_no_reconnect_when_disabled(self, scripted_server):
        scripted_server.script = [("sse", 2, None)]
        events = list(
            _client(scripted_server).events("j1", timeout=10.0, reconnect=False)
        )
        assert len(events) == 2
        assert len(scripted_server.hits) == 1

    def test_404_surfaces_immediately(self, scripted_server):
        scripted_server.script = [("json", 404, {"error": "no such job"})]
        with pytest.raises(ServiceError) as excinfo:
            list(_client(scripted_server).events("nope", timeout=5.0))
        assert excinfo.value.status == 404
        assert len(scripted_server.hits) == 1
