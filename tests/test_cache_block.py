"""Tests for cache-line state."""

import pytest

from repro.cache.block import CacheBlock
from repro.coding.protection import ProtectionKind


class TestLifecycle:
    def test_fresh_block_invalid(self):
        block = CacheBlock()
        assert not block.valid
        assert block.block_addr == -1

    def test_fill_sets_state(self):
        block = CacheBlock()
        block.fill(0x123, 50, is_replica=True, dirty=False)
        assert block.valid
        assert block.block_addr == 0x123
        assert block.is_replica
        assert block.last_access_cycle == 50

    def test_invalidate_clears_everything(self):
        block = CacheBlock()
        block.fill(0x123, 50, dirty=True)
        block.invalidate()
        assert not block.valid
        assert not block.dirty
        assert block.replica_refs == []
        assert block.primary_ref is None

    def test_fill_resets_links(self):
        block = CacheBlock()
        other = CacheBlock()
        block.fill(0x1, 0)
        block.replica_refs.append(other)
        block.fill(0x2, 1)
        assert block.replica_refs == []

    def test_touch_is_monotonic(self):
        block = CacheBlock()
        block.fill(0x1, 100)
        block.touch(50)  # out-of-order timestamp must not rewind
        assert block.last_access_cycle == 100
        block.touch(200)
        assert block.last_access_cycle == 200

    def test_has_replica(self):
        block = CacheBlock()
        block.fill(0x1, 0)
        assert not block.has_replica
        block.replica_refs.append(CacheBlock())
        assert block.has_replica


class TestWordStorage:
    def test_materialize_words(self):
        block = CacheBlock()
        block.fill(0x1, 0)
        values = list(range(8))
        block.materialize_words(ProtectionKind.PARITY, values)
        assert block.golden == values
        assert [w.raw_data for w in block.words] == values

    def test_write_word_updates_golden(self):
        block = CacheBlock()
        block.fill(0x1, 0)
        block.materialize_words(ProtectionKind.PARITY, [0] * 8)
        block.write_word(3, 0xFF)
        assert block.golden[3] == 0xFF
        assert block.words[3].raw_data == 0xFF

    def test_write_word_without_storage_raises(self):
        block = CacheBlock()
        block.fill(0x1, 0)
        with pytest.raises(RuntimeError):
            block.write_word(0, 1)

    def test_reprotect_reencodes(self):
        block = CacheBlock()
        block.fill(0x1, 0)
        block.materialize_words(ProtectionKind.ECC, [7] * 8)
        block.reprotect(ProtectionKind.PARITY)
        assert block.protection is ProtectionKind.PARITY
        assert all(w.kind is ProtectionKind.PARITY for w in block.words)
        assert all(w.raw_data == 7 for w in block.words)

    def test_reprotect_locks_in_latent_corruption(self):
        """The recompute runs over current (possibly bad) data — by design."""
        block = CacheBlock()
        block.fill(0x1, 0)
        block.materialize_words(ProtectionKind.PARITY, [0] * 8)
        block.words[0].flip_data_bit(0)  # latent error
        block.reprotect(ProtectionKind.ECC)
        outcome = block.words[0].read()
        assert not outcome.error_detected  # silently re-encoded
        assert outcome.data != block.golden[0]  # observable via golden

    def test_reprotect_without_words_only_changes_kind(self):
        block = CacheBlock()
        block.fill(0x1, 0)
        block.reprotect(ProtectionKind.ECC)
        assert block.protection is ProtectionKind.ECC
        assert block.words is None
