"""repro.api.check_scheme: the conformance gate for external schemes.

A third-party scheme package runs ``check_scheme`` in its own test suite
before calling ``register``; these tests pin what the checker accepts
(every built-in model, plus a from-scratch minimal model written against
nothing but the public protocol) and what it reports (each protocol
break named in plain text, never an exception).
"""

from dataclasses import dataclass, field

import pytest

from repro.api import check_scheme
from repro.cache.set_assoc import CacheGeometry
from repro.core.protocol import DL1Outcome
from repro.core.registry import registered_schemes, scheme_entry


# -- a minimal third-party-style model (public surface only) -----------


@dataclass
class _TinyStats:
    """The least a stats object must do: snapshot() -> mapping."""

    accesses: int = 0
    hits: int = 0

    def snapshot(self) -> dict:
        return {"accesses": self.accesses, "hits": self.hits}


@dataclass
class _TinyConfig:
    name: str = "tiny-direct-mapped"
    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(4 * 1024, 1, 32)
    )
    track_data: bool = False


class TinyDirectMapped:
    """A direct-mapped dL1 with no replication — the protocol floor."""

    def __init__(self, **_kwargs):
        self.config = _TinyConfig()
        self.geometry = self.config.geometry
        self.stats = _TinyStats()
        self.write_policy = "writeback"
        self._tags: dict[int, int] = {}
        self._evict_hook = None
        # InjectionTarget slots (never consulted by this toy model).
        self.injector = None
        self.monitor = None
        self.scrubber = None

    def access(self, addr: int, is_write: bool, now: int) -> DL1Outcome:
        self.stats.accesses += 1
        block = addr >> 5
        index = block % self.geometry.n_sets
        hit = self._tags.get(index) == block
        if hit:
            self.stats.hits += 1
            return DL1Outcome(hit=True, latency=1)
        self._tags[index] = block
        return DL1Outcome(hit=False, latency=None)

    def set_evict_hook(self, hook) -> None:
        self._evict_hook = hook


class TestPassing:
    def test_minimal_third_party_model_passes(self):
        assert check_scheme(TinyDirectMapped) == []

    def test_prebuilt_instance_accepted(self):
        assert check_scheme(TinyDirectMapped()) == []

    @pytest.mark.parametrize("name", registered_schemes())
    def test_every_builtin_scheme_passes(self, name):
        assert check_scheme(scheme_entry(name).build) == []


class TestViolationsReported:
    def test_broken_factory_reported_not_raised(self):
        def exploding(**_kw):
            raise RuntimeError("boom")

        problems = check_scheme(exploding)
        assert len(problems) == 1
        assert "building the model failed" in problems[0]

    def test_not_a_dl1_at_all(self):
        problems = check_scheme(object())
        assert any("DataL1 protocol" in p for p in problems)

    def test_bad_write_policy_named(self):
        model = TinyDirectMapped()
        model.write_policy = "writearound"
        assert any("write_policy" in p for p in problems_of(model))

    def test_empty_name_named(self):
        model = TinyDirectMapped()
        model.config.name = ""
        assert any("config.name" in p for p in problems_of(model))

    def test_wrong_outcome_shape_caught_behaviourally(self):
        model = TinyDirectMapped()
        model.access = lambda addr, is_write, now: "hit"
        assert any("bool 'hit'" in p for p in problems_of(model))

    def test_raising_access_caught(self):
        model = TinyDirectMapped()

        def bad_access(addr, is_write, now):
            raise ZeroDivisionError

        model.access = bad_access
        assert any("access() raised" in p for p in problems_of(model))

    def test_stats_without_snapshot_named(self):
        model = TinyDirectMapped()
        model.stats = object()
        assert any("snapshot" in p for p in problems_of(model))

    def test_bad_injection_target_named(self):
        model = TinyDirectMapped()
        model.injection_target = object()
        assert any("injection_target" in p for p in problems_of(model))


def problems_of(model) -> list:
    problems = check_scheme(model)
    assert problems, "expected at least one violation"
    return problems


class TestPublicSurface:
    def test_exported_from_repro_api(self):
        import repro.api

        assert repro.api.check_scheme is check_scheme
        assert "check_scheme" in repro.api.__all__
