"""Tests for the combined branch predictor and BTB."""

import pytest

from repro.cpu.branch import CombinedPredictor


@pytest.fixture
def predictor():
    return CombinedPredictor()


class TestDirectionPrediction:
    def test_learns_always_taken(self, predictor):
        pc, target = 0x400100, 0x400000
        for _ in range(8):
            predictor.access(pc, True, target)
        assert not predictor.access(pc, True, target)

    def test_learns_always_not_taken(self, predictor):
        pc = 0x400100
        for _ in range(8):
            predictor.access(pc, False, 0)
        assert not predictor.access(pc, False, 0)

    def test_flip_mispredicts_then_relearns(self, predictor):
        pc, target = 0x400100, 0x400000
        for _ in range(8):
            predictor.access(pc, True, target)
        assert predictor.access(pc, False, 0)  # surprise direction
        for _ in range(8):
            predictor.access(pc, False, 0)
        assert not predictor.access(pc, False, 0)

    def test_two_level_learns_alternating_pattern(self, predictor):
        """A T/N/T/N pattern is history-predictable, bimodal-hopeless."""
        pc, target = 0x400200, 0x400000
        outcomes = [bool(i % 2) for i in range(400)]
        mispredicts = sum(
            predictor.access(pc, taken, target if taken else 0)
            for taken in outcomes
        )
        # After warm-up, the pattern table should nail the alternation.
        late = sum(
            predictor.access(pc, bool(i % 2), target if i % 2 else 0)
            for i in range(100)
        )
        assert late <= 5

    def test_mispredict_rate_metric(self, predictor):
        pc, target = 0x400100, 0x400000
        for _ in range(100):
            predictor.access(pc, True, target)
        assert predictor.stats.branches == 100
        assert predictor.stats.mispredict_rate < 0.1


class TestBTB:
    def test_taken_branch_without_btb_entry_mispredicts(self, predictor):
        pc, target = 0x400100, 0x400300
        # Train direction on a different PC that aliases the bimodal entry
        # but not the BTB tag, so direction is "taken" but BTB is cold.
        predictor.bimodal = [3] * len(predictor.bimodal)
        predictor.l2_table = [3] * len(predictor.l2_table)
        assert predictor.access(pc, True, target)  # BTB cold -> mispredict
        assert predictor.stats.btb_misses == 1
        assert not predictor.access(pc, True, target)  # BTB now warm

    def test_target_change_mispredicts(self, predictor):
        pc = 0x400100
        for _ in range(8):
            predictor.access(pc, True, 0x400300)
        assert predictor.access(pc, True, 0x400400)

    def test_btb_capacity_eviction(self, predictor):
        """More distinct taken branches than one BTB set holds -> misses."""
        predictor.bimodal = [3] * len(predictor.bimodal)
        predictor.l2_table = [3] * len(predictor.l2_table)
        set_stride = predictor.btb_sets * 4  # same BTB set every stride
        pcs = [0x400000 + i * set_stride for i in range(predictor.btb_ways + 1)]
        for pc in pcs:
            predictor.access(pc, True, pc + 64)
        before = predictor.stats.btb_misses
        predictor.access(pcs[0], True, pcs[0] + 64)  # evicted by LRU
        assert predictor.stats.btb_misses == before + 1

    def test_not_taken_branches_skip_btb(self, predictor):
        pc = 0x400100
        for _ in range(8):
            predictor.access(pc, False, 0)
        assert predictor.stats.btb_misses == 0


class TestValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CombinedPredictor(bimodal_entries=1000)

    def test_table_sizes_match_table1(self):
        p = CombinedPredictor()
        assert len(p.bimodal) == 2048
        assert len(p.l2_table) == 1024
        assert p.history_mask == 0xFF
        assert p.btb_sets * p.btb_ways == 512
