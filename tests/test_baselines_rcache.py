"""Tests for the Kim & Somani R-Cache comparator."""

import pytest

from repro.baselines.rcache import RCache, run_rcache_baseline


class TestRCacheMechanics:
    def test_insert_then_holds(self):
        rc = RCache(size_bytes=256, block_size=64)  # 4 entries
        rc.insert(0x10)
        assert rc.holds(0x10)
        assert not rc.holds(0x11)

    def test_lru_eviction(self):
        rc = RCache(size_bytes=256, block_size=64)
        for block in range(4):
            rc.insert(block)
        rc.insert(0)  # refresh 0
        rc.insert(99)  # evicts block 1 (LRU)
        assert rc.holds(0)
        assert not rc.holds(1)
        assert rc.stats.evictions == 1

    def test_update_does_not_grow(self):
        rc = RCache(size_bytes=256, block_size=64)
        for _ in range(10):
            rc.insert(7)
        assert rc.occupancy() == 1
        assert rc.stats.store_updates == 9

    def test_invalidate(self):
        rc = RCache(size_bytes=256, block_size=64)
        rc.insert(5)
        rc.invalidate(5)
        assert not rc.holds(5)
        rc.invalidate(5)  # idempotent

    def test_duplicate_hit_rate(self):
        rc = RCache(size_bytes=256, block_size=64)
        rc.insert(1)
        rc.holds(1)
        rc.holds(2)
        assert rc.stats.duplicate_hit_rate == pytest.approx(0.5)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            RCache(size_bytes=100, block_size=64)
        with pytest.raises(ValueError):
            RCache(size_bytes=0)


class TestBaselineRun:
    def test_produces_coverage_metric(self):
        result = run_rcache_baseline("gzip", n_instructions=20_000)
        assert 0.0 <= result.loads_with_duplicate <= 1.0
        assert result.duplicate_store_writes > 0
        assert result.benchmark == "gzip"

    def test_bigger_rcache_covers_more(self):
        small = run_rcache_baseline(
            "gzip", rcache_bytes=512, n_instructions=30_000
        )
        large = run_rcache_baseline(
            "gzip", rcache_bytes=8 * 1024, n_instructions=30_000
        )
        assert large.loads_with_duplicate >= small.loads_with_duplicate

    def test_comparable_to_icr_coverage(self):
        """The paper's Section 5.2 claim: ICR reaches duplicate coverage
        in the same league as a dedicated 2KB side cache, without the
        extra array."""
        from repro.harness.experiment import run_experiment
        from repro.harness.spec import ExperimentSpec

        rcache = run_rcache_baseline("gzip", n_instructions=40_000)
        icr = run_experiment(
            ExperimentSpec.from_kwargs("gzip", "ICR-P-PS(S)", n_instructions=40_000)
        )
        assert icr.loads_with_replica > 0.5 * rcache.loads_with_duplicate

    def test_every_store_duplicated(self):
        result = run_rcache_baseline("mesa", n_instructions=20_000)
        assert result.duplicate_store_writes == result.dl1_stores
